#!/usr/bin/env bash
# Record the machine-readable performance baseline for future perf PRs.
#
# Runs a reduced (fixed-repetition) Table IIa campaign through the
# `campaign` binary with the metrics registry + profiling hooks armed,
# then folds the wall-clock time and the metrics snapshot into
# BENCH_baseline.json at the repo root. Compare against this file before
# claiming a hot path got faster.
#
# Usage: scripts/bench_baseline.sh [REPS] (default 2)

set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-2}"
SEED=7
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p wavm3-experiments --bin campaign

START=$(date +%s.%N)
./target/release/campaign \
    --reps "$REPS" --seed "$SEED" \
    --out "$TMPDIR/out" \
    --metrics-out "$TMPDIR/metrics.json" \
    >"$TMPDIR/stdout.txt"
END=$(date +%s.%N)

METRICS="$TMPDIR/metrics.json" REPS="$REPS" SEED="$SEED" \
START="$START" END="$END" python3 - <<'PY'
import json, os

with open(os.environ["METRICS"]) as f:
    metrics = json.load(f)

baseline = {
    "benchmark": "campaign --reps %s --seed %s (machine sets M+O, release)"
    % (os.environ["REPS"], os.environ["SEED"]),
    "wall_time_s": round(float(os.environ["END"]) - float(os.environ["START"]), 3),
    "metrics": metrics,
}
with open("BENCH_baseline.json", "w") as f:
    json.dump(baseline, f, indent=2, sort_keys=True)
    f.write("\n")
print("wrote BENCH_baseline.json (wall %.1fs, %d counters)"
      % (baseline["wall_time_s"], len(metrics.get("counters", {}))))
PY
