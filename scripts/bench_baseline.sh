#!/usr/bin/env bash
# Record the machine-readable performance baseline for future perf PRs
# and for the `wavm3-regress` gate.
#
# Runs the reduced (fixed-repetition) Table IIa campaign through the
# `campaign` binary three times with the metrics registry armed, checks
# that the deterministic metrics (counters, histograms) agree across the
# runs, takes the median wall time and median runner throughput, and
# folds everything — plus the provenance stamps (git SHA, rustc version,
# repetition count, seed) — into BENCH_baseline.json at the repo root.
#
# The analytic fast path is timed separately. Because it finishes the
# base campaign in milliseconds — far too short for a stable median —
# its repetition count is auto-scaled from a calibration run until one
# timed run takes at least MIN_ANALYTIC_WALL seconds; the scaled rep
# count is recorded under `analytic.reps`. A `wavm3-profile` run stamps
# the per-stage self-time breakdown (µs per migration run) under
# `analytic.profile` so perf PRs can see *where* a regression landed.
#
# `wavm3-regress --baseline BENCH_baseline.json` re-runs the identical
# campaign using the `seed` / `reps` stamps and diffs the snapshots.
#
# Usage: scripts/bench_baseline.sh [REPS] (default 2)

set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-2}"
SEED=7
RUNS=3
MIN_ANALYTIC_WALL="${MIN_ANALYTIC_WALL:-1.0}"
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p wavm3-experiments --bin campaign --bin wavm3-profile

WALL_TIMES=()
for i in $(seq 1 "$RUNS"); do
    START=$(date +%s.%N)
    ./target/release/campaign \
        --reps "$REPS" --seed "$SEED" \
        --out "$TMPDIR/out$i" \
        --metrics-out "$TMPDIR/metrics$i.json" \
        >"$TMPDIR/stdout$i.txt"
    END=$(date +%s.%N)
    WALL_TIMES+=("$(awk -v a="$START" -v b="$END" 'BEGIN { printf "%.3f", b - a }')")
    echo "run $i/$RUNS: ${WALL_TIMES[-1]}s"
done

# The same campaign on the analytic fast path (DESIGN.md §12). First a
# calibration run at the base rep count: it feeds the determinism check
# (the path must change only the energy integration, never what was
# simulated) and tells us how far to scale the timed runs.
START=$(date +%s.%N)
./target/release/campaign \
    --reps "$REPS" --seed "$SEED" --path analytic \
    --out "$TMPDIR/acal" \
    --metrics-out "$TMPDIR/ametrics-cal.json" \
    >"$TMPDIR/astdout-cal.txt"
END=$(date +%s.%N)
CAL_WALL="$(awk -v a="$START" -v b="$END" 'BEGIN { printf "%.4f", b - a }')"
echo "analytic calibration: ${CAL_WALL}s at $REPS reps"

# Iterate the rep scaling: the first calibration is dominated by fixed
# per-campaign overhead, so a single linear extrapolation undershoots.
ANALYTIC_REPS="$REPS"
for attempt in 1 2 3 4; do
    if awk -v w="$CAL_WALL" -v min="$MIN_ANALYTIC_WALL" 'BEGIN { exit !(w >= min) }'; then
        break
    fi
    ANALYTIC_REPS="$(awk -v reps="$ANALYTIC_REPS" -v wall="$CAL_WALL" -v min="$MIN_ANALYTIC_WALL" \
        'BEGIN { if (wall < 0.0005) wall = 0.0005;
                 n = int(reps * min * 1.2 / wall) + 1;
                 print (n > reps) ? n : reps + 1 }')"
    START=$(date +%s.%N)
    ./target/release/campaign \
        --reps "$ANALYTIC_REPS" --seed "$SEED" --path analytic \
        --out "$TMPDIR/acal$attempt" \
        --metrics-out "$TMPDIR/ametrics-cal$attempt.json" \
        >"$TMPDIR/astdout-cal$attempt.txt"
    END=$(date +%s.%N)
    CAL_WALL="$(awk -v a="$START" -v b="$END" 'BEGIN { printf "%.4f", b - a }')"
    echo "analytic calibration $attempt: ${CAL_WALL}s at $ANALYTIC_REPS reps"
done
echo "analytic timing at $ANALYTIC_REPS reps (${CAL_WALL}s >= ${MIN_ANALYTIC_WALL}s)"

ANALYTIC_WALL_TIMES=()
for i in $(seq 1 "$RUNS"); do
    START=$(date +%s.%N)
    ./target/release/campaign \
        --reps "$ANALYTIC_REPS" --seed "$SEED" --path analytic \
        --out "$TMPDIR/aout$i" \
        --metrics-out "$TMPDIR/ametrics$i.json" \
        >"$TMPDIR/astdout$i.txt"
    END=$(date +%s.%N)
    ANALYTIC_WALL_TIMES+=("$(awk -v a="$START" -v b="$END" 'BEGIN { printf "%.3f", b - a }')")
    echo "analytic run $i/$RUNS: ${ANALYTIC_WALL_TIMES[-1]}s ($ANALYTIC_REPS reps)"
done

# Per-stage self-time breakdown of the analytic path (single-threaded so
# self times are comparable to wall time).
./target/release/wavm3-profile \
    --reps "$REPS" --seed "$SEED" --path analytic \
    --out "$TMPDIR/pout" --profile-out "$TMPDIR/profile" \
    >"$TMPDIR/profile-stdout.txt"

# Thread-scaling sweep of the parallel campaign engine: the analytic
# campaign at each pool size, recording the throughput gauge per thread
# count. Thread counts above the machine's cores are skipped — they
# would only measure oversubscription noise.
CORES="$(nproc)"
THREAD_COUNTS=()
for t in 1 2 4 8; do
    if [ "$t" -le "$CORES" ] || [ "$t" -eq 1 ]; then
        THREAD_COUNTS+=("$t")
    fi
done
for t in "${THREAD_COUNTS[@]}"; do
    ./target/release/campaign \
        --reps "$ANALYTIC_REPS" --seed "$SEED" --path analytic --threads "$t" \
        --out "$TMPDIR/tout$t" \
        --metrics-out "$TMPDIR/tmetrics$t.json" \
        >"$TMPDIR/tstdout$t.txt"
    echo "parallel sweep: $t thread(s) done"
done

GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
RUSTC="$(rustc --version)"

TMPDIR="$TMPDIR" RUNS="$RUNS" REPS="$REPS" SEED="$SEED" \
GIT_SHA="$GIT_SHA" RUSTC="$RUSTC" WALL_TIMES="${WALL_TIMES[*]}" \
ANALYTIC_REPS="$ANALYTIC_REPS" \
ANALYTIC_WALL_TIMES="${ANALYTIC_WALL_TIMES[*]}" \
THREAD_COUNTS="${THREAD_COUNTS[*]}" CORES="$CORES" python3 - <<'PY'
import json, os, statistics

tmp = os.environ["TMPDIR"]
runs = int(os.environ["RUNS"])
snapshots = []
for i in range(1, runs + 1):
    with open(f"{tmp}/metrics{i}.json") as f:
        snapshots.append(json.load(f))

# Counters and histograms are seed-deterministic: refuse to write a
# baseline if the repeated runs disagree on them.
for key in ("counters", "histograms"):
    for i, snap in enumerate(snapshots[1:], start=2):
        if snap.get(key) != snapshots[0].get(key):
            raise SystemExit(f"non-deterministic {key}: run 1 vs run {i} differ")

metrics = snapshots[0]
# Gauges carry wall-clock data; pin the throughput gauge (labelled with
# the executed path) to the median of the repeated runs so one noisy run
# cannot skew the baseline.
SAMPLED_GAUGE = "runner.throughput_runs_per_s.sampled"
ANALYTIC_GAUGE = "runner.throughput_runs_per_s.analytic"
throughputs = [
    s["gauges"][SAMPLED_GAUGE]
    for s in snapshots
    if SAMPLED_GAUGE in s.get("gauges", {})
]
if throughputs:
    metrics["gauges"][SAMPLED_GAUGE] = statistics.median(throughputs)

wall_times = [float(w) for w in os.environ["WALL_TIMES"].split()]

# Analytic calibration run at the base rep count: the path must change
# only the energy integration, never what was simulated, so its
# deterministic counters have to match the sampled campaign's exactly.
with open(f"{tmp}/ametrics-cal.json") as f:
    analytic_cal = json.load(f)
if analytic_cal.get("counters") != snapshots[0].get("counters"):
    raise SystemExit("analytic calibration counters diverge from sampled")

analytic = []
for i in range(1, runs + 1):
    with open(f"{tmp}/ametrics{i}.json") as f:
        analytic.append(json.load(f))
analytic_tp = statistics.median(s["gauges"][ANALYTIC_GAUGE] for s in analytic)
analytic_wall = [float(w) for w in os.environ["ANALYTIC_WALL_TIMES"].split()]

# Thread-scaling sweep: the analytic campaign's throughput per pool size.
parallel_tp = {}
for t in os.environ["THREAD_COUNTS"].split():
    with open(f"{tmp}/tmetrics{t}.json") as f:
        parallel_tp[t] = json.load(f)["gauges"][ANALYTIC_GAUGE]

# Per-stage breakdown from the wavm3-profile run: aggregate the call
# tree by scope name and normalise self time by profiled migration runs.
with open(f"{tmp}/profile/profile.json") as f:
    profile = json.load(f)
with open(f"{tmp}/profile/summary.json") as f:
    summary = json.load(f)

stage_self_ns = {}

def walk(node):
    stage_self_ns[node["name"]] = (
        stage_self_ns.get(node["name"], 0) + node["self_ns"]
    )
    for child in node.get("children", []):
        walk(child)

for root in profile.get("roots", []):
    walk(root)
profiled_runs = max(summary.get("runs", 0), 1)
stage_us_per_run = {
    name: round(ns / 1e3 / profiled_runs, 3) for name, ns in stage_self_ns.items()
}

baseline = {
    "analytic": {
        "throughput_runs_per_s": analytic_tp,
        "wall_time_s": round(statistics.median(analytic_wall), 3),
        "reps": int(os.environ["ANALYTIC_REPS"]),
        "profile": {
            "runs": summary.get("runs", 0),
            "coverage_pct": round(summary.get("coverage_pct", 0.0), 1),
            "stage_self_us_per_run": stage_us_per_run,
        },
    },
    "parallel": {
        "cores": int(os.environ["CORES"]),
        "throughput_runs_per_s_by_threads": {
            t: round(tp, 1) for t, tp in parallel_tp.items()
        },
    },
    "benchmark": "campaign --reps %s --seed %s (machine sets M+O, release)"
    % (os.environ["REPS"], os.environ["SEED"]),
    "git_sha": os.environ["GIT_SHA"],
    "rustc": os.environ["RUSTC"],
    "reps": int(os.environ["REPS"]),
    "seed": int(os.environ["SEED"]),
    "bench_runs": runs,
    "wall_time_s": round(statistics.median(wall_times), 3),
    "metrics": metrics,
}
with open("BENCH_baseline.json", "w") as f:
    json.dump(baseline, f, indent=2, sort_keys=True)
    f.write("\n")
print(
    "wrote BENCH_baseline.json (median wall %.1fs over %d runs, %d counters, "
    "analytic %.0f runs/s at %s reps, profiler coverage %.1f%%, parallel %s)"
    % (
        baseline["wall_time_s"],
        runs,
        len(metrics.get("counters", {})),
        analytic_tp,
        baseline["analytic"]["reps"],
        baseline["analytic"]["profile"]["coverage_pct"],
        ", ".join(
            f"{t}t={tp:.0f}/s" for t, tp in sorted(parallel_tp.items(), key=lambda kv: int(kv[0]))
        ),
    )
)
PY
