#!/usr/bin/env bash
# Record the machine-readable performance baseline for future perf PRs
# and for the `wavm3-regress` gate.
#
# Runs the reduced (fixed-repetition) Table IIa campaign through the
# `campaign` binary three times with the metrics registry armed, checks
# that the deterministic metrics (counters, histograms) agree across the
# runs, takes the median wall time and median runner throughput, and
# folds everything — plus the provenance stamps (git SHA, rustc version,
# repetition count, seed) — into BENCH_baseline.json at the repo root.
#
# `wavm3-regress --baseline BENCH_baseline.json` re-runs the identical
# campaign using the `seed` / `reps` stamps and diffs the snapshots.
#
# Usage: scripts/bench_baseline.sh [REPS] (default 2)

set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-2}"
SEED=7
RUNS=3
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p wavm3-experiments --bin campaign

WALL_TIMES=()
for i in $(seq 1 "$RUNS"); do
    START=$(date +%s.%N)
    ./target/release/campaign \
        --reps "$REPS" --seed "$SEED" \
        --out "$TMPDIR/out$i" \
        --metrics-out "$TMPDIR/metrics$i.json" \
        >"$TMPDIR/stdout$i.txt"
    END=$(date +%s.%N)
    WALL_TIMES+=("$(awk -v a="$START" -v b="$END" 'BEGIN { printf "%.3f", b - a }')")
    echo "run $i/$RUNS: ${WALL_TIMES[-1]}s"
done

# The same campaign on the analytic fast path (DESIGN.md §12): its
# median throughput is recorded under the `analytic` key so perf PRs
# have a before/after anchor for both engines.
ANALYTIC_WALL_TIMES=()
for i in $(seq 1 "$RUNS"); do
    START=$(date +%s.%N)
    ./target/release/campaign \
        --reps "$REPS" --seed "$SEED" --path analytic \
        --out "$TMPDIR/aout$i" \
        --metrics-out "$TMPDIR/ametrics$i.json" \
        >"$TMPDIR/astdout$i.txt"
    END=$(date +%s.%N)
    ANALYTIC_WALL_TIMES+=("$(awk -v a="$START" -v b="$END" 'BEGIN { printf "%.3f", b - a }')")
    echo "analytic run $i/$RUNS: ${ANALYTIC_WALL_TIMES[-1]}s"
done

GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
RUSTC="$(rustc --version)"

TMPDIR="$TMPDIR" RUNS="$RUNS" REPS="$REPS" SEED="$SEED" \
GIT_SHA="$GIT_SHA" RUSTC="$RUSTC" WALL_TIMES="${WALL_TIMES[*]}" \
ANALYTIC_WALL_TIMES="${ANALYTIC_WALL_TIMES[*]}" python3 - <<'PY'
import json, os, statistics

tmp = os.environ["TMPDIR"]
runs = int(os.environ["RUNS"])
snapshots = []
for i in range(1, runs + 1):
    with open(f"{tmp}/metrics{i}.json") as f:
        snapshots.append(json.load(f))

# Counters and histograms are seed-deterministic: refuse to write a
# baseline if the repeated runs disagree on them.
for key in ("counters", "histograms"):
    for i, snap in enumerate(snapshots[1:], start=2):
        if snap.get(key) != snapshots[0].get(key):
            raise SystemExit(f"non-deterministic {key}: run 1 vs run {i} differ")

metrics = snapshots[0]
# Gauges carry wall-clock data; pin the throughput gauge to the median
# of the repeated runs so one noisy run cannot skew the baseline.
throughputs = [
    s["gauges"]["runner.throughput_runs_per_s"]
    for s in snapshots
    if "runner.throughput_runs_per_s" in s.get("gauges", {})
]
if throughputs:
    metrics["gauges"]["runner.throughput_runs_per_s"] = statistics.median(throughputs)

wall_times = [float(w) for w in os.environ["WALL_TIMES"].split()]

# Analytic-path runs: the path must change only the energy integration,
# never what was simulated, so its deterministic counters have to match
# the sampled campaign's exactly.
analytic = []
for i in range(1, runs + 1):
    with open(f"{tmp}/ametrics{i}.json") as f:
        analytic.append(json.load(f))
for i, snap in enumerate(analytic, start=1):
    if snap.get("counters") != snapshots[0].get("counters"):
        raise SystemExit(f"analytic run {i} counters diverge from sampled")
analytic_tp = statistics.median(
    s["gauges"]["runner.throughput_runs_per_s"] for s in analytic
)
analytic_wall = [float(w) for w in os.environ["ANALYTIC_WALL_TIMES"].split()]

baseline = {
    "analytic": {
        "throughput_runs_per_s": analytic_tp,
        "wall_time_s": round(statistics.median(analytic_wall), 3),
    },
    "benchmark": "campaign --reps %s --seed %s (machine sets M+O, release)"
    % (os.environ["REPS"], os.environ["SEED"]),
    "git_sha": os.environ["GIT_SHA"],
    "rustc": os.environ["RUSTC"],
    "reps": int(os.environ["REPS"]),
    "seed": int(os.environ["SEED"]),
    "bench_runs": runs,
    "wall_time_s": round(statistics.median(wall_times), 3),
    "metrics": metrics,
}
with open("BENCH_baseline.json", "w") as f:
    json.dump(baseline, f, indent=2, sort_keys=True)
    f.write("\n")
print(
    "wrote BENCH_baseline.json (median wall %.1fs over %d runs, %d counters, "
    "analytic %.0f runs/s)"
    % (
        baseline["wall_time_s"],
        runs,
        len(metrics.get("counters", {})),
        analytic_tp,
    )
)
PY
