#!/usr/bin/env python3
"""Gate per-stage self-time budgets for the analytic campaign path.

Reads the `profile.json` (call-tree snapshot) and `summary.json` written
by `wavm3-profile --profile-out DIR`, aggregates self time by scope name,
normalises it to microseconds per profiled migration run, and compares
each stage against the budget table below. On any breach the full
hotspot diff is printed and the process exits non-zero, so the CI job
fails with the regression visible in the log.

The budgets are deliberately loose (~5x the locally measured release
numbers) to absorb shared-runner noise: they catch order-of-magnitude
regressions — an accidentally quadratic tick loop, a cache that stopped
hitting — not single-digit-percent drift, which `bench_baseline.sh` and
the throughput gate track instead.

Usage: check_perf_budgets.py <profile-dir>
"""

import json
import sys

# Self-time budgets in microseconds per profiled migration run, keyed by
# scope name (aggregated over every tree node with that name). Locally
# measured release values are in the comments.
BUDGETS_US_PER_RUN = {
    "analytic.tick_loop": 200.0,  # ~33 us/run locally
    "migration.run.analytic": 10.0,  # ~1.2 us/run locally (self, excl. children)
    "analytic.finalise": 10.0,  # ~0.9 us/run locally
    # The arena-reusing repetition engine: per-rep setup/teardown is gone,
    # so the repetition scope itself must stay within noise of zero.
    "runner.repetition": 2.0,  # ~0.2 us/run locally (self, excl. children)
    "runner.shard": 2.0,  # ~0.2 us/run locally (shard dispatch per scenario)
    "runner.merge": 2.0,  # ~0.3 us/run locally (deterministic drain per scenario)
}

# The profiler must account for nearly all of the campaign wall time on
# the single-threaded wavm3-profile run (acceptance: within 5%).
COVERAGE_PCT_RANGE = (95.0, 105.0)


def aggregate_self_ns(profile):
    """scope name -> summed self_ns over every node with that name."""
    acc = {}

    def walk(node):
        acc[node["name"]] = acc.get(node["name"], 0) + node["self_ns"]
        for child in node.get("children", []):
            walk(child)

    for root in profile.get("roots", []):
        walk(root)
    return acc


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    prof_dir = sys.argv[1]
    with open(f"{prof_dir}/profile.json") as f:
        profile = json.load(f)
    with open(f"{prof_dir}/summary.json") as f:
        summary = json.load(f)

    runs = summary.get("runs", 0)
    if runs == 0:
        raise SystemExit("no profiled migration runs in summary.json")

    self_ns = aggregate_self_ns(profile)
    rows = []
    breached = []
    for stage, budget in sorted(BUDGETS_US_PER_RUN.items()):
        got = self_ns.get(stage, 0) / 1e3 / runs
        over = got > budget
        rows.append((stage, got, budget, over))
        if over:
            breached.append(stage)

    print(f"{'stage':<28} {'us/run':>10} {'budget':>10}  verdict")
    for stage, got, budget, over in rows:
        verdict = "OVER BUDGET" if over else "ok"
        print(f"{stage:<28} {got:>10.2f} {budget:>10.2f}  {verdict}")

    coverage = summary.get("coverage_pct", 0.0)
    lo, hi = COVERAGE_PCT_RANGE
    print(f"\nprofiler coverage: {coverage:.1f}% of wall (required {lo}-{hi}%)")

    ok = True
    if breached:
        ok = False
        print("\nper-stage budget regression — hotspot diff:")
        for stage, got, budget, _ in rows:
            delta = got - budget
            print(
                f"  {stage}: {got:.2f} us/run vs budget {budget:.2f} "
                f"({'+' if delta > 0 else ''}{delta:.2f})"
            )
    if not (lo <= coverage <= hi):
        ok = False
        print(
            f"\nprofiler coverage {coverage:.1f}% outside [{lo}, {hi}]%: "
            "the call tree no longer accounts for the campaign wall time"
        )
    if not ok:
        raise SystemExit(1)
    print("ok: all stage budgets respected")


if __name__ == "__main__":
    main()
