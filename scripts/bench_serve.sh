#!/usr/bin/env bash
# Record (or gate against) the serving layer's metrics baseline.
#
# Stamp mode (default) runs a deterministic chaos drill three times —
# `wavm3-serve` with a seeded chaos profile and an effectively infinite
# breaker cooldown, `wavm3-loadgen` at concurrency 1 (total order, so
# breaker-coupled outcomes depend only on the request sequence) with
# `--truth` so the drift windows fill — scrapes `/metrics` (which
# materialises the SLO burn-rate gauges) followed by `/debug/metrics`,
# verifies every deterministic signal (counters, histogram ladders and
# counts) agrees across the three runs, and folds the snapshot plus
# provenance stamps into BENCH_serve.json at the repo root. It also
# regenerates scripts/serve_tolerances.json, which grants every
# histogram's wall-clock `.sum` a generous relative tolerance while the
# deterministic `.count`s stay at the exact-match default.
#
# Check mode (`--check`) re-runs the identical scenario once and diffs
# the snapshot against the committed BENCH_serve.json via
# `wavm3-regress`, so CI needs exactly one command:
#
#   scripts/bench_serve.sh --check
#
# Usage: scripts/bench_serve.sh [--check]

set -euo pipefail
cd "$(dirname "$0")/.."

MODE=stamp
[ "${1:-}" = "--check" ] && MODE=check

REQUESTS=40
SEED=7
RUNS=3
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

cargo build --release -q -p wavm3-serve --bin wavm3-serve --bin wavm3-loadgen
if [ "$MODE" = check ]; then
    cargo build --release -q -p wavm3-experiments --bin wavm3-regress
fi

# One drill: chaos-heavy server, sequential seeded load, two scrapes.
# $1 = run tag; writes $TMPDIR/metrics$1.json.
run_scenario() {
    local tag="$1"
    local log="$TMPDIR/serve$tag.log"
    ./target/release/wavm3-serve --addr 127.0.0.1:0 \
        --chaos-seed 99 --chaos-latency 0.3 \
        --chaos-latency-min 1 --chaos-latency-max 5 \
        --chaos-error 0.15 --chaos-drop 0.05 \
        --breaker-threshold 3 --breaker-cooldown-ms 3600000 --breaker-probes 2 \
        --slo-p99-ms 60000 \
        > "$log" 2>&1 &
    local pid=$!
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$log"; echo "server never bound"; exit 1; }
    ./target/release/wavm3-loadgen --addr "$addr" \
        --requests "$REQUESTS" --concurrency 1 --seed "$SEED" \
        --deadline-ms 5000 --retries 4 \
        --backoff-ms 1 --multiplier 1 --jitter-ms 1 \
        --truth > "$TMPDIR/loadgen$tag.log"
    grep "^counts:" "$TMPDIR/loadgen$tag.log"
    # /metrics refreshes the SLO gauges into the registry; only then is
    # the /debug/metrics snapshot complete.
    curl -sf "http://$addr/metrics" > /dev/null
    curl -sf "http://$addr/debug/metrics" > "$TMPDIR/metrics$tag.json"
    kill -TERM "$pid"
    wait "$pid"
}

if [ "$MODE" = check ]; then
    run_scenario check
    ./target/release/wavm3-regress \
        --baseline BENCH_serve.json --current "$TMPDIR/metricscheck.json" \
        --tolerances scripts/serve_tolerances.json
    exit 0
fi

for i in $(seq 1 "$RUNS"); do
    echo "drill $i/$RUNS"
    run_scenario "$i"
done

GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
RUSTC="$(rustc --version)"

TMPDIR="$TMPDIR" RUNS="$RUNS" SEED="$SEED" REQUESTS="$REQUESTS" \
GIT_SHA="$GIT_SHA" RUSTC="$RUSTC" python3 - <<'PY'
import json, os

tmp = os.environ["TMPDIR"]
runs = int(os.environ["RUNS"])
snapshots = []
for i in range(1, runs + 1):
    with open(f"{tmp}/metrics{i}.json") as f:
        snapshots.append(json.load(f))

# Counters, histogram ladders and histogram *totals* are deterministic
# under the sequential drill (per-bucket distributions shift with
# wall-clock); refuse to stamp a baseline otherwise.
for i, snap in enumerate(snapshots[1:], start=2):
    if snap["counters"] != snapshots[0]["counters"]:
        raise SystemExit(f"non-deterministic counters: run 1 vs run {i}")
    shape = lambda s: {
        name: (h["bounds"], h["count"]) for name, h in s["histograms"].items()
    }
    if shape(snap) != shape(snapshots[0]):
        raise SystemExit(f"non-deterministic histogram counts: run 1 vs run {i}")

metrics = snapshots[0]
red = [name for name in metrics["histograms"] if name.startswith("serve.red.")]
if not red:
    raise SystemExit("drill recorded no serve.red.* families")
error_red = [n for n in red if any(c in n for c in (".429.", ".503.", ".5xx.", ".drop."))]
if not error_red:
    raise SystemExit("chaos drill produced no error-class RED families")

baseline = {
    "benchmark": "wavm3-serve chaos drill (%s requests, concurrency 1, "
    "chaos seed 99, breaker cooldown 1h; scripts/bench_serve.sh)"
    % os.environ["REQUESTS"],
    "git_sha": os.environ["GIT_SHA"],
    "rustc": os.environ["RUSTC"],
    "seed": int(os.environ["SEED"]),
    "requests": int(os.environ["REQUESTS"]),
    "bench_runs": runs,
    "metrics": metrics,
}
with open("BENCH_serve.json", "w") as f:
    json.dump(baseline, f, indent=2, sort_keys=True)
    f.write("\n")

# Histogram counts are gated exactly; their sums are wall-clock
# durations, so each gets a generous per-metric relative tolerance.
tolerances = {f"{name}.sum": 50.0 for name in sorted(metrics["histograms"])}
with open("scripts/serve_tolerances.json", "w") as f:
    json.dump(tolerances, f, indent=2, sort_keys=True)
    f.write("\n")

print(
    "wrote BENCH_serve.json (%d counters, %d RED families of which %d "
    "error-class, %d gauges) and scripts/serve_tolerances.json"
    % (len(metrics["counters"]), len(red), len(error_red), len(metrics["gauges"]))
)
PY
