#!/usr/bin/env python3
"""Join the serving layer's observability surfaces by trace-id.

The serve-smoke `obs-correlation` gate runs a chaos drill and then feeds
this checker the four artefacts the drill produced:

  --access-log  key=value lines written by `wavm3-serve --access-log`
  --spans       `spans.jsonl` from the server's `--trace-out` directory
  --metrics     Prometheus exposition scraped from `GET /metrics`
  --client-log  per-attempt JSONL from `wavm3-loadgen --log-out`
  --slo         JSON from `GET /debug/slo`            (optional)
  --counts      loadgen stdout `counts:` line         (optional, needs --slo)
  --availability  SLO availability objective           (default 0.99)

Checks (any failure exits 1):

1. Every error-class access-log line (429 / 503 / 5xx / drop on an API
   route) joins by trace-id to the sampled span export — the tail
   sampler always keeps errors — and to a pinned `/metrics` exemplar.
   Client-error 4xx lines must still join to the span export.
2. Every `/metrics` exemplar trace-id joins back to both the access log
   and the span export (no dangling metric→trace pointers).
3. Every loadgen attempt joins to an access-log line with the same
   trace-id, and every API-route access-log line joins back to the
   client log (introspection scrapes carry server-generated ids and are
   exempt).
4. `obs.exemplars.evicted` stayed zero — the join in (1) is only
   complete while nothing was evicted.
5. With --slo and --counts: the per-route SLO error totals equal the
   client's `shed_seen + server_errors_seen + connection_errors`, and
   each route's `burn_rate` equals `error_rate / (1 - availability)`.
6. With --counts: the client-side latency quantiles (estimated on the
   server's own `buckets::LATENCY_MS` ladder) sit at or above the
   server-side `serve_latency_ms` quantiles and within per-request
   connection overhead of them — a unit or ladder mismatch would put
   them orders of magnitude apart.
"""

import argparse
import json
import re
import sys

ERROR_CLASSES = {"429", "503", "5xx", "drop"}
API_ROUTES = {"predict", "plan"}

EXEMPLAR_RE = re.compile(
    r'^# exemplar (?P<metric>[A-Za-z0-9_:]+)\{le="[^"]*",trace_id="(?P<tid>[0-9a-f]{32})"\}'
)


def fail(errors):
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    sys.exit(1)


def parse_access_log(path):
    entries = []
    with open(path) as f:
        for n, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            fields = dict(tok.split("=", 1) for tok in line.split() if "=" in tok)
            for key in ("trace_id", "route", "status", "class"):
                assert key in fields, f"{path}:{n}: missing {key}: {line}"
            entries.append(fields)
    return entries


def parse_spans(path):
    ids = set()
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                ids.add(json.loads(line)["trace_id"])
    return ids


def parse_metrics(path):
    """Exemplar (metric, trace_id) pairs plus the raw exposition text."""
    exemplars = []
    text = open(path).read()
    for line in text.splitlines():
        m = EXEMPLAR_RE.match(line)
        if m:
            exemplars.append((m.group("metric"), m.group("tid")))
    return exemplars, text


def parse_client_log(path):
    entries = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def parse_counts(path):
    text = open(path).read()
    m = re.search(
        r"counts: sent=(\d+) ok=(\d+) degraded=(\d+) shed_seen=(\d+) "
        r"server_errors_seen=(\d+) connection_errors=(\d+)",
        text,
    )
    assert m, f"{path}: no loadgen counts line"
    counts = {
        "shed_seen": int(m.group(4)),
        "server_errors_seen": int(m.group(5)),
        "connection_errors": int(m.group(6)),
    }
    q = re.search(
        r"latency_ms: p50=([0-9.]+) p95=([0-9.]+) p99=([0-9.]+)", text
    )
    assert q, f"{path}: no loadgen latency line"
    counts["quantiles"] = {
        "p50": float(q.group(1)),
        "p95": float(q.group(2)),
        "p99": float(q.group(3)),
    }
    return counts


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--access-log", required=True)
    ap.add_argument("--spans", required=True)
    ap.add_argument("--metrics", required=True)
    ap.add_argument("--client-log", required=True)
    ap.add_argument("--slo")
    ap.add_argument("--counts")
    ap.add_argument("--availability", type=float, default=0.99)
    args = ap.parse_args()

    access = parse_access_log(args.access_log)
    span_ids = parse_spans(args.spans)
    exemplars, metrics_text = parse_metrics(args.metrics)
    client = parse_client_log(args.client_log)

    errors = []
    access_ids = {e["trace_id"] for e in access}
    exemplar_ids = {tid for _, tid in exemplars}

    # 1. Error-class access lines join to spans and pinned exemplars.
    error_lines = [
        e
        for e in access
        if e["route"] in API_ROUTES and e["class"] in ERROR_CLASSES
    ]
    for e in error_lines:
        if e["trace_id"] not in span_ids:
            errors.append(
                f"orphaned error: {e['class']} {e['trace_id']} has no sampled span"
            )
        if e["trace_id"] not in exemplar_ids:
            errors.append(
                f"orphaned error: {e['class']} {e['trace_id']} has no /metrics exemplar"
            )
    for e in access:
        if e["route"] in API_ROUTES and e["class"] == "4xx":
            if e["trace_id"] not in span_ids:
                errors.append(
                    f"orphaned client error: 4xx {e['trace_id']} has no sampled span"
                )

    # 2. Exemplars join back to the access log and span export.
    for metric, tid in exemplars:
        if tid not in access_ids:
            errors.append(f"dangling exemplar on {metric}: {tid} not in access log")
        if tid not in span_ids:
            errors.append(f"dangling exemplar on {metric}: {tid} not in span export")

    # 3. Client attempts join to the access log and vice versa.
    client_ids = {c["trace_id"] for c in client}
    for c in client:
        if c["trace_id"] not in access_ids:
            errors.append(
                f"client attempt id={c['id']} attempt={c['attempt']} "
                f"({c['outcome']}) trace {c['trace_id']} never reached the access log"
            )
    for e in access:
        if e["route"] in API_ROUTES and e["trace_id"] not in client_ids:
            errors.append(
                f"access line {e['trace_id']} on /{e['route']} "
                "matches no client attempt"
            )

    # 4. The exemplar store must not have evicted anything.
    m = re.search(r"^obs_exemplars_evicted (\d+)", metrics_text, re.M)
    if m and int(m.group(1)) != 0:
        errors.append(f"exemplar evictions: {m.group(1)} (join incomplete)")

    counts = parse_counts(args.counts) if args.counts else None

    # 5. SLO burn-rate consistency against the client's observed errors.
    if args.slo:
        slo = json.load(open(args.slo))
        budget = 1.0 - args.availability
        route_errors = 0
        for route in slo["routes"]:
            route_errors += route["errors"]
            want = route["error_rate"] / budget if budget > 0 else 0.0
            if abs(route["burn_rate"] - want) > 1e-6:
                errors.append(
                    f"route {route['route']}: burn_rate {route['burn_rate']} "
                    f"!= error_rate/budget {want}"
                )
        if counts:
            client_errors = (
                counts["shed_seen"]
                + counts["server_errors_seen"]
                + counts["connection_errors"]
            )
            if route_errors != client_errors:
                errors.append(
                    f"SLO error total {route_errors} != client-observed "
                    f"{client_errors} ({counts})"
                )

    # 6. Client and server latency quantiles share the bucket ladder.
    if counts:
        for name, client_q in counts["quantiles"].items():
            m = re.search(
                rf"^serve_latency_ms_{name} ([0-9.eE+-]+)", metrics_text, re.M
            )
            if not m:
                errors.append(f"/metrics has no serve_latency_ms_{name}")
                continue
            server_q = float(m.group(1))
            if client_q + 0.5 < server_q:
                errors.append(
                    f"{name}: client {client_q}ms below server {server_q}ms"
                )
            if client_q > server_q + 50.0:
                errors.append(
                    f"{name}: client {client_q}ms vs server {server_q}ms — "
                    "more than connection overhead apart"
                )

    if errors:
        fail(errors)

    print(
        f"ok: {len(error_lines)} error responses joinable across "
        f"{len(access)} access lines, {len(span_ids)} sampled traces, "
        f"{len(exemplars)} exemplars, {len(client)} client attempts"
    )


if __name__ == "__main__":
    main()
