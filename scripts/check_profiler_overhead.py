#!/usr/bin/env python3
"""Assert the dormant profiler costs <=2% throughput vs a no-obs build.

The default build compiles the `perf::scope` probes in but leaves them
disarmed (one relaxed atomic load per probe); a build with the
`perf-off` feature compiles them out entirely. This script compares the
path-labelled `runner.throughput_runs_per_s.*` gauge from repeated runs
of each binary
and fails when the default build's best run is more than `--tolerance`
(default 0.02) slower than the no-obs build's best run. Best-of-N is
used on both sides because shared-runner noise only ever slows a run
down — the fastest observation is the least contaminated one.

Usage: check_profiler_overhead.py --off OFF.json... --on ON.json...
"""

import argparse
import json


def throughput_of(gauges):
    """The path-labelled campaign-throughput gauge, whichever path ran."""
    for key in (
        "runner.throughput_runs_per_s.analytic",
        "runner.throughput_runs_per_s.sampled",
    ):
        if key in gauges:
            return gauges[key]
    raise SystemExit(f"no runner.throughput_runs_per_s.* gauge in {sorted(gauges)}")


def best_throughput(paths):
    best = 0.0
    for path in paths:
        with open(path) as f:
            metrics = json.load(f)
        best = max(best, throughput_of(metrics["gauges"]))
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--off", nargs="+", required=True,
                    help="metrics.json files from the perf-off (no-obs) build")
    ap.add_argument("--on", nargs="+", required=True,
                    help="metrics.json files from the default (dormant) build")
    ap.add_argument("--tolerance", type=float, default=0.02,
                    help="allowed fractional slowdown (default 0.02)")
    args = ap.parse_args()

    off = best_throughput(args.off)
    on = best_throughput(args.on)
    if off <= 0.0:
        raise SystemExit("no-obs build reported zero throughput")
    slowdown = 1.0 - on / off
    print(
        f"no-obs build: {off:.0f} runs/s (best of {len(args.off)}), "
        f"dormant profiler: {on:.0f} runs/s (best of {len(args.on)}), "
        f"slowdown {slowdown * 100:+.2f}% (gate {args.tolerance * 100:.0f}%)"
    )
    if slowdown > args.tolerance:
        raise SystemExit(
            f"dormant profiler overhead {slowdown * 100:.2f}% exceeds "
            f"{args.tolerance * 100:.0f}%: probes are doing work while disarmed"
        )
    print("ok: dormant profiler overhead within tolerance")


if __name__ == "__main__":
    main()
