//! Shared fixtures for the WAVM3 benchmark suite.
//!
//! The benches live in `benches/`:
//!
//! * `kernels.rs` — hot-path microbenchmarks (simulator run, matmul,
//!   pagedirtier, LM/OLS fits, model evaluation, planner);
//! * `figures.rs` — one bench per paper figure (2–7): the full regeneration
//!   pipeline at one repetition;
//! * `tables.rs` — one bench per paper table (I, III–VII): campaign +
//!   training + scoring.

use wavm3_cluster::MachineSet;
use wavm3_experiments::scenario::ExperimentFamily;
use wavm3_experiments::{ExperimentDataset, RepetitionPolicy, RunnerConfig, Scenario};
use wavm3_migration::{MigrationKind, MigrationRecord};
use wavm3_simkit::RngFactory;

/// Deterministic runner configuration for benchmarking (fixed reps).
pub fn bench_runner(reps: usize) -> RunnerConfig {
    RunnerConfig {
        repetitions: RepetitionPolicy::Fixed(reps),
        base_seed: 0xBE7C_0DE5,
        ..Default::default()
    }
}

/// The cheapest meaningful scenario (idle hosts, CPU migrant).
pub fn baseline_scenario(kind: MigrationKind) -> Scenario {
    Scenario {
        family: ExperimentFamily::CpuloadSource,
        kind,
        machine_set: MachineSet::M,
        source_load_vms: 0,
        target_load_vms: 0,
        migrant_mem_ratio: None,
        label: "0 VM".into(),
    }
}

/// One pre-simulated record for model-evaluation benches.
pub fn sample_record(kind: MigrationKind) -> MigrationRecord {
    baseline_scenario(kind).build(RngFactory::new(1)).run()
}

/// A reduced campaign (extreme sweep levels only, fixed reps) that still
/// exercises every family — used by the table benches so an iteration
/// stays in the hundreds of milliseconds.
pub fn reduced_campaign(set: MachineSet, reps: usize) -> ExperimentDataset {
    let mut scenarios = Vec::new();
    for fam in [
        ExperimentFamily::CpuloadSource,
        ExperimentFamily::CpuloadTarget,
        ExperimentFamily::MemloadVm,
        ExperimentFamily::MemloadSource,
        ExperimentFamily::MemloadTarget,
    ] {
        let mut all = Scenario::family_scenarios(fam, set);
        all.retain(|s| matches!(s.label.as_str(), "0 VM" | "8 VM" | "5%" | "95%"));
        scenarios.extend(all);
    }
    ExperimentDataset::collect(scenarios, &bench_runner(reps))
}
