//! Observability overhead benchmarks: the same migration run and scenario
//! repetition with the obs session disabled (the production default for
//! golden regeneration) and fully enabled (trace + metrics + profiling).
//!
//! The disabled numbers are the ones that matter — the acceptance bar is
//! <2% overhead on a plain run versus the pre-obs baseline recorded in
//! `BENCH_baseline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wavm3_bench::{baseline_scenario, bench_runner};
use wavm3_experiments::runner::run_scenario;
use wavm3_migration::MigrationKind;
use wavm3_obs::{ObsConfig, Session};
use wavm3_simkit::RngFactory;

fn bench_disabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_disabled");
    g.sample_size(20);
    g.bench_function("migration_run", |b| {
        let scenario = baseline_scenario(MigrationKind::Live);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenario.build(RngFactory::new(seed)).run())
        });
    });
    g.bench_function("scenario_repetition", |b| {
        let scenario = baseline_scenario(MigrationKind::Live);
        let cfg = bench_runner(1);
        b.iter(|| black_box(run_scenario(&scenario, &cfg)));
    });
    g.finish();
}

fn bench_enabled(c: &mut Criterion) {
    // One session spans all iterations: installing/tearing down the global
    // singleton per iteration would measure lock churn, not tracing cost.
    let session = Session::install(ObsConfig {
        trace: true,
        collect_level: wavm3_obs::Level::Debug,
        console: None,
        metrics: true,
        profiling: true,
        ledger: false,
    });
    let mut g = c.benchmark_group("obs_enabled");
    g.sample_size(20);
    g.bench_function("migration_run_traced", |b| {
        let scenario = baseline_scenario(MigrationKind::Live);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            wavm3_obs::run_scope(format!("bench|run{seed}"), || {
                black_box(scenario.build(RngFactory::new(seed)).run())
            })
        });
    });
    g.bench_function("scenario_repetition_traced", |b| {
        let scenario = baseline_scenario(MigrationKind::Live);
        let cfg = bench_runner(1);
        b.iter(|| black_box(run_scenario(&scenario, &cfg)));
    });
    g.finish();
    let report = session.finish();
    black_box(report.event_count());
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
