//! One bench per paper figure: the full regeneration pipeline (campaign +
//! trace averaging + CSV rendering) at a single repetition per scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wavm3_bench::bench_runner;
use wavm3_experiments::{figures, Campaign};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let cfg = Campaign::plain(bench_runner(1));
    g.bench_function("fig2_phase_traces", |b| {
        b.iter(|| black_box(figures::fig2(&cfg)))
    });
    g.bench_function("fig3_cpuload_source", |b| {
        b.iter(|| black_box(figures::fig3(&cfg)))
    });
    g.bench_function("fig4_cpuload_target", |b| {
        b.iter(|| black_box(figures::fig4(&cfg)))
    });
    g.bench_function("fig5_memload_vm", |b| {
        b.iter(|| black_box(figures::fig5(&cfg)))
    });
    g.bench_function("fig6_memload_source", |b| {
        b.iter(|| black_box(figures::fig6(&cfg)))
    });
    g.bench_function("fig7_memload_target", |b| {
        b.iter(|| black_box(figures::fig7(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
