//! One bench per paper table: campaign + training + rendering, on the
//! reduced (extreme-levels) campaign so an iteration stays sub-second.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wavm3_bench::reduced_campaign;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_migration::MigrationKind;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    // Campaigns are the dominant cost and identical across tables; build
    // them once and benchmark the analysis stage of each table, plus one
    // end-to-end bench that includes the campaign itself.
    let m = reduced_campaign(MachineSet::M, 2);
    let o = reduced_campaign(MachineSet::O, 2);

    g.bench_function("campaign_reduced_m_set", |b| {
        b.iter(|| black_box(reduced_campaign(MachineSet::M, 1)))
    });
    g.bench_function("table1_workload_impact", |b| {
        b.iter(|| black_box(tables::table1(&m)))
    });
    g.bench_function("table2_setup", |b| b.iter(|| black_box(tables::table2())));
    g.bench_function("table3_wavm3_nonlive_fit", |b| {
        b.iter(|| black_box(tables::table3_4(&m, MigrationKind::NonLive)))
    });
    g.bench_function("table4_wavm3_live_fit", |b| {
        b.iter(|| black_box(tables::table3_4(&m, MigrationKind::Live)))
    });
    g.bench_function("table5_cross_set_nrmse", |b| {
        b.iter(|| black_box(tables::table5(&m, &o)))
    });
    g.bench_function("table6_baseline_fits", |b| {
        b.iter(|| black_box(tables::table6(&m)))
    });
    g.bench_function("table7_model_comparison", |b| {
        b.iter(|| black_box(tables::table7(&m)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
