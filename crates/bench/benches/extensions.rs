//! Benches for the extension features: NETLOAD, the ablation pipeline,
//! post-copy migration, SLA extraction, and consolidation planning /
//! execution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use wavm3_bench::{bench_runner, reduced_campaign, sample_record};
use wavm3_cluster::{hardware, vm_instances, Cluster, Link, MachineSet, VmId};
use wavm3_consolidation::{ConsolidationManager, PolicyConfig, VmLoad};
use wavm3_experiments::{ablation, netload};
use wavm3_migration::{MigrationKind, SlaReport};
use wavm3_models::paper;
use wavm3_simkit::RngFactory;

fn bench_netload(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("netload_single_run_50pct", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(netload::run_netload_once(0.5, seed))
        });
    });
    g.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    let dataset = reduced_campaign(MachineSet::M, 2);
    g.bench_function("ablation_full_grid", |b| {
        b.iter(|| black_box(ablation::run_ablation(&dataset)))
    });
    g.finish();
}

fn bench_postcopy(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(20);
    let scenario = wavm3_bench::baseline_scenario(MigrationKind::PostCopy);
    g.bench_function("post_copy_migration_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenario.build(RngFactory::new(seed)).run())
        });
    });
    g.finish();
}

fn bench_sla(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    let record = sample_record(MigrationKind::Live);
    g.bench_function("sla_report_extraction", |b| {
        b.iter(|| black_box(SlaReport::from_record(&record)))
    });
    g.finish();
}

fn bench_consolidation(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    // Three-host testbed with a consolidation candidate.
    let mut cluster = Cluster::new(Link::gigabit());
    let h0 = cluster.add_host(hardware::m01());
    let h1 = cluster.add_host(hardware::m02());
    let _h2 = cluster.add_host(hardware::m01());
    let mut loads: BTreeMap<VmId, VmLoad> = BTreeMap::new();
    let lonely = cluster.boot_vm(h0, vm_instances::migrating_cpu());
    cluster.vm_mut(lonely).unwrap().set_cpu_demand(4.0);
    loads.insert(lonely, VmLoad::cpu_bound(4.0));
    for _ in 0..3 {
        let id = cluster.boot_vm(h1, vm_instances::load_cpu());
        cluster.vm_mut(id).unwrap().set_cpu_demand(4.0);
        loads.insert(id, VmLoad::cpu_bound(4.0));
    }
    let model = paper::wavm3_live();
    let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
    g.bench_function("consolidation_plan", |b| {
        b.iter(|| black_box(mgr.plan_consolidation(&cluster, &loads)))
    });
    let _ = bench_runner(1);
    g.finish();
}

criterion_group!(
    benches,
    bench_netload,
    bench_ablation,
    bench_postcopy,
    bench_sla,
    bench_consolidation
);
criterion_main!(benches);
