//! Hot-path microbenchmarks: the simulator, the real workload kernels,
//! the regression solvers, model evaluation and the analytic planner.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wavm3_bench::{baseline_scenario, sample_record};
use wavm3_cluster::{Link, MachineSet, MemoryImage};
use wavm3_migration::{MigrationConfig, MigrationKind};
use wavm3_models::{paper, EnergyModel, HostRole, PowerModel};
use wavm3_simkit::RngFactory;
use wavm3_stats::{fit_ols, levenberg_marquardt, LmOptions, Matrix};
use wavm3_workloads::kernels::{PageDirtier, SquareMatrix};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.bench_function("live_migration_run", |b| {
        let scenario = baseline_scenario(MigrationKind::Live);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenario.build(RngFactory::new(seed)).run())
        });
    });
    g.bench_function("non_live_migration_run", |b| {
        let scenario = baseline_scenario(MigrationKind::NonLive);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenario.build(RngFactory::new(seed)).run())
        });
    });
    g.finish();
}

fn bench_workload_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_kernels");
    let a = SquareMatrix::random(192, 1);
    let bm = SquareMatrix::random(192, 2);
    g.bench_function("matmul_naive_192", |b| {
        b.iter(|| black_box(a.multiply_naive(&bm)))
    });
    g.bench_function("matmul_parallel_192", |b| {
        b.iter(|| black_box(a.multiply_parallel(&bm)))
    });
    g.bench_function("pagedirtier_4k_pages_burst", |b| {
        let mut d = PageDirtier::new(4096, 4096, 3);
        b.iter(|| black_box(d.dirty_burst(1024)));
    });
    g.bench_function("dirty_bitmap_mark_1m", |b| {
        let mut img = MemoryImage::new(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % (1 << 20);
            black_box(img.mark_dirty(i));
        });
    });
    g.finish();
}

fn bench_regression(c: &mut Criterion) {
    let mut g = c.benchmark_group("regression");
    // A WAVM3-transfer-shaped design: 2000 rows × 5 columns.
    let rows: Vec<Vec<f64>> = (0..2000)
        .map(|i| {
            let f = |k: u64| ((i as u64 * 2654435761 + k * 40503) >> 3) % 101;
            vec![
                f(1) as f64,
                f(2) as f64,
                f(3) as f64 * 1e6,
                f(4) as f64,
                1.0,
            ]
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| 2.4 * r[0] + 0.4 * r[1] + 1.5e-6 * r[2] + 1.4 * r[3] + 430.0)
        .collect();
    let design = Matrix::from_nested(rows.clone());
    g.bench_function("ols_qr_2000x5", |b| {
        b.iter(|| black_box(fit_ols(&design, &y)))
    });
    g.bench_function("levenberg_marquardt_2000x5", |b| {
        b.iter(|| {
            let res = |p: &[f64]| -> Vec<f64> {
                rows.iter()
                    .zip(&y)
                    .map(|(r, t)| r.iter().zip(p).map(|(a, b)| a * b).sum::<f64>() - t)
                    .collect()
            };
            black_box(levenberg_marquardt(
                res,
                &[1.0, 1.0, 1e-6, 1.0, 400.0],
                &LmOptions::default(),
            ))
        })
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("models");
    let record = sample_record(MigrationKind::Live);
    let wavm3 = paper::wavm3_live();
    let huang = paper::huang();
    let liu = paper::liu();
    let strunk = paper::strunk();
    g.bench_function("wavm3_predict_power_sample", |b| {
        let s = record.samples[record.samples.len() / 2];
        b.iter(|| black_box(wavm3.predict_power(HostRole::Source, &s)))
    });
    g.bench_function("wavm3_predict_energy_record", |b| {
        b.iter(|| black_box(wavm3.predict_energy(HostRole::Source, &record)))
    });
    g.bench_function("huang_predict_energy_record", |b| {
        b.iter(|| black_box(huang.predict_energy(HostRole::Source, &record)))
    });
    g.bench_function("liu_predict_energy_record", |b| {
        b.iter(|| black_box(liu.predict_energy(HostRole::Source, &record)))
    });
    g.bench_function("strunk_predict_energy_record", |b| {
        b.iter(|| black_box(strunk.predict_energy(HostRole::Source, &record)))
    });
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    use wavm3_consolidation::{plan_migration, PlannerInputs};
    let mut g = c.benchmark_group("planner");
    let inputs = PlannerInputs {
        kind: MigrationKind::Live,
        machine_set: MachineSet::M,
        idle_power_w: 430.0,
        ram_mib: 4096,
        vcpus: 4,
        vm_cpu_fraction: 1.0,
        working_set_fraction: 0.95,
        page_write_rate: 220_000.0,
        source_other_cores: 16.0,
        target_other_cores: 8.0,
        source_capacity: 32.0,
        target_capacity: 32.0,
        link: Link::gigabit(),
        config: MigrationConfig::live(),
    };
    g.bench_function("plan_hot_memory_migration", |b| {
        b.iter(|| black_box(plan_migration(&inputs)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_workload_kernels,
    bench_regression,
    bench_models,
    bench_planner
);
criterion_main!(benches);
