//! Structured events and their deterministic JSONL encoding.
//!
//! Encoding is hand-rolled rather than serde-derived so the byte layout is
//! fully pinned down by this module: fixed key order, integer microsecond
//! timestamps, shortest-round-trip float formatting. Two campaigns with the
//! same seeds therefore produce byte-identical trace files regardless of
//! platform or thread count.

use crate::level::Level;
use wavm3_simkit::SimTime;

/// One structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counts, bytes, indices).
    U64(u64),
    /// Floating-point measurement.
    F64(f64),
    /// Free-form text (labels, outcomes).
    Str(String),
}

macro_rules! from_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $as)
            }
        })*
    };
}

from_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(v as f64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<SimTime> for FieldValue {
    fn from(v: SimTime) -> Self {
        FieldValue::U64(v.as_micros())
    }
}

impl From<wavm3_simkit::SimDuration> for FieldValue {
    fn from(v: wavm3_simkit::SimDuration) -> Self {
        FieldValue::U64(v.as_micros())
    }
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::I64(i) => {
                out.push_str(&i.to_string());
            }
            FieldValue::U64(u) => {
                out.push_str(&u.to_string());
            }
            FieldValue::F64(f) => {
                // JSON has no NaN/Inf; mirror serde_json's `null` choice.
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Str(s) => write_json_string(out, s),
        }
    }

    /// Console rendering (`key=value`, strings unquoted unless spaced).
    fn write_console(&self, out: &mut String) {
        match self {
            FieldValue::Str(s) if s.contains([' ', '=']) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            FieldValue::Str(s) => out.push_str(s),
            other => other.write_json(out),
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One trace record: a point event, or a closed span when
/// [`Event::span_start`] is set (then [`Event::t`] is the span end).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation instant of the event (span end for spans).
    pub t: SimTime,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem ("migration", "runner", "consolidation", …).
    pub target: &'static str,
    /// Event name within the target ("phase.transfer", "runner.retry", …).
    pub name: &'static str,
    /// Span start instant; `None` for point events.
    pub span_start: Option<SimTime>,
    /// Key/value payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// One JSONL line (no trailing newline). Key order is fixed:
    /// `t_us, level, target, name, [span_start_us,] fields`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96 + self.fields.len() * 24);
        out.push_str("{\"t_us\":");
        out.push_str(&self.t.as_micros().to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"target\":");
        write_json_string(&mut out, self.target);
        out.push_str(",\"name\":");
        write_json_string(&mut out, self.name);
        if let Some(start) = self.span_start {
            out.push_str(",\"span_start_us\":");
            out.push_str(&start.as_micros().to_string());
        }
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// One human console line.
    pub fn to_console(&self) -> String {
        let mut out = String::with_capacity(80);
        out.push_str(&format!(
            "[{:>10.3}s {:<5} {}] {}",
            self.t.as_secs_f64(),
            self.level.as_str(),
            self.target,
            self.name
        ));
        if let Some(start) = self.span_start {
            out.push_str(&format!(
                " span={:.3}s..{:.3}s",
                start.as_secs_f64(),
                self.t.as_secs_f64()
            ));
        }
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            v.write_console(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            t: SimTime::from_millis(1_500),
            level: Level::Info,
            target: "migration",
            name: "phase.transfer",
            span_start: Some(SimTime::from_millis(500)),
            fields: vec![
                ("bw", FieldValue::F64(1.15e8)),
                ("rounds", FieldValue::U64(3)),
                ("label", FieldValue::Str("0 VM".into())),
                ("aborted", FieldValue::Bool(false)),
            ],
        }
    }

    #[test]
    fn jsonl_layout_is_pinned() {
        assert_eq!(
            sample().to_jsonl(),
            "{\"t_us\":1500000,\"level\":\"info\",\"target\":\"migration\",\
             \"name\":\"phase.transfer\",\"span_start_us\":500000,\
             \"fields\":{\"bw\":115000000,\"rounds\":3,\"label\":\"0 VM\",\"aborted\":false}}"
        );
    }

    #[test]
    fn jsonl_escapes_strings() {
        let ev = Event {
            t: SimTime::ZERO,
            level: Level::Error,
            target: "t",
            name: "n",
            span_start: None,
            fields: vec![("msg", FieldValue::Str("a\"b\\c\nd".into()))],
        };
        assert!(ev.to_jsonl().contains("\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = Event {
            t: SimTime::ZERO,
            level: Level::Info,
            target: "t",
            name: "n",
            span_start: None,
            fields: vec![("x", FieldValue::F64(f64::NAN))],
        };
        assert!(ev.to_jsonl().contains("\"x\":null"));
    }

    #[test]
    fn console_line_is_readable() {
        let line = sample().to_console();
        assert!(line.contains("info"));
        assert!(line.contains("phase.transfer"));
        assert!(line.contains("label=\"0 VM\""));
        assert!(line.contains("span=0.500s..1.500s"));
    }
}
