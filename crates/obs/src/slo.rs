//! SLO evaluation over RED metric families, and online residual drift
//! monitoring.
//!
//! ## RED families
//!
//! The serving layer records one duration histogram per
//! route × status-class under the naming convention
//! `serve.red.{route}.{class}.duration_ms` (classes from
//! [`crate::reqtrace::status_class`]: `2xx`, `4xx`, `429`, `503`,
//! `5xx`, `drop`). [`evaluate`] walks a [`MetricsSnapshot`], regroups
//! those families per route, and scores them against a declarative
//! [`SloConfig`]:
//!
//! * **availability** — `429`/`503`/`5xx`/`drop` outcomes spend error
//!   budget (plain `4xx` is the client's bug and spends nothing);
//!   the *burn rate* is `error_rate / (1 - objective)`, the standard
//!   multi-window burn-rate gauge (burn 1.0 = exactly consuming the
//!   budget, >1 = on track to exhaust it).
//! * **p99 latency** — the interpolated p99 of the `2xx` histogram is
//!   compared against the objective, and the fraction of successes
//!   slower than the objective (by bucket rank) burns the latency
//!   budget at `slow_fraction / (1 - objective)`.
//!
//! ## Drift
//!
//! [`DriftMonitor`] keeps a sliding window of signed residuals
//! (`predicted − truth`) per key (`{kind}.{role}` for the serving
//! layer), summarising each window as NRMSE% — RMSE normalised by the
//! window's mean |truth|, the same Table VII metric the paper reports.
//! A window is *degraded* once it holds `min_samples` and its NRMSE
//! exceeds `multiple ×` the configured per-key baseline; the serving
//! layer surfaces that on `/healthz`.

use crate::metrics::MetricsSnapshot;
use serde::Serialize;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Metric-name prefix of every RED duration family.
pub const RED_PREFIX: &str = "serve.red.";
/// Metric-name suffix of every RED duration family.
pub const RED_SUFFIX: &str = ".duration_ms";

/// The RED duration histogram name for one route × status class.
pub fn red_metric(route: &str, class: &str) -> String {
    format!("{RED_PREFIX}{route}.{class}{RED_SUFFIX}")
}

/// Status classes that spend availability error budget. Plain `4xx`
/// (malformed bodies, unknown routes) is excluded: a client bug is not
/// a service failure.
pub const ERROR_CLASSES: &[&str] = &["429", "503", "5xx", "drop"];

/// Declarative service-level objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SloConfig {
    /// Availability objective in `(0, 1)`, e.g. `0.99` = at most 1% of
    /// requests may fail.
    pub availability: f64,
    /// p99 latency objective, milliseconds.
    pub p99_ms: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            availability: 0.99,
            p99_ms: 500.0,
        }
    }
}

impl SloConfig {
    /// Reject objectives with no error budget (`availability = 1`
    /// divides by zero) or nonsensical bounds.
    pub fn validate(&self) -> Result<(), String> {
        if !self.availability.is_finite() || !(0.0..1.0).contains(&self.availability) {
            return Err(format!(
                "slo.availability must be in [0, 1) — an objective of exactly 1 \
                 leaves no error budget to burn — got {}",
                self.availability
            ));
        }
        if !self.p99_ms.is_finite() || self.p99_ms <= 0.0 {
            return Err(format!(
                "slo.p99_ms must be finite and positive, got {}",
                self.p99_ms
            ));
        }
        Ok(())
    }
}

/// One route's scored SLO state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouteSlo {
    /// Route label.
    pub route: String,
    /// Total requests across every status class.
    pub requests: u64,
    /// Requests in budget-spending classes (`429`/`503`/`5xx`/`drop`).
    pub errors: u64,
    /// `errors / requests` (0 when idle).
    pub error_rate: f64,
    /// `error_rate / (1 - availability objective)`.
    pub burn_rate: f64,
    /// Interpolated p99 of the `2xx` duration histogram, ms (0 when no
    /// successes were recorded yet).
    pub p99_ms: f64,
    /// Successes slower than the latency objective (by bucket rank).
    pub slow: u64,
    /// `slow / successes / (1 - availability objective)`.
    pub latency_burn_rate: f64,
}

/// The full SLO report served by `GET /debug/slo`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// The objectives the routes were scored against.
    pub objectives: SloConfig,
    /// Per-route scores, route order.
    pub routes: Vec<RouteSlo>,
    /// Max availability burn rate across routes.
    pub worst_burn_rate: f64,
    /// Max latency burn rate across routes.
    pub worst_latency_burn_rate: f64,
}

impl SloReport {
    /// Flatten into gauge samples for the metrics registry
    /// (`serve.slo.{route}.burn_rate`, …, `serve.slo.worst_burn_rate`).
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(self.routes.len() * 3 + 2);
        for r in &self.routes {
            out.push((format!("serve.slo.{}.error_rate", r.route), r.error_rate));
            out.push((format!("serve.slo.{}.burn_rate", r.route), r.burn_rate));
            out.push((
                format!("serve.slo.{}.latency_burn_rate", r.route),
                r.latency_burn_rate,
            ));
        }
        out.push((
            "serve.slo.worst_burn_rate".to_string(),
            self.worst_burn_rate,
        ));
        out.push((
            "serve.slo.worst_latency_burn_rate".to_string(),
            self.worst_latency_burn_rate,
        ));
        out
    }
}

/// Score every RED family in `snapshot` against `cfg`.
pub fn evaluate(snapshot: &MetricsSnapshot, cfg: &SloConfig) -> SloReport {
    // route -> class -> (count, slow-beyond-objective)
    let mut routes: BTreeMap<String, BTreeMap<String, (u64, u64)>> = BTreeMap::new();
    let mut p99s: BTreeMap<String, f64> = BTreeMap::new();
    for (name, hist) in &snapshot.histograms {
        let Some(tail) = name.strip_prefix(RED_PREFIX) else {
            continue;
        };
        let Some(stem) = tail.strip_suffix(RED_SUFFIX) else {
            continue;
        };
        let Some((route, class)) = stem.rsplit_once('.') else {
            continue;
        };
        // Successes at or under the objective: cumulative count of the
        // buckets whose upper bound fits the objective. The objective
        // should sit on a bucket edge; anything between edges is scored
        // conservatively (the straddling bucket counts as slow).
        let within: u64 = hist
            .bounds
            .iter()
            .zip(&hist.counts)
            .filter(|(b, _)| **b <= cfg.p99_ms)
            .map(|(_, c)| *c)
            .sum();
        let slow = hist.count - within.min(hist.count);
        routes
            .entry(route.to_string())
            .or_default()
            .insert(class.to_string(), (hist.count, slow));
        if class == "2xx" {
            if let Some(p99) = hist.quantile(0.99) {
                p99s.insert(route.to_string(), p99);
            }
        }
    }

    let budget = 1.0 - cfg.availability;
    let mut report = SloReport {
        objectives: *cfg,
        routes: Vec::with_capacity(routes.len()),
        worst_burn_rate: 0.0,
        worst_latency_burn_rate: 0.0,
    };
    for (route, classes) in routes {
        let requests: u64 = classes.values().map(|(n, _)| n).sum();
        let errors: u64 = ERROR_CLASSES
            .iter()
            .filter_map(|c| classes.get(*c))
            .map(|(n, _)| n)
            .sum();
        let (successes, slow) = classes.get("2xx").copied().unwrap_or((0, 0));
        let error_rate = if requests == 0 {
            0.0
        } else {
            errors as f64 / requests as f64
        };
        let slow_fraction = if successes == 0 {
            0.0
        } else {
            slow as f64 / successes as f64
        };
        let slo = RouteSlo {
            p99_ms: p99s.get(&route).copied().unwrap_or(0.0),
            route,
            requests,
            errors,
            error_rate,
            burn_rate: error_rate / budget,
            slow,
            latency_burn_rate: slow_fraction / budget,
        };
        report.worst_burn_rate = report.worst_burn_rate.max(slo.burn_rate);
        report.worst_latency_burn_rate = report.worst_latency_burn_rate.max(slo.latency_burn_rate);
        report.routes.push(slo);
    }
    report
}

/// Drift-monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DriftConfig {
    /// Residuals retained per key (sliding window).
    pub window: usize,
    /// Minimum residuals before a window may be called degraded —
    /// guards against one noisy request tripping the health state.
    pub min_samples: usize,
    /// Degraded once window NRMSE exceeds `multiple × baseline`.
    pub multiple: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 256,
            min_samples: 32,
            multiple: 3.0,
        }
    }
}

impl DriftConfig {
    /// Reject unusable windows and non-positive multiples.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("drift.window must hold at least one residual".to_string());
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(format!(
                "drift.min_samples must be in [1, window={}], got {}",
                self.window, self.min_samples
            ));
        }
        if !self.multiple.is_finite() || self.multiple <= 0.0 {
            return Err(format!(
                "drift.multiple must be finite and positive, got {}",
                self.multiple
            ));
        }
        Ok(())
    }
}

struct DriftWindow {
    /// `(signed residual, |truth|)` pairs, oldest first.
    residuals: VecDeque<(f64, f64)>,
}

impl DriftWindow {
    /// NRMSE% of the current window: RMSE / mean(|truth|) × 100.
    fn nrmse_pct(&self) -> Option<f64> {
        if self.residuals.is_empty() {
            return None;
        }
        let n = self.residuals.len() as f64;
        let mse: f64 = self.residuals.iter().map(|(r, _)| r * r).sum::<f64>() / n;
        let mean_truth: f64 = self.residuals.iter().map(|(_, t)| t).sum::<f64>() / n;
        if mean_truth <= 0.0 {
            return None;
        }
        Some(mse.sqrt() / mean_truth * 100.0)
    }
}

/// One key's drift state at observation time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DriftState {
    /// Window key (`{kind}.{role}` in the serving layer).
    pub key: String,
    /// Residuals currently windowed.
    pub samples: u64,
    /// Window NRMSE%, 0 until computable.
    pub nrmse_pct: f64,
    /// The Table VII baseline this key is compared against.
    pub baseline_pct: f64,
    /// Is this window past `multiple × baseline` with enough samples?
    pub degraded: bool,
}

/// Windowed per-key residual drift monitor.
pub struct DriftMonitor {
    cfg: DriftConfig,
    baselines: BTreeMap<String, f64>,
    default_baseline: f64,
    windows: Mutex<BTreeMap<String, DriftWindow>>,
}

impl DriftMonitor {
    /// A monitor with per-key NRMSE baselines (percent). Keys without a
    /// configured baseline compare against `default_baseline`.
    pub fn new(
        cfg: DriftConfig,
        baselines: impl IntoIterator<Item = (String, f64)>,
        default_baseline: f64,
    ) -> DriftMonitor {
        DriftMonitor {
            cfg,
            baselines: baselines.into_iter().collect(),
            default_baseline,
            windows: Mutex::new(BTreeMap::new()),
        }
    }

    fn baseline(&self, key: &str) -> f64 {
        self.baselines
            .get(key)
            .copied()
            .unwrap_or(self.default_baseline)
    }

    /// Stream one `(predicted, truth)` pair into `key`'s window and
    /// return the window's updated state. `truth` must be positive and
    /// finite to count (a zero/absurd truth would poison the
    /// normalisation).
    pub fn record(&self, key: &str, predicted: f64, truth: f64) -> Option<DriftState> {
        if !truth.is_finite() || truth <= 0.0 || !predicted.is_finite() {
            return None;
        }
        let mut windows = self.windows.lock().unwrap_or_else(|p| p.into_inner());
        let window = windows
            .entry(key.to_string())
            .or_insert_with(|| DriftWindow {
                residuals: VecDeque::with_capacity(self.cfg.window),
            });
        if window.residuals.len() == self.cfg.window {
            window.residuals.pop_front();
        }
        window.residuals.push_back((predicted - truth, truth.abs()));
        Some(self.state_of(key, window))
    }

    fn state_of(&self, key: &str, window: &DriftWindow) -> DriftState {
        let samples = window.residuals.len() as u64;
        let nrmse_pct = window.nrmse_pct().unwrap_or(0.0);
        let baseline_pct = self.baseline(key);
        DriftState {
            key: key.to_string(),
            samples,
            nrmse_pct,
            baseline_pct,
            degraded: samples >= self.cfg.min_samples as u64
                && nrmse_pct > self.cfg.multiple * baseline_pct,
        }
    }

    /// Every key's current state, key order.
    pub fn states(&self) -> Vec<DriftState> {
        let windows = self.windows.lock().unwrap_or_else(|p| p.into_inner());
        windows.iter().map(|(k, w)| self.state_of(k, w)).collect()
    }

    /// Keys currently degraded, key order — the `/healthz` payload.
    pub fn degraded_keys(&self) -> Vec<String> {
        self.states()
            .into_iter()
            .filter(|s| s.degraded)
            .map(|s| s.key)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{buckets, Registry};

    #[test]
    fn slo_config_validation() {
        assert!(SloConfig::default().validate().is_ok());
        for bad in [
            SloConfig {
                availability: 1.0,
                ..SloConfig::default()
            },
            SloConfig {
                availability: -0.1,
                ..SloConfig::default()
            },
            SloConfig {
                availability: f64::NAN,
                ..SloConfig::default()
            },
            SloConfig {
                p99_ms: 0.0,
                ..SloConfig::default()
            },
            SloConfig {
                p99_ms: f64::INFINITY,
                ..SloConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn evaluate_burns_budget_for_overload_not_client_bugs() {
        let r = Registry::new();
        // predict: 96 ok, 2 shed, 1 injected fault, 1 chaos drop, and 10
        // client errors that must NOT spend budget.
        for _ in 0..96 {
            r.observe(&red_metric("predict", "2xx"), buckets::LATENCY_MS, 5.0);
        }
        for _ in 0..2 {
            r.observe(&red_metric("predict", "429"), buckets::LATENCY_MS, 1.0);
        }
        r.observe(&red_metric("predict", "5xx"), buckets::LATENCY_MS, 2.0);
        r.observe(&red_metric("predict", "drop"), buckets::LATENCY_MS, 2.0);
        for _ in 0..10 {
            r.observe(&red_metric("predict", "4xx"), buckets::LATENCY_MS, 1.0);
        }
        let cfg = SloConfig {
            availability: 0.99,
            p99_ms: 500.0,
        };
        let report = evaluate(&r.snapshot(), &cfg);
        assert_eq!(report.routes.len(), 1);
        let p = &report.routes[0];
        assert_eq!(p.route, "predict");
        assert_eq!(p.requests, 110);
        assert_eq!(p.errors, 4);
        let expected_rate = 4.0 / 110.0;
        assert!((p.error_rate - expected_rate).abs() < 1e-12);
        assert!((p.burn_rate - expected_rate / 0.01).abs() < 1e-9);
        assert_eq!(report.worst_burn_rate, p.burn_rate);
        assert!(p.p99_ms > 0.0);
        assert_eq!(p.slow, 0);
        assert_eq!(p.latency_burn_rate, 0.0);
        // Gauges carry the same numbers under the expected names.
        let gauges = report.gauges();
        assert!(gauges
            .iter()
            .any(|(n, v)| n == "serve.slo.predict.burn_rate" && *v == p.burn_rate));
        assert!(gauges.iter().any(|(n, _)| n == "serve.slo.worst_burn_rate"));
    }

    #[test]
    fn latency_budget_burns_on_slow_successes() {
        let r = Registry::new();
        for _ in 0..9 {
            r.observe(&red_metric("plan", "2xx"), buckets::LATENCY_MS, 10.0);
        }
        // One success way beyond the 100 ms objective.
        r.observe(&red_metric("plan", "2xx"), buckets::LATENCY_MS, 900.0);
        let cfg = SloConfig {
            availability: 0.9,
            p99_ms: 100.0,
        };
        let report = evaluate(&r.snapshot(), &cfg);
        let p = &report.routes[0];
        assert_eq!(p.slow, 1);
        assert!((p.latency_burn_rate - 0.1 / 0.1).abs() < 1e-9);
        assert_eq!(p.errors, 0);
        assert_eq!(p.burn_rate, 0.0);
    }

    #[test]
    fn evaluate_ignores_non_red_histograms_and_idles_at_zero() {
        let r = Registry::new();
        r.observe("serve.latency_ms", buckets::LATENCY_MS, 3.0);
        r.observe("migration.transfer_s", buckets::DURATION_S, 3.0);
        let report = evaluate(&r.snapshot(), &SloConfig::default());
        assert!(report.routes.is_empty());
        assert_eq!(report.worst_burn_rate, 0.0);
        // The report still serialises for /debug/slo.
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("worst_burn_rate"));
    }

    #[test]
    fn drift_config_validation() {
        assert!(DriftConfig::default().validate().is_ok());
        for bad in [
            DriftConfig {
                window: 0,
                ..DriftConfig::default()
            },
            DriftConfig {
                min_samples: 0,
                ..DriftConfig::default()
            },
            DriftConfig {
                window: 8,
                min_samples: 9,
                ..DriftConfig::default()
            },
            DriftConfig {
                multiple: 0.0,
                ..DriftConfig::default()
            },
            DriftConfig {
                multiple: f64::NAN,
                ..DriftConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn drift_window_flags_a_misfitted_model_but_not_noise() {
        let cfg = DriftConfig {
            window: 64,
            min_samples: 16,
            multiple: 3.0,
        };
        let monitor = DriftMonitor::new(cfg, [("live.source".to_string(), 11.8)], 11.8);
        // Healthy: ±3% noise around truth 1000 — NRMSE ≈ 3% « 35.4%.
        for i in 0..32 {
            let truth = 1000.0;
            let predicted = truth * (1.0 + if i % 2 == 0 { 0.03 } else { -0.03 });
            let state = monitor.record("live.source", predicted, truth).unwrap();
            assert!(!state.degraded, "noise must not trip drift: {state:?}");
        }
        assert!(monitor.degraded_keys().is_empty());
        // Mis-fitted: predictions 2× truth — NRMSE 100% > 3 × 11.8%.
        for _ in 0..32 {
            monitor.record("live.source", 2000.0, 1000.0);
        }
        let states = monitor.states();
        assert_eq!(states.len(), 1);
        assert!(states[0].nrmse_pct > 35.4, "{:?}", states[0]);
        assert!(states[0].degraded);
        assert_eq!(monitor.degraded_keys(), vec!["live.source".to_string()]);
    }

    #[test]
    fn drift_needs_min_samples_and_rejects_poisonous_truth() {
        let monitor = DriftMonitor::new(
            DriftConfig {
                window: 16,
                min_samples: 8,
                multiple: 2.0,
            },
            [],
            10.0,
        );
        // Way off, but below min_samples: never degraded.
        for _ in 0..7 {
            let state = monitor.record("k", 100.0, 1.0).unwrap();
            assert!(!state.degraded, "{state:?}");
        }
        // Zero, negative, and non-finite truths are dropped.
        assert!(monitor.record("k", 1.0, 0.0).is_none());
        assert!(monitor.record("k", 1.0, -5.0).is_none());
        assert!(monitor.record("k", 1.0, f64::NAN).is_none());
        assert!(monitor.record("k", f64::NAN, 1.0).is_none());
        // The eighth valid sample tips it.
        let state = monitor.record("k", 100.0, 1.0).unwrap();
        assert!(state.degraded, "{state:?}");
    }

    #[test]
    fn drift_window_slides() {
        let monitor = DriftMonitor::new(
            DriftConfig {
                window: 4,
                min_samples: 2,
                multiple: 2.0,
            },
            [],
            10.0,
        );
        // Fill with terrible residuals, then flush with perfect ones:
        // the window must forget.
        for _ in 0..4 {
            monitor.record("k", 300.0, 100.0);
        }
        assert_eq!(monitor.degraded_keys(), vec!["k".to_string()]);
        for _ in 0..4 {
            monitor.record("k", 100.0, 100.0);
        }
        let state = &monitor.states()[0];
        assert_eq!(state.samples, 4);
        assert_eq!(state.nrmse_pct, 0.0);
        assert!(!state.degraded);
    }
}
