//! Severity levels for trace events.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Event severity, ordered `Trace < Debug < Info < Warn < Error`.
///
/// A sink with filter level `L` accepts every event whose level is `>= L`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Level {
    /// Finest-grained engine internals (per-tick detail).
    Trace,
    /// Per-round / per-sample detail.
    Debug,
    /// Run and phase lifecycle (the default).
    #[default]
    Info,
    /// Injected faults, retries, degraded behaviour.
    Warn,
    /// Failures that abandon work.
    Error,
}

impl Level {
    /// All levels, ascending.
    pub const ALL: [Level; 5] = [
        Level::Trace,
        Level::Debug,
        Level::Info,
        Level::Warn,
        Level::Error,
    ];

    /// Lower-case name, as used in JSONL output and `--log-level`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognised level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(pub String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown level {:?} (expected trace|debug|info|warn|error)",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Ok(Level::Trace),
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" | "warning" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            other => Err(ParseLevelError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_ascending() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn parse_round_trips() {
        for lvl in Level::ALL {
            assert_eq!(lvl.as_str().parse::<Level>().unwrap(), lvl);
        }
        assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
    }
}
