//! Wall-clock stage profiling.
//!
//! Stage timers measure *real* elapsed time ([`std::time::Instant`]), so
//! their readings are inherently non-reproducible. They are therefore
//! firewalled from the deterministic side of the crate: profiling data
//! never enters the trace buffer or golden outputs — it only appears in
//! the [`ObsReport::profiling`](crate::ObsReport) section and the
//! per-campaign summary.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

static PROF_ACTIVE: AtomicBool = AtomicBool::new(false);

pub(crate) fn set_active(on: bool) {
    PROF_ACTIVE.store(on, Ordering::Relaxed);
}

/// `true` when a session armed the profiler.
#[inline]
pub fn profiling_active() -> bool {
    PROF_ACTIVE.load(Ordering::Relaxed)
}

/// Accumulated wall-clock statistics of one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Completed timings.
    pub count: u64,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
    /// Longest single timing, milliseconds.
    pub max_ms: f64,
}

impl StageStats {
    fn record(&mut self, elapsed: Duration) {
        let ms = elapsed.as_secs_f64() * 1e3;
        self.count += 1;
        self.total_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Mean wall time per timing, milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms / self.count as f64
        }
    }
}

/// Per-stage wall-clock statistics, by stage name.
pub type ProfileSnapshot = BTreeMap<String, StageStats>;

fn table() -> &'static Mutex<BTreeMap<&'static str, StageStats>> {
    static TABLE: OnceLock<Mutex<BTreeMap<&'static str, StageStats>>> = OnceLock::new();
    TABLE.get_or_init(Mutex::default)
}

fn lock_table() -> MutexGuard<'static, BTreeMap<&'static str, StageStats>> {
    table().lock().unwrap_or_else(|p| p.into_inner())
}

/// A running stage timer; records into the profile table on drop.
#[must_use = "the timer records when dropped"]
pub struct StageTimer {
    inner: Option<(&'static str, Instant)>,
}

/// Start timing `name` (inert unless a profiling session is armed).
#[inline]
pub fn stage(name: &'static str) -> StageTimer {
    StageTimer {
        inner: profiling_active().then(|| (name, Instant::now())),
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            lock_table()
                .entry(name)
                .or_default()
                .record(start.elapsed());
        }
    }
}

/// Snapshot the profile table.
pub fn snapshot() -> ProfileSnapshot {
    lock_table()
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect()
}

pub(crate) fn reset_global() {
    lock_table().clear();
}

/// Human-readable per-campaign summary table (empty string when nothing
/// was profiled).
pub fn summarise(snapshot: &ProfileSnapshot) -> String {
    if snapshot.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "profile: stage                              count   total_ms    mean_ms     max_ms\n",
    );
    for (name, s) in snapshot {
        let _ = writeln!(
            out,
            "profile: {name:<34} {:>6} {:>10.1} {:>10.2} {:>10.2}",
            s.count,
            s.total_ms,
            s.mean_ms(),
            s.max_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ObsConfig, Session};

    #[test]
    fn timers_are_inert_without_a_session() {
        let _guard = crate::session::lock_for_tests();
        {
            let _t = stage("inert.stage");
        }
        assert!(!snapshot().contains_key("inert.stage"));
    }

    #[test]
    fn timers_accumulate_under_a_session() {
        let session = Session::install(ObsConfig {
            profiling: true,
            ..ObsConfig::default()
        });
        for _ in 0..3 {
            let _t = stage("unit.sleepless");
        }
        let report = session.finish();
        let stats = report.profiling["unit.sleepless"];
        assert_eq!(stats.count, 3);
        assert!(stats.total_ms >= 0.0);
        assert!(stats.max_ms >= stats.mean_ms());
        let text = summarise(&report.profiling);
        assert!(text.contains("unit.sleepless"));
        assert!(summarise(&ProfileSnapshot::new()).is_empty());
    }
}
