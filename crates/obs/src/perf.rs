//! Hierarchical wall-clock self-profiler.
//!
//! Replaces the original flat stage map with a **call tree**: scopes
//! opened with [`scope`] nest, so a snapshot attributes wall time to
//! `runner.scenario → runner.repetition → migration.run.analytic` paths
//! with cumulative *and* self time per node, plus per-scope counts,
//! maxima and (behind the `count-allocs` feature) allocation tallies.
//!
//! ## Zero contention
//!
//! Each OS thread records into its own fixed-capacity node arena
//! ([`MAX_NODES`] slots of atomic stats) that only the owner thread
//! writes. The global registry mutex is taken once per thread per
//! session (registration) and once at snapshot; opening/closing a scope
//! touches no shared state at all, so rayon workers never serialise on
//! the profiler. With no profiling session armed, a probe is a single
//! relaxed atomic load; the `perf-off` cargo feature compiles probes out
//! entirely (the "no-obs build" the CI overhead gate compares against).
//!
//! ## Determinism firewall
//!
//! Wall time is inherently non-reproducible, so profiling data never
//! enters the deterministic trace buffer or any golden output: it only
//! appears in the session report's dedicated `perf`/`profiling` sections
//! and the exporter files ([`chrome_trace`], [`collapsed_stacks`]).
//! Snapshot *merging* is deterministic (trees merge by name in BTreeMap
//! order), so equal recordings render identically.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Deepest scope nesting recorded; deeper scopes are counted as dropped.
pub const MAX_DEPTH: usize = 64;
/// Distinct (parent, name) nodes per thread; beyond this scopes are
/// counted as dropped rather than reallocating on the hot path.
pub const MAX_NODES: usize = 512;

// --- Always-available data model. ------------------------------------------

/// One merged node of the profiled call tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfNode {
    /// Scope name as passed to [`scope`].
    pub name: String,
    /// Completed timings of this node.
    pub count: u64,
    /// Cumulative wall time (includes children), nanoseconds.
    pub total_ns: u64,
    /// Wall time not attributed to any child scope, nanoseconds.
    pub self_ns: u64,
    /// Longest single timing, nanoseconds.
    pub max_ns: u64,
    /// Heap allocations observed inside the scope (cumulative; 0 unless
    /// built with the `count-allocs` feature).
    pub allocs: u64,
    /// Bytes requested by those allocations (cumulative).
    pub alloc_bytes: u64,
    /// Child scopes, merged by name.
    pub children: Vec<PerfNode>,
}

impl PerfNode {
    /// Cumulative wall time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Self wall time in milliseconds.
    pub fn self_ms(&self) -> f64 {
        self.self_ns as f64 / 1e6
    }

    /// Longest single timing in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_ns as f64 / 1e6
    }
}

/// A merged point-in-time copy of every thread's call tree plus the
/// session's profiler counters (cache hits, RNG stream derivations, …).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfSnapshot {
    /// Top-level scopes, merged across threads by name.
    pub roots: Vec<PerfNode>,
    /// Named event counters recorded via [`counter_add`] and the simkit
    /// probe hooks.
    pub counters: BTreeMap<String, u64>,
}

/// One row of a flattened hotspot listing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Hotspot {
    /// Full `/`-joined path from the root scope.
    pub path: String,
    /// Leaf scope name.
    pub name: String,
    /// Completed timings.
    pub count: u64,
    /// Cumulative wall time, nanoseconds.
    pub total_ns: u64,
    /// Self wall time, nanoseconds.
    pub self_ns: u64,
    /// Longest single timing, nanoseconds.
    pub max_ns: u64,
    /// Cumulative allocations (0 without `count-allocs`).
    pub allocs: u64,
    /// Cumulative allocated bytes.
    pub alloc_bytes: u64,
}

impl PerfSnapshot {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty() && self.counters.is_empty()
    }

    /// Total cumulative wall time across the root scopes, nanoseconds.
    /// Because self time is defined as cumulative minus children, the
    /// self times of the whole tree sum back to exactly this value.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Sum of self time over every node, nanoseconds.
    pub fn self_total_ns(&self) -> u64 {
        fn rec(n: &PerfNode) -> u64 {
            n.self_ns + n.children.iter().map(rec).sum::<u64>()
        }
        self.roots.iter().map(rec).sum()
    }

    /// Total [`PerfNode::count`] over every node named `name`, anywhere
    /// in the tree (e.g. `count_of("migration.run.analytic")` = number
    /// of profiled migration runs).
    pub fn count_of(&self, name: &str) -> u64 {
        fn rec(n: &PerfNode, name: &str) -> u64 {
            let own = if n.name == name { n.count } else { 0 };
            own + n.children.iter().map(|c| rec(c, name)).sum::<u64>()
        }
        self.roots.iter().map(|r| rec(r, name)).sum()
    }

    /// Every node as a flat row, sorted by self time, largest first.
    pub fn hotspots(&self) -> Vec<Hotspot> {
        let mut rows = Vec::new();
        fn rec(n: &PerfNode, prefix: &str, rows: &mut Vec<Hotspot>) {
            let path = if prefix.is_empty() {
                n.name.clone()
            } else {
                format!("{prefix}/{}", n.name)
            };
            rows.push(Hotspot {
                path: path.clone(),
                name: n.name.clone(),
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.self_ns,
                max_ns: n.max_ns,
                allocs: n.allocs,
                alloc_bytes: n.alloc_bytes,
            });
            for c in &n.children {
                rec(c, &path, rows);
            }
        }
        for r in &self.roots {
            rec(r, "", &mut rows);
        }
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
        rows
    }

    /// The legacy flat per-stage view: path-keyed [`StageStats`].
    pub fn flatten(&self) -> ProfileSnapshot {
        self.hotspots()
            .into_iter()
            .map(|h| {
                (
                    h.path,
                    StageStats {
                        count: h.count,
                        total_ms: h.total_ns as f64 / 1e6,
                        self_ms: h.self_ns as f64 / 1e6,
                        max_ms: h.max_ns as f64 / 1e6,
                    },
                )
            })
            .collect()
    }
}

/// Accumulated wall-clock statistics of one stage (flat view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Completed timings.
    pub count: u64,
    /// Cumulative wall time, milliseconds.
    pub total_ms: f64,
    /// Wall time not attributed to child stages, milliseconds.
    pub self_ms: f64,
    /// Longest single timing, milliseconds.
    pub max_ms: f64,
}

impl StageStats {
    /// Mean wall time per timing, milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms / self.count as f64
        }
    }
}

/// Per-stage wall-clock statistics, keyed by `/`-joined call-tree path.
pub type ProfileSnapshot = BTreeMap<String, StageStats>;

/// Human-readable per-campaign summary of the flat view (empty string
/// when nothing was profiled).
pub fn summarise(snapshot: &ProfileSnapshot) -> String {
    if snapshot.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "profile: stage                                               count   total_ms    self_ms     max_ms\n",
    );
    for (name, s) in snapshot {
        let _ = writeln!(
            out,
            "profile: {name:<51} {:>6} {:>10.1} {:>10.1} {:>10.2}",
            s.count, s.total_ms, s.self_ms, s.max_ms
        );
    }
    out
}

// --- Exporters. -------------------------------------------------------------

/// Escape `s` as the body of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the snapshot as Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` or Perfetto.
///
/// The timeline is *synthetic*: scopes of one node ran at many different
/// wall-clock instants (and threads), so each merged node is laid out as
/// a single complete ("X") event of its cumulative duration, with its
/// children packed sequentially inside it — the uncovered remainder of a
/// span is its self time. Real counts and maxima ride along in `args`.
pub fn chrome_trace(snap: &PerfSnapshot) -> String {
    fn emit(out: &mut String, node: &PerfNode, ts_us: f64) {
        if !out.is_empty() {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"perf\",\"name\":\"{}\",\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"count\":{},\"self_us\":{:.3},\
             \"max_us\":{:.3},\"allocs\":{},\"alloc_bytes\":{}}}}}",
            json_escape(&node.name),
            ts_us,
            node.total_ns as f64 / 1e3,
            node.count,
            node.self_ns as f64 / 1e3,
            node.max_ns as f64 / 1e3,
            node.allocs,
            node.alloc_bytes,
        );
        let mut child_ts = ts_us;
        for c in &node.children {
            emit(out, c, child_ts);
            child_ts += c.total_ns as f64 / 1e3;
        }
    }
    let mut events = String::new();
    let mut ts = 0.0;
    for root in &snap.roots {
        emit(&mut events, root, ts);
        ts += root.total_ns as f64 / 1e3;
    }
    if !events.is_empty() {
        events.push(',');
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{events}\
         {{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"merged call tree\"}}}}]}}"
    )
}

/// Render the snapshot as collapsed stacks (`a;b;c <self_us>` per line),
/// directly consumable by `flamegraph.pl` / `inferno-flamegraph`. One
/// "sample" is one microsecond of self time.
pub fn collapsed_stacks(snap: &PerfSnapshot) -> String {
    fn rec(out: &mut String, node: &PerfNode, prefix: &str) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        let self_us = node.self_ns / 1_000;
        if self_us > 0 || node.children.is_empty() {
            let _ = writeln!(out, "{path} {self_us}");
        }
        for c in &node.children {
            rec(out, c, &path);
        }
    }
    let mut out = String::new();
    for r in &snap.roots {
        rec(&mut out, r, "");
    }
    out
}

// --- Recording machinery (compiled out under `perf-off`). -------------------

#[cfg(not(feature = "perf-off"))]
mod record {
    use super::{PerfNode, PerfSnapshot, MAX_DEPTH, MAX_NODES};
    use std::cell::RefCell;
    use std::collections::{BTreeMap, HashMap};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    static PERF_ACTIVE: AtomicBool = AtomicBool::new(false);
    /// Bumped by [`reset_global`] (under the registry lock) so stale
    /// thread-local cursors re-register instead of writing into tables
    /// from a finished session.
    static EPOCH: AtomicU64 = AtomicU64::new(0);

    pub fn set_active(on: bool) {
        PERF_ACTIVE.store(on, Ordering::Relaxed);
    }

    #[inline]
    pub fn profiling_active() -> bool {
        PERF_ACTIVE.load(Ordering::Relaxed)
    }

    struct NodeStats {
        count: AtomicU64,
        total_ns: AtomicU64,
        max_ns: AtomicU64,
        allocs: AtomicU64,
        alloc_bytes: AtomicU64,
    }

    impl NodeStats {
        const fn new() -> Self {
            NodeStats {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
                alloc_bytes: AtomicU64::new(0),
            }
        }
    }

    #[derive(Clone, Copy)]
    struct NodeMeta {
        name: &'static str,
        /// Index of the parent node, or `u32::MAX` for a root.
        parent: u32,
    }

    /// One thread's private arena. Only the owner thread writes the
    /// stats (relaxed atomics make the snapshot read race-free); the
    /// meta mutex is uncontended except while a snapshot runs.
    pub struct ThreadTable {
        meta: Mutex<Vec<NodeMeta>>,
        stats: Box<[NodeStats]>,
        counters: Mutex<BTreeMap<&'static str, u64>>,
    }

    impl ThreadTable {
        fn new() -> Self {
            ThreadTable {
                meta: Mutex::new(Vec::with_capacity(MAX_NODES)),
                stats: (0..MAX_NODES).map(|_| NodeStats::new()).collect(),
                counters: Mutex::new(BTreeMap::new()),
            }
        }
    }

    fn registry() -> &'static Mutex<Vec<Arc<ThreadTable>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadTable>>>> = OnceLock::new();
        REGISTRY.get_or_init(Mutex::default)
    }

    fn lock_registry() -> MutexGuard<'static, Vec<Arc<ThreadTable>>> {
        registry().lock().unwrap_or_else(|p| p.into_inner())
    }

    struct Frame {
        node: u32,
        start: Instant,
        allocs0: u64,
        alloc_bytes0: u64,
    }

    #[derive(Default)]
    struct Cursor {
        epoch: u64,
        table: Option<Arc<ThreadTable>>,
        lookup: HashMap<(u32, &'static str), u32>,
        stack: Vec<Frame>,
    }

    thread_local! {
        static CURSOR: RefCell<Cursor> = RefCell::new(Cursor::default());
    }

    #[cfg(feature = "count-allocs")]
    fn alloc_tally() -> (u64, u64) {
        super::alloc_counter::tally()
    }

    #[cfg(not(feature = "count-allocs"))]
    fn alloc_tally() -> (u64, u64) {
        (0, 0)
    }

    /// Point the cursor at a registered table for the current epoch.
    /// Returns `false` while open frames from a previous epoch are still
    /// draining (their recordings go to the orphaned table and are
    /// discarded — resets only happen at session boundaries).
    fn ensure_table(cur: &mut Cursor) -> bool {
        // EPOCH only changes under the registry lock, so loading it
        // after taking the lock gives a consistent (epoch, registry)
        // pair for registration.
        if cur.table.is_some() && cur.epoch == EPOCH.load(Ordering::Acquire) {
            return true;
        }
        if !cur.stack.is_empty() {
            return false;
        }
        let mut reg = lock_registry();
        let epoch = EPOCH.load(Ordering::Acquire);
        let table = Arc::new(ThreadTable::new());
        reg.push(table.clone());
        drop(reg);
        cur.table = Some(table);
        cur.lookup.clear();
        cur.epoch = epoch;
        true
    }

    /// Open a scope: resolve/create the `(parent, name)` node and push a
    /// frame. Returns `false` when the scope cannot be recorded (depth or
    /// node capacity exhausted, or an epoch change is draining).
    pub fn enter(name: &'static str) -> bool {
        CURSOR
            .try_with(|c| {
                let mut cur = c.borrow_mut();
                if !ensure_table(&mut cur) || cur.stack.len() >= MAX_DEPTH {
                    return false;
                }
                let parent = cur.stack.last().map(|f| f.node).unwrap_or(u32::MAX);
                let node = match cur.lookup.get(&(parent, name)) {
                    Some(&idx) => idx,
                    None => {
                        let table = cur.table.as_ref().expect("table ensured");
                        let mut meta = table.meta.lock().unwrap_or_else(|p| p.into_inner());
                        if meta.len() >= MAX_NODES {
                            return false;
                        }
                        let idx = meta.len() as u32;
                        meta.push(NodeMeta { name, parent });
                        drop(meta);
                        cur.lookup.insert((parent, name), idx);
                        idx
                    }
                };
                let (allocs0, alloc_bytes0) = alloc_tally();
                cur.stack.push(Frame {
                    node,
                    start: Instant::now(),
                    allocs0,
                    alloc_bytes0,
                });
                true
            })
            .unwrap_or(false)
    }

    /// Close the innermost scope and fold its timing into the node.
    pub fn exit() {
        let end = Instant::now();
        let _ = CURSOR.try_with(|c| {
            let mut cur = c.borrow_mut();
            let Some(frame) = cur.stack.pop() else {
                return;
            };
            let Some(table) = cur.table.as_ref() else {
                return;
            };
            let elapsed_ns = end
                .saturating_duration_since(frame.start)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            let stats = &table.stats[frame.node as usize];
            // Owner-thread-only writes: plain load/store max is race-free.
            stats.count.fetch_add(1, Ordering::Relaxed);
            stats.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
            if elapsed_ns > stats.max_ns.load(Ordering::Relaxed) {
                stats.max_ns.store(elapsed_ns, Ordering::Relaxed);
            }
            let (allocs, alloc_bytes) = alloc_tally();
            let d_allocs = allocs.saturating_sub(frame.allocs0);
            if d_allocs > 0 {
                stats.allocs.fetch_add(d_allocs, Ordering::Relaxed);
                stats.alloc_bytes.fetch_add(
                    alloc_bytes.saturating_sub(frame.alloc_bytes0),
                    Ordering::Relaxed,
                );
            }
        });
    }

    /// Add to a per-thread named counter (merged at snapshot).
    pub fn counter_add(name: &'static str, delta: u64) {
        let _ = CURSOR.try_with(|c| {
            let mut cur = c.borrow_mut();
            if ensure_table(&mut cur) {
                let table = cur.table.as_ref().expect("table ensured");
                let mut counters = table.counters.lock().unwrap_or_else(|p| p.into_inner());
                *counters.entry(name).or_insert(0) += delta;
            }
        });
    }

    #[derive(Default)]
    struct MergeNode {
        count: u64,
        total_ns: u64,
        max_ns: u64,
        allocs: u64,
        alloc_bytes: u64,
        children: BTreeMap<&'static str, MergeNode>,
    }

    fn merge_into(
        dst: &mut MergeNode,
        idx: usize,
        meta: &[NodeMeta],
        kids: &[Vec<usize>],
        table: &ThreadTable,
    ) {
        let stats = &table.stats[idx];
        let node = dst.children.entry(meta[idx].name).or_default();
        node.count += stats.count.load(Ordering::Relaxed);
        node.total_ns += stats.total_ns.load(Ordering::Relaxed);
        node.max_ns = node.max_ns.max(stats.max_ns.load(Ordering::Relaxed));
        node.allocs += stats.allocs.load(Ordering::Relaxed);
        node.alloc_bytes += stats.alloc_bytes.load(Ordering::Relaxed);
        for &k in &kids[idx] {
            merge_into(node, k, meta, kids, table);
        }
    }

    fn convert(children: BTreeMap<&'static str, MergeNode>) -> Vec<PerfNode> {
        children
            .into_iter()
            .map(|(name, m)| {
                let child_total: u64 = m.children.values().map(|c| c.total_ns).sum();
                PerfNode {
                    name: name.to_string(),
                    count: m.count,
                    total_ns: m.total_ns,
                    self_ns: m.total_ns.saturating_sub(child_total),
                    max_ns: m.max_ns,
                    allocs: m.allocs,
                    alloc_bytes: m.alloc_bytes,
                    children: convert(m.children),
                }
            })
            .collect()
    }

    /// Merge every registered thread table into one call tree.
    pub fn snapshot() -> PerfSnapshot {
        let tables: Vec<Arc<ThreadTable>> = lock_registry().clone();
        let mut root = MergeNode::default();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for table in &tables {
            let meta: Vec<NodeMeta> = table.meta.lock().unwrap_or_else(|p| p.into_inner()).clone();
            let mut kids: Vec<Vec<usize>> = vec![Vec::new(); meta.len()];
            let mut roots_idx: Vec<usize> = Vec::new();
            for (i, m) in meta.iter().enumerate() {
                if m.parent == u32::MAX {
                    roots_idx.push(i);
                } else {
                    kids[m.parent as usize].push(i);
                }
            }
            for &r in &roots_idx {
                merge_into(&mut root, r, &meta, &kids, table);
            }
            for (name, value) in table
                .counters
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
            {
                *counters.entry(name.to_string()).or_insert(0) += value;
            }
        }
        for (name, value) in wavm3_simkit::probe::snapshot() {
            if value > 0 {
                *counters.entry(name.to_string()).or_insert(0) += value;
            }
        }
        PerfSnapshot {
            roots: convert(root.children),
            counters,
        }
    }

    /// Drop every thread table and bump the epoch so cursors re-register.
    pub fn reset_global() {
        let mut reg = lock_registry();
        reg.clear();
        EPOCH.fetch_add(1, Ordering::Release);
    }
}

// --- Public probes. ---------------------------------------------------------

/// A running scope timer; folds its timing into the call tree on drop.
#[must_use = "the scope records when dropped"]
pub struct ScopeGuard {
    armed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "perf-off"))]
        if self.armed {
            record::exit();
        }
        #[cfg(feature = "perf-off")]
        let _ = self.armed;
    }
}

/// `true` when a session armed the profiler.
#[cfg(not(feature = "perf-off"))]
#[inline]
pub fn profiling_active() -> bool {
    record::profiling_active()
}

/// `true` when a session armed the profiler (never, in this build).
#[cfg(feature = "perf-off")]
#[inline(always)]
pub fn profiling_active() -> bool {
    false
}

/// Open a nested wall-clock scope (inert unless a profiling session is
/// armed; compiled out entirely under the `perf-off` feature).
#[cfg(not(feature = "perf-off"))]
#[inline]
pub fn scope(name: &'static str) -> ScopeGuard {
    if !record::profiling_active() {
        return ScopeGuard { armed: false };
    }
    ScopeGuard {
        armed: record::enter(name),
    }
}

/// Open a nested wall-clock scope (no-op in this build).
#[cfg(feature = "perf-off")]
#[inline(always)]
pub fn scope(_name: &'static str) -> ScopeGuard {
    ScopeGuard { armed: false }
}

/// Add `delta` to the profiler counter `name` (inert unless a profiling
/// session is armed). Counters are per-thread and merged at snapshot, so
/// the probe never contends.
#[cfg(not(feature = "perf-off"))]
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if delta > 0 && record::profiling_active() {
        record::counter_add(name, delta);
    }
}

/// Add to a profiler counter (no-op in this build).
#[cfg(feature = "perf-off")]
#[inline(always)]
pub fn counter_add(_name: &'static str, _delta: u64) {}

#[cfg(not(feature = "perf-off"))]
pub(crate) fn set_active(on: bool) {
    record::set_active(on);
    wavm3_simkit::probe::set_armed(on);
}

#[cfg(feature = "perf-off")]
pub(crate) fn set_active(_on: bool) {}

/// Merge every thread's recordings into one deterministic-ordered tree.
#[cfg(not(feature = "perf-off"))]
pub fn snapshot() -> PerfSnapshot {
    record::snapshot()
}

/// Merge every thread's recordings (always empty in this build).
#[cfg(feature = "perf-off")]
pub fn snapshot() -> PerfSnapshot {
    PerfSnapshot::default()
}

#[cfg(not(feature = "perf-off"))]
pub(crate) fn reset_global() {
    record::reset_global();
    wavm3_simkit::probe::reset();
}

#[cfg(feature = "perf-off")]
pub(crate) fn reset_global() {}

// --- Allocation counting (behind `count-allocs`). ---------------------------

/// Counting wrapper around the system allocator. Enabling the
/// `count-allocs` feature installs it as the global allocator, so scope
/// stats additionally carry allocation counts and bytes. Deallocation is
/// not tracked — the profiler answers "how much allocator traffic does
/// this stage cause", not "what is live".
#[cfg(feature = "count-allocs")]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        // const-init so `try_with` never allocates (re-entrancy firewall:
        // the counter itself must not call the counting allocator).
        static TALLY: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    }

    /// The counting allocator (delegates to [`System`]).
    pub struct CountingAlloc;

    fn note(bytes: usize) {
        let _ = TALLY.try_with(|t| {
            let (n, b) = t.get();
            t.set((n + 1, b + bytes as u64));
        });
    }

    /// This thread's running `(allocations, bytes)` tally.
    pub fn tally() -> (u64, u64) {
        TALLY.try_with(Cell::get).unwrap_or((0, 0))
    }

    // SAFETY: pure delegation to `System`; the tally is thread-local
    // bookkeeping with no aliasing or layout implications.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            note(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            note(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            note(new_size);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(all(test, not(feature = "perf-off")))]
mod tests {
    use super::*;
    use crate::session::{ObsConfig, Session};

    fn profiled_session() -> Session {
        Session::install(ObsConfig {
            profiling: true,
            ..ObsConfig::default()
        })
    }

    #[test]
    fn scopes_are_inert_without_a_session() {
        let _guard = crate::session::lock_for_tests();
        {
            let _s = scope("inert.scope");
        }
        assert!(snapshot().roots.is_empty());
    }

    #[test]
    fn nested_scopes_build_a_tree_with_self_time() {
        let session = profiled_session();
        for _ in 0..3 {
            let _outer = scope("unit.outer");
            for _ in 0..2 {
                let _inner = scope("unit.inner");
                std::hint::black_box(1 + 1);
            }
        }
        let report = session.finish();
        let snap = &report.perf;
        let outer = snap
            .roots
            .iter()
            .find(|r| r.name == "unit.outer")
            .expect("outer scope recorded");
        assert_eq!(outer.count, 3);
        let inner = outer
            .children
            .iter()
            .find(|c| c.name == "unit.inner")
            .expect("inner nested under outer");
        assert_eq!(inner.count, 6);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        // The self-time identity: Σ self == Σ root cumulative.
        assert_eq!(snap.self_total_ns(), snap.total_ns());
        assert_eq!(snap.count_of("unit.inner"), 6);
        // The flat view keys by path.
        let flat = &report.profiling;
        assert!(flat.contains_key("unit.outer"));
        assert!(flat.contains_key("unit.outer/unit.inner"));
        assert_eq!(flat["unit.outer/unit.inner"].count, 6);
    }

    #[test]
    fn recursion_creates_distinct_path_nodes() {
        fn recurse(depth: usize) {
            let _s = scope("unit.recurse");
            if depth > 0 {
                recurse(depth - 1);
            }
        }
        let session = profiled_session();
        recurse(2);
        let report = session.finish();
        let flat = report.profiling;
        assert!(flat.contains_key("unit.recurse"));
        assert!(flat.contains_key("unit.recurse/unit.recurse"));
        assert!(flat.contains_key("unit.recurse/unit.recurse/unit.recurse"));
        assert_eq!(flat["unit.recurse"].count, 1);
    }

    #[test]
    fn depth_overflow_drops_frames_but_keeps_counting_the_rest() {
        fn recurse(depth: usize) {
            let _s = scope("unit.deep");
            if depth > 0 {
                recurse(depth - 1);
            }
        }
        let session = profiled_session();
        recurse(MAX_DEPTH + 10);
        let report = session.finish();
        // No panic, and the recorded chain stops at MAX_DEPTH.
        let mut depth = 0;
        let mut node = report.perf.roots.iter().find(|r| r.name == "unit.deep");
        while let Some(n) = node {
            depth += 1;
            node = n.children.first();
        }
        assert_eq!(depth, MAX_DEPTH);
    }

    #[test]
    fn counters_merge_across_threads() {
        let session = profiled_session();
        counter_add("unit.counter", 2);
        std::thread::spawn(|| counter_add("unit.counter", 3))
            .join()
            .unwrap();
        let report = session.finish();
        assert_eq!(report.perf.counters["unit.counter"], 5);
    }

    #[test]
    fn parallel_scopes_merge_without_losing_counts() {
        let session = profiled_session();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        let _s = scope("unit.parallel");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = session.finish();
        assert_eq!(report.perf.count_of("unit.parallel"), 400);
    }

    #[test]
    fn chrome_trace_and_collapsed_stacks_render() {
        let session = profiled_session();
        {
            let _a = scope("unit.export.outer");
            let _b = scope("unit.export.inner");
        }
        let report = session.finish();
        let trace = chrome_trace(&report.perf);
        // Parse through the vendored serde's Value tree to prove the
        // exporter emits valid JSON.
        use serde::Value;
        struct Raw(Value);
        impl serde::Deserialize for Raw {
            fn from_value(v: &Value) -> Result<Self, serde::Error> {
                Ok(Raw(v.clone()))
            }
        }
        let Raw(parsed) = serde_json::from_str::<Raw>(&trace).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(events.len() >= 3, "two X events plus metadata");
        let folded = collapsed_stacks(&report.perf);
        assert!(
            folded
                .lines()
                .any(|l| l.starts_with("unit.export.outer;unit.export.inner ")),
            "{folded}"
        );
        for line in folded.lines() {
            let (_, value) = line.rsplit_once(' ').expect("collapsed line has a value");
            value.parse::<u64>().expect("numeric sample count");
        }
    }

    #[test]
    fn summarise_formats_the_flat_view() {
        let session = profiled_session();
        {
            let _s = scope("unit.fmt");
        }
        let report = session.finish();
        let text = summarise(&report.profiling);
        assert!(text.contains("unit.fmt"));
        assert!(text.contains("self_ms"));
        assert!(summarise(&ProfileSnapshot::new()).is_empty());
    }
}
