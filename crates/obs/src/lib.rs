//! # wavm3-obs — sim-time structured tracing, metrics and profiling
//!
//! Observability layer for the WAVM3 workspace, built around the same
//! determinism contract as everything else in simkit: **trace output is a
//! pure function of the seeds**, bit-identical across rayon thread counts,
//! because every event is stamped with [`SimTime`] (never the wall clock)
//! and events are grouped into per-run buffers that are merged in a
//! deterministic key order, not in thread-completion order.
//!
//! Three cooperating subsystems:
//!
//! * **Tracing** ([`event!`], [`span`], [`run_scope`]) — structured
//!   events and sim-time spans carrying key/value [`FieldValue`] fields.
//!   Sinks: a JSONL trace buffer (deterministic), a human console
//!   subscriber on stderr behind a level filter, and the null sink — with
//!   no [`Session`] installed every probe is one relaxed atomic load.
//! * **Metrics** ([`metrics`]) — a process-wide registry of counters,
//!   gauges and fixed-bucket histograms with a deterministic,
//!   serde-serialisable [`metrics::MetricsSnapshot`].
//! * **Request observability** ([`reqtrace`], [`slo`]) — wall-clock
//!   span trees for the serving layer with deterministic seed-keyed
//!   tail sampling, SLO burn-rate evaluation over RED metric families,
//!   and windowed NRMSE drift monitoring of online predictions.
//! * **Profiling** ([`perf`]) — a hierarchical wall-clock self-profiler:
//!   nested [`perf::scope`]s accumulate into per-thread arenas that merge
//!   lock-free into a call-tree [`perf::PerfSnapshot`] (cumulative/self
//!   time, counts, maxima, optional allocation tallies) with Chrome
//!   `trace_event` and collapsed-stack (flamegraph) exporters. Wall time
//!   is inherently non-reproducible, so profiling data is kept strictly
//!   out of traces and golden outputs: it only appears in the session
//!   report's dedicated profiling sections.
//!
//! ## Quick tour
//!
//! ```
//! use wavm3_obs::{metrics, ObsConfig, Level, Session};
//! use wavm3_simkit::SimTime;
//!
//! let session = Session::install(ObsConfig {
//!     trace: true,
//!     metrics: true,
//!     ..ObsConfig::default()
//! });
//!
//! wavm3_obs::run_scope("demo/rep000".into(), || {
//!     wavm3_obs::event!(
//!         Level::Info, "demo", "migration.start", SimTime::ZERO,
//!         "kind" => "live", "ram_mib" => 4096u64,
//!     );
//!     let span = wavm3_obs::span(Level::Info, "demo", "phase.transfer", SimTime::ZERO);
//!     span.close(SimTime::from_secs(30));
//!     metrics::counter_add("migration.runs", 1);
//! });
//!
//! let report = session.finish();
//! assert_eq!(report.metrics.counters["migration.runs"], 1);
//! assert!(report.trace_jsonl().lines().count() >= 2);
//! ```

pub mod event;
pub mod ledger;
pub mod level;
pub mod metrics;
pub mod perf;
pub mod reqtrace;
pub mod session;
pub mod slo;
pub mod trace;

pub use event::{Event, FieldValue};
pub use ledger::{ledger_active, LedgerEntry, RoleLedger, TermEnergy};
pub use level::Level;
pub use session::{ObsConfig, ObsReport, Session};
pub use trace::{
    emit, emit_span, event_enabled, run_scope, run_scope_with, span, tracing_active, RunScope, Span,
};

/// `true` when any observability subsystem (tracing, console, metrics)
/// is live — the cheapest "should I bother computing attributes" probe.
#[inline]
pub fn active() -> bool {
    session::any_active()
}

/// Build a structured event if its level passes the installed sinks.
///
/// Fields are written `"key" => value` and are **not evaluated** when no
/// sink accepts the level, so instrumented hot paths cost one relaxed
/// atomic load while disabled.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $target:expr, $name:expr, $t:expr $(, $k:literal => $v:expr)* $(,)?) => {{
        let lvl: $crate::Level = $lvl;
        if $crate::event_enabled(lvl) {
            $crate::emit(
                lvl,
                $target,
                $name,
                $t,
                vec![$(($k, $crate::FieldValue::from($v))),*],
            );
        }
    }};
}
