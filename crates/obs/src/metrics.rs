//! Metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! ## Determinism
//!
//! Counters and histogram bucket counts accumulate with integer addition
//! and histogram sums accumulate in fixed-point microunits, so totals are
//! independent of the order parallel workers contribute in — a snapshot of
//! a seeded campaign is reproducible across thread counts. Gauges are
//! last-write-wins and should only be set from deterministic points (or
//! carry explicitly non-reproducible data such as wall-clock throughput,
//! which the conventions below confine to the `runner.*` namespace).
//!
//! The process-wide registry (fed through [`counter_add`] & friends) is
//! armed by an installed [`Session`](crate::Session) with `metrics: true`;
//! without one the free functions are a single relaxed atomic load.

use crate::session;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Well-known histogram bucket ladders.
pub mod buckets {
    /// Durations in seconds (phase lengths, downtime): 100 ms … 500 s.
    pub const DURATION_S: &[f64] = &[
        0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    ];
    /// Energies in kilojoules: 0.1 kJ … 100 kJ.
    pub const ENERGY_KJ: &[f64] = &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
}

/// Fixed-point scale for deterministic histogram sums (microunits).
const SUM_SCALE: f64 = 1e6;

/// One histogram's state: counts per bucket plus a fixed-point sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds; one final overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// Sample counts, `bounds.len() + 1` entries (last = overflow).
    pub counts: Vec<u64>,
    /// Total samples observed.
    pub count: u64,
    /// Sum of samples in fixed-point microunits (deterministic across
    /// accumulation orders, unlike a float sum).
    pub sum_micro: i64,
}

impl HistogramSnapshot {
    fn new(bounds: &[f64]) -> Self {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum_micro: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum_micro += (value * SUM_SCALE).round() as i64;
        }
    }

    /// Sum of observed samples (decoded from fixed point).
    pub fn sum(&self) -> f64 {
        self.sum_micro as f64 / SUM_SCALE
    }

    /// Mean observed sample, or 0.0 before any observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }
}

/// Deterministic point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket distributions.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

/// A metrics registry. The workspace normally uses the process-wide one
/// through the free functions below; standalone registries exist for
/// tests and embedding.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Add `delta` to counter `name` (created at 0 on first use).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    /// Set gauge `name` (last write wins).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        self.lock().gauges.insert(name, value);
    }

    /// Observe `value` on histogram `name`. The first call fixes the
    /// bucket bounds; later calls reuse them (`bounds` is then ignored).
    pub fn observe(&self, name: &'static str, bounds: &'static [f64], value: f64) {
        self.lock()
            .histograms
            .entry(name)
            .or_insert_with(|| HistogramSnapshot::new(bounds))
            .observe(value);
    }

    /// Deterministic snapshot (BTreeMap name order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// Drop all recorded metrics.
    pub fn reset(&self) {
        *self.lock() = RegistryInner::default();
    }
}

fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Add `delta` to the global counter `name`; no-op without a metrics
/// session.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if session::metrics_active() {
        global().counter_add(name, delta);
    }
}

/// Set the global gauge `name`; no-op without a metrics session.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if session::metrics_active() {
        global().gauge_set(name, value);
    }
}

/// Observe on the global histogram `name`; no-op without a metrics
/// session.
#[inline]
pub fn observe(name: &'static str, bounds: &'static [f64], value: f64) {
    if session::metrics_active() {
        global().observe(name, bounds, value);
    }
}

/// Snapshot the global registry (empty without a metrics session).
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

pub(crate) fn reset_global() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_is_inclusive_upper_bound() {
        let h = Registry::new();
        let bounds: &[f64] = &[1.0, 2.0, 5.0];
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1, 99.0] {
            h.observe("x", bounds, v);
        }
        let snap = h.snapshot();
        let hist = &snap.histograms["x"];
        //                 <=1  <=2  <=5  overflow
        assert_eq!(hist.counts, vec![2, 2, 2, 2]);
        assert_eq!(hist.count, 8);
        let expected: f64 = 0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 5.1 + 99.0;
        assert!((hist.sum() - expected).abs() < 1e-6);
        assert!((hist.mean() - expected / 8.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_point_sum_is_order_independent() {
        let a = Registry::new();
        let b = Registry::new();
        let values = [0.1, 0.2, 0.3, 1e6, 1e-6, 37.7];
        for v in values {
            a.observe("x", buckets::DURATION_S, v);
        }
        for v in values.iter().rev() {
            b.observe("x", buckets::DURATION_S, *v);
        }
        assert_eq!(
            a.snapshot().histograms["x"].sum_micro,
            b.snapshot().histograms["x"].sum_micro
        );
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        r.counter_add("runs", 2);
        r.counter_add("runs", 3);
        r.gauge_set("speed", 1.0);
        r.gauge_set("speed", 4.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["runs"], 5);
        assert_eq!(snap.gauges["speed"], 4.5);
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let r = Registry::new();
        r.counter_add("migration.runs", 7);
        r.gauge_set("runner.throughput_runs_per_s", 123.25);
        r.observe("migration.transfer_s", buckets::DURATION_S, 42.0);
        r.observe("migration.transfer_s", buckets::DURATION_S, 600.0);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serialise snapshot");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse snapshot");
        assert_eq!(back, snap);
        assert_eq!(back.histograms["migration.transfer_s"].count, 2);
    }

    #[test]
    fn global_functions_are_inert_without_a_session() {
        // Hold the session lock so no concurrent test arms the registry.
        let _guard = crate::session::lock_for_tests();
        counter_add("test.inert", 1);
        observe("test.inert_h", buckets::DURATION_S, 1.0);
        let snap = snapshot();
        assert!(!snap.counters.contains_key("test.inert"));
        assert!(!snap.histograms.contains_key("test.inert_h"));
    }
}
