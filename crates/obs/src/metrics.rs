//! Metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! ## Determinism
//!
//! Counters and histogram bucket counts accumulate with integer addition
//! and histogram sums accumulate in fixed-point microunits, so totals are
//! independent of the order parallel workers contribute in — a snapshot of
//! a seeded campaign is reproducible across thread counts. Gauges are
//! last-write-wins and should only be set from deterministic points (or
//! carry explicitly non-reproducible data such as wall-clock throughput,
//! which the conventions below confine to the `runner.*` namespace).
//!
//! The process-wide registry (fed through [`counter_add`] & friends) is
//! armed by an installed [`Session`](crate::Session) with `metrics: true`;
//! without one the free functions are a single relaxed atomic load.

use crate::session;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Well-known histogram bucket ladders.
pub mod buckets {
    /// Durations in seconds (phase lengths, downtime): 100 ms … 500 s.
    pub const DURATION_S: &[f64] = &[
        0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    ];
    /// Energies in kilojoules: 0.1 kJ … 100 kJ.
    pub const ENERGY_KJ: &[f64] = &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    /// Absolute residuals in percent of the observed value: 1 % … 100 %.
    pub const RESIDUAL_PCT: &[f64] = &[1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0];
    /// Absolute power residuals in watts: 0.5 W … 200 W.
    pub const POWER_W: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0];
    /// Request latencies in milliseconds (serving paths): 0.5 ms … 5 s.
    pub const LATENCY_MS: &[f64] = &[
        0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
    ];
}

/// Fixed-point scale for deterministic histogram sums (microunits).
const SUM_SCALE: f64 = 1e6;

/// One histogram's state: counts per bucket plus a fixed-point sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds; one final overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// Sample counts, `bounds.len() + 1` entries (last = overflow).
    pub counts: Vec<u64>,
    /// Total samples observed.
    pub count: u64,
    /// Sum of samples in fixed-point microunits (deterministic across
    /// accumulation orders, unlike a float sum).
    pub sum_micro: i64,
}

impl HistogramSnapshot {
    /// An empty histogram over `bounds` (public so clients — e.g. the
    /// load generator — can aggregate with the *same* estimator the
    /// server exposes and quantiles stay comparable bucket-for-bucket).
    pub fn new(bounds: &[f64]) -> Self {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum_micro: 0,
        }
    }

    /// Record one sample (inclusive upper-bound bucketing).
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum_micro += (value * SUM_SCALE).round() as i64;
        }
    }

    /// Sum of observed samples (decoded from fixed point).
    pub fn sum(&self) -> f64 {
        self.sum_micro as f64 / SUM_SCALE
    }

    /// Mean observed sample, or `None` before any observation (so an
    /// empty histogram can never leak NaN into snapshots or exposition).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum() / self.count as f64)
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation within the bucket containing the target rank —
    /// the same estimator as Prometheus' `histogram_quantile`.
    ///
    /// The first bucket's lower edge is taken as `min(bound, 0)`;
    /// samples in the overflow bucket resolve to the last finite bound
    /// (the distribution's tail is unknowable from bounded buckets).
    /// Returns `None` for an empty histogram, one without finite bounds,
    /// or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || self.bounds.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let below = cumulative as f64;
            cumulative += c;
            if cumulative as f64 >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket: clamp to the last finite bound.
                    return self.bounds.last().copied();
                }
                let upper = self.bounds[i];
                let lower = if i == 0 {
                    upper.min(0.0)
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        self.bounds.last().copied()
    }
}

/// One exemplar: a trace id attached to a histogram observation, the
/// metric↔trace join key of the serving layer's correlation story.
///
/// Exemplars live in a separate registry store rather than inside
/// [`HistogramSnapshot`]: adding a field there would break
/// deserialisation of committed baseline snapshots (the vendored serde
/// derive requires every field present).
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Trace id of the observation (32-hex for the serving layer).
    pub trace_id: String,
    /// The observed value.
    pub value: f64,
    /// Upper bound of the bucket the value landed in
    /// (`f64::INFINITY` = overflow bucket).
    pub bucket_le: f64,
    /// Pinned exemplars (errors) are never displaced by later
    /// same-bucket observations; unpinned ones (tail latencies) keep
    /// only the latest per bucket.
    pub pinned: bool,
}

/// Retained exemplars per histogram before eviction. Generous enough
/// that a CI chaos run never evicts; evictions are counted on
/// `obs.exemplars.evicted` so the cap is never silent.
const EXEMPLAR_CAP: usize = 4096;

/// Deterministic point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket distributions.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4).
    ///
    /// Metric names are sanitised (every character outside
    /// `[a-zA-Z0-9_:]` becomes `_`, so `migration.runs` exposes as
    /// `migration_runs`); label values escape `\`, `"` and newlines.
    /// Histograms expose the conventional cumulative
    /// `_bucket{le="…"}` series plus `_sum`, `_count` and interpolated
    /// `_p50`/`_p95`/`_p99` quantile estimates. Output order
    /// follows the snapshot's BTreeMap ordering, so two equal snapshots
    /// render byte-identically.
    pub fn to_prometheus_text(&self) -> String {
        self.to_prometheus_text_with_exemplars(&BTreeMap::new())
    }

    /// Like [`to_prometheus_text`](Self::to_prometheus_text), but after
    /// each histogram's series the attached exemplars are rendered as
    /// comment lines:
    ///
    /// ```text
    /// # exemplar serve_red_predict_5xx_duration_ms{le="2",trace_id="0af7…"} 1.8
    /// ```
    ///
    /// Comment lines keep the exposition valid for any 0.0.4 parser
    /// (real exemplar syntax needs the OpenMetrics content type) while
    /// staying one-line-greppable for the correlation checker. With an
    /// empty map the output is byte-identical to the exemplar-free
    /// exposition.
    pub fn to_prometheus_text_with_exemplars(
        &self,
        exemplars: &BTreeMap<String, Vec<Exemplar>>,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", format_sample(*value));
        }
        for (raw_name, hist) in &self.histograms {
            let name = sanitize_metric_name(raw_name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                cumulative += count;
                let le = escape_label_value(&format_sample(*bound));
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            // Overflow bucket: everything observed so far.
            cumulative += hist.counts.last().copied().unwrap_or(0);
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", format_sample(hist.sum()));
            let _ = writeln!(out, "{name}_count {}", hist.count);
            for (suffix, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                if let Some(v) = hist.quantile(q) {
                    let _ = writeln!(out, "{name}_{suffix} {}", format_sample(v));
                }
            }
            for e in exemplars.get(raw_name).into_iter().flatten() {
                let _ = writeln!(
                    out,
                    "# exemplar {name}{{le=\"{}\",trace_id=\"{}\"}} {}",
                    escape_label_value(&format_sample(e.bucket_le)),
                    escape_label_value(&e.trace_id),
                    format_sample(e.value),
                );
            }
        }
        out
    }
}

/// Replace every character outside `[a-zA-Z0-9_:]` with `_` (and prefix
/// `_` if the name would start with a digit).
fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n`.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a sample value: shortest round-trip for finite floats, the
/// Prometheus spellings for the non-finite ones.
fn format_sample(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        value.to_string()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
    exemplars: BTreeMap<String, Vec<Exemplar>>,
}

/// A metrics registry. The workspace normally uses the process-wide one
/// through the free functions below; standalone registries exist for
/// tests and embedding.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Add `delta` to counter `name` (created at 0 on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set gauge `name` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Observe `value` on histogram `name`. The first call fixes the
    /// bucket bounds; later calls reuse them (`bounds` is then ignored).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = HistogramSnapshot::new(bounds);
                h.observe(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Observe `value` on histogram `name` and attach `trace_id` as an
    /// exemplar on the bucket it lands in.
    ///
    /// `pinned` exemplars (errors) all survive — every one of them is a
    /// required join key for the correlation checker; unpinned ones
    /// (tail latencies) keep only the latest per bucket. Past
    /// [`EXEMPLAR_CAP`] the oldest unpinned exemplar is evicted first
    /// (then the oldest pinned), and each eviction increments the
    /// `obs.exemplars.evicted` counter so truncation is visible.
    pub fn observe_with_exemplar(
        &self,
        name: &str,
        bounds: &[f64],
        value: f64,
        trace_id: &str,
        pinned: bool,
    ) {
        let mut inner = self.lock();
        let bucket_le = match inner.histograms.get_mut(name) {
            Some(h) => {
                h.observe(value);
                h.bounds
                    .iter()
                    .find(|&&b| value <= b)
                    .copied()
                    .unwrap_or(f64::INFINITY)
            }
            None => {
                let mut h = HistogramSnapshot::new(bounds);
                h.observe(value);
                let le = h
                    .bounds
                    .iter()
                    .find(|&&b| value <= b)
                    .copied()
                    .unwrap_or(f64::INFINITY);
                inner.histograms.insert(name.to_string(), h);
                le
            }
        };
        let store = inner.exemplars.entry(name.to_string()).or_default();
        let exemplar = Exemplar {
            trace_id: trace_id.to_string(),
            value,
            bucket_le,
            pinned,
        };
        if !pinned {
            if let Some(existing) = store
                .iter_mut()
                .find(|e| !e.pinned && e.bucket_le == bucket_le)
            {
                *existing = exemplar;
                return;
            }
        }
        let mut evicted = 0u64;
        while store.len() >= EXEMPLAR_CAP {
            let victim = store.iter().position(|e| !e.pinned).unwrap_or(0);
            store.remove(victim);
            evicted += 1;
        }
        store.push(exemplar);
        if evicted > 0 {
            match inner.counters.get_mut("obs.exemplars.evicted") {
                Some(v) => *v += evicted,
                None => {
                    inner
                        .counters
                        .insert("obs.exemplars.evicted".to_string(), evicted);
                }
            }
        }
    }

    /// The exemplar store, histogram-name order (insertion order within
    /// a histogram). Pass to
    /// [`MetricsSnapshot::to_prometheus_text_with_exemplars`].
    pub fn exemplars(&self) -> BTreeMap<String, Vec<Exemplar>> {
        self.lock().exemplars.clone()
    }

    /// Deterministic snapshot (BTreeMap name order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Drop all recorded metrics.
    pub fn reset(&self) {
        *self.lock() = RegistryInner::default();
    }
}

fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Add `delta` to the global counter `name`; no-op without a metrics
/// session.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if session::metrics_active() {
        global().counter_add(name, delta);
    }
}

/// Set the global gauge `name`; no-op without a metrics session.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if session::metrics_active() {
        global().gauge_set(name, value);
    }
}

/// Observe on the global histogram `name`; no-op without a metrics
/// session.
#[inline]
pub fn observe(name: &str, bounds: &[f64], value: f64) {
    if session::metrics_active() {
        global().observe(name, bounds, value);
    }
}

/// `true` when an installed session is collecting metrics — use to skip
/// expensive metric computation (the free functions are no-ops anyway).
#[inline]
pub fn active() -> bool {
    session::metrics_active()
}

/// Snapshot the global registry (empty without a metrics session).
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

pub(crate) fn reset_global() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_is_inclusive_upper_bound() {
        let h = Registry::new();
        let bounds: &[f64] = &[1.0, 2.0, 5.0];
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1, 99.0] {
            h.observe("x", bounds, v);
        }
        let snap = h.snapshot();
        let hist = &snap.histograms["x"];
        //                 <=1  <=2  <=5  overflow
        assert_eq!(hist.counts, vec![2, 2, 2, 2]);
        assert_eq!(hist.count, 8);
        let expected: f64 = 0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 5.1 + 99.0;
        assert!((hist.sum() - expected).abs() < 1e-6);
        assert!((hist.mean().expect("non-empty mean") - expected / 8.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_mean_is_none() {
        let hist = HistogramSnapshot::new(buckets::DURATION_S);
        assert_eq!(hist.mean(), None);
        assert_eq!(hist.sum(), 0.0);
        assert_eq!(hist.quantile(0.5), None);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let bounds: &[f64] = &[1.0, 2.0, 4.0];
        // 4 samples in (1, 2], 4 in (2, 4] → uniform mass over [1, 4].
        for v in [1.2, 1.4, 1.6, 1.8, 2.5, 3.0, 3.5, 4.0] {
            r.observe("q", bounds, v);
        }
        let hist = r.snapshot().histograms["q"].clone();
        // Rank 4 of 8 lands exactly on the (1, 2] bucket's upper edge.
        assert_eq!(hist.quantile(0.5), Some(2.0));
        // Rank 2 of 8 is halfway through the (1, 2] bucket.
        assert_eq!(hist.quantile(0.25), Some(1.5));
        // q=0 resolves to the first occupied bucket's lower edge, q=1 to
        // the last occupied bucket's upper edge.
        assert_eq!(hist.quantile(0.0), Some(1.0));
        assert_eq!(hist.quantile(1.0), Some(4.0));
        // Out-of-range q never panics.
        assert_eq!(hist.quantile(-0.1), None);
        assert_eq!(hist.quantile(1.5), None);
    }

    #[test]
    fn quantile_edge_cases() {
        // Overflow-bucket mass clamps to the last finite bound.
        let r = Registry::new();
        r.observe("over", &[1.0, 2.0], 50.0);
        r.observe("over", &[1.0, 2.0], 60.0);
        let hist = r.snapshot().histograms["over"].clone();
        assert_eq!(hist.quantile(0.99), Some(2.0));
        // First bucket interpolates from min(bound, 0).
        let r = Registry::new();
        r.observe("first", &[10.0, 20.0], 3.0);
        let hist = r.snapshot().histograms["first"].clone();
        assert_eq!(hist.quantile(0.5), Some(5.0));
        // A bound-less histogram (pure counter) has no quantiles.
        let r = Registry::new();
        r.observe("none", &[], 3.0);
        assert_eq!(r.snapshot().histograms["none"].quantile(0.5), None);
    }

    #[test]
    fn histogram_non_finite_observations_count_but_never_poison_the_sum() {
        let r = Registry::new();
        let bounds: &[f64] = &[1.0, 10.0];
        r.observe("x", bounds, f64::NAN);
        r.observe("x", bounds, f64::INFINITY);
        r.observe("x", bounds, f64::NEG_INFINITY);
        r.observe("x", bounds, 0.5);
        let snap = r.snapshot();
        let hist = &snap.histograms["x"];
        // NaN and +Inf compare false against every bound → overflow
        // bucket; -Inf satisfies `<= 1.0` → first bucket (with 0.5).
        assert_eq!(hist.counts, vec![2, 0, 2]);
        assert_eq!(hist.count, 4);
        // Only the finite sample contributes to the fixed-point sum, so
        // mean stays finite and the exposition never prints NaN sums.
        assert_eq!(hist.sum(), 0.5);
        assert_eq!(hist.mean(), Some(0.125));
        let text = snap.to_prometheus_text();
        assert!(text.contains("x_sum 0.5"), "{text}");
        assert!(text.contains("x_count 4"), "{text}");
    }

    #[test]
    fn histogram_negative_values_land_in_the_first_bucket() {
        let r = Registry::new();
        r.observe("neg", &[0.0, 1.0], -5.0);
        r.observe("neg", &[0.0, 1.0], -0.0);
        let hist = r.snapshot().histograms["neg"].clone();
        assert_eq!(hist.counts, vec![2, 0, 0]);
        assert_eq!(hist.sum(), -5.0);
    }

    #[test]
    fn histogram_with_empty_bounds_is_a_pure_counter() {
        let r = Registry::new();
        r.observe("all_overflow", &[], 3.0);
        r.observe("all_overflow", &[], 4.0);
        let snap = r.snapshot();
        let hist = &snap.histograms["all_overflow"];
        assert_eq!(hist.counts, vec![2]);
        assert_eq!(hist.sum(), 7.0);
        // The exposition still emits a valid series: just +Inf, sum,
        // count.
        let text = snap.to_prometheus_text();
        assert!(
            text.contains("all_overflow_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(!text.contains("all_overflow_bucket{le=\"+Inf\"} 2\nall_overflow_bucket"));
    }

    #[test]
    fn histogram_bounds_are_fixed_by_the_first_observation() {
        let r = Registry::new();
        r.observe("fixed", &[1.0, 2.0], 0.5);
        // A later caller passing a different ladder must not resize or
        // rebucket the series.
        r.observe("fixed", &[100.0], 1.5);
        let hist = r.snapshot().histograms["fixed"].clone();
        assert_eq!(hist.bounds, vec![1.0, 2.0]);
        assert_eq!(hist.counts, vec![1, 1, 0]);
    }

    #[test]
    fn prometheus_sanitises_dotted_and_unicode_names() {
        // Dots — the workspace's metric namespace separator — become
        // underscores, as does every non-ASCII scalar (one `_` per char).
        assert_eq!(
            sanitize_metric_name("migration.phase.activation_kj"),
            "migration_phase_activation_kj"
        );
        assert_eq!(sanitize_metric_name("énergie.kJ"), "_nergie_kJ");
        assert_eq!(sanitize_metric_name("runs/s"), "runs_s");
        assert_eq!(sanitize_metric_name("host:m01"), "host:m01");
        let r = Registry::new();
        r.counter_add("migration.runs.完了", 1);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE migration_runs___ counter"), "{text}");
        assert!(text.contains("\nmigration_runs___ 1\n"), "{text}");
    }

    #[test]
    fn prometheus_renders_non_finite_gauges_with_canonical_spellings() {
        let r = Registry::new();
        r.gauge_set("g.nan", f64::NAN);
        r.gauge_set("g.pinf", f64::INFINITY);
        r.gauge_set("g.ninf", f64::NEG_INFINITY);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("g_nan NaN"), "{text}");
        assert!(text.contains("g_pinf +Inf"), "{text}");
        assert!(text.contains("g_ninf -Inf"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_to_an_empty_exposition() {
        assert!(MetricsSnapshot::default().is_empty());
        assert_eq!(MetricsSnapshot::default().to_prometheus_text(), "");
    }

    #[test]
    fn prometheus_text_golden() {
        let r = Registry::new();
        r.counter_add("migration.runs", 42);
        r.counter_add("faults.injected", 3);
        r.gauge_set("runner.throughput_runs_per_s", 12.5);
        let bounds: &[f64] = &[1.0, 2.5];
        for v in [0.5, 2.0, 9.0] {
            r.observe("migration.transfer_s", bounds, v);
        }
        let text = r.snapshot().to_prometheus_text();
        let expected = "\
# TYPE faults_injected counter
faults_injected 3
# TYPE migration_runs counter
migration_runs 42
# TYPE runner_throughput_runs_per_s gauge
runner_throughput_runs_per_s 12.5
# TYPE migration_transfer_s histogram
migration_transfer_s_bucket{le=\"1\"} 1
migration_transfer_s_bucket{le=\"2.5\"} 2
migration_transfer_s_bucket{le=\"+Inf\"} 3
migration_transfer_s_sum 11.5
migration_transfer_s_count 3
migration_transfer_s_p50 1.75
migration_transfer_s_p95 2.5
migration_transfer_s_p99 2.5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_rendering_is_order_stable() {
        // Insertion order must not leak into the exposition: two
        // registries fed in opposite orders render identically.
        let a = Registry::new();
        let b = Registry::new();
        a.counter_add("b.second", 1);
        a.counter_add("a.first", 1);
        b.counter_add("a.first", 1);
        b.counter_add("b.second", 1);
        assert_eq!(
            a.snapshot().to_prometheus_text(),
            b.snapshot().to_prometheus_text()
        );
    }

    #[test]
    fn prometheus_name_sanitisation_and_label_escaping() {
        assert_eq!(
            sanitize_metric_name("migration.energy-kj"),
            "migration_energy_kj"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(format_sample(f64::INFINITY), "+Inf");
        assert_eq!(format_sample(f64::NAN), "NaN");
    }

    #[test]
    fn fixed_point_sum_is_order_independent() {
        let a = Registry::new();
        let b = Registry::new();
        let values = [0.1, 0.2, 0.3, 1e6, 1e-6, 37.7];
        for v in values {
            a.observe("x", buckets::DURATION_S, v);
        }
        for v in values.iter().rev() {
            b.observe("x", buckets::DURATION_S, *v);
        }
        assert_eq!(
            a.snapshot().histograms["x"].sum_micro,
            b.snapshot().histograms["x"].sum_micro
        );
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        r.counter_add("runs", 2);
        r.counter_add("runs", 3);
        r.gauge_set("speed", 1.0);
        r.gauge_set("speed", 4.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["runs"], 5);
        assert_eq!(snap.gauges["speed"], 4.5);
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let r = Registry::new();
        r.counter_add("migration.runs", 7);
        r.gauge_set("runner.throughput_runs_per_s", 123.25);
        r.observe("migration.transfer_s", buckets::DURATION_S, 42.0);
        r.observe("migration.transfer_s", buckets::DURATION_S, 600.0);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serialise snapshot");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse snapshot");
        assert_eq!(back, snap);
        assert_eq!(back.histograms["migration.transfer_s"].count, 2);
    }

    #[test]
    fn exemplars_attach_to_buckets_and_render_as_comment_lines() {
        let r = Registry::new();
        let bounds: &[f64] = &[1.0, 2.0, 5.0];
        r.observe_with_exemplar("req.ms", bounds, 1.8, "aaaa", true);
        r.observe_with_exemplar("req.ms", bounds, 99.0, "bbbb", false);
        let ex = r.exemplars();
        assert_eq!(ex["req.ms"].len(), 2);
        assert_eq!(ex["req.ms"][0].bucket_le, 2.0);
        assert_eq!(ex["req.ms"][1].bucket_le, f64::INFINITY);
        // The histogram itself counted both observations.
        assert_eq!(r.snapshot().histograms["req.ms"].count, 2);
        let text = r.snapshot().to_prometheus_text_with_exemplars(&ex);
        assert!(
            text.contains("# exemplar req_ms{le=\"2\",trace_id=\"aaaa\"} 1.8"),
            "{text}"
        );
        assert!(
            text.contains("# exemplar req_ms{le=\"+Inf\",trace_id=\"bbbb\"} 99"),
            "{text}"
        );
        // Exemplar-free rendering is unchanged by the feature.
        assert_eq!(
            r.snapshot().to_prometheus_text(),
            r.snapshot()
                .to_prometheus_text_with_exemplars(&BTreeMap::new())
        );
    }

    #[test]
    fn unpinned_exemplars_replace_per_bucket_pinned_ones_accumulate() {
        let r = Registry::new();
        let bounds: &[f64] = &[10.0];
        r.observe_with_exemplar("h", bounds, 3.0, "first", false);
        r.observe_with_exemplar("h", bounds, 4.0, "second", false);
        let ex = r.exemplars();
        assert_eq!(ex["h"].len(), 1, "unpinned replaces in-bucket");
        assert_eq!(ex["h"][0].trace_id, "second");
        r.observe_with_exemplar("h", bounds, 5.0, "err1", true);
        r.observe_with_exemplar("h", bounds, 6.0, "err2", true);
        let ex = r.exemplars();
        assert_eq!(ex["h"].len(), 3, "pinned exemplars all survive");
    }

    #[test]
    fn exemplar_cap_evicts_unpinned_first_and_counts_it() {
        let r = Registry::new();
        let bounds: Vec<f64> = (0..16).map(|i| i as f64).collect();
        // One unpinned, then pinned entries past the cap.
        r.observe_with_exemplar("h", &bounds, 0.5, "unpinned", false);
        for i in 0..EXEMPLAR_CAP {
            r.observe_with_exemplar("h", &bounds, 1.5, &format!("e{i}"), true);
        }
        let ex = r.exemplars();
        assert_eq!(ex["h"].len(), EXEMPLAR_CAP);
        assert!(
            ex["h"].iter().all(|e| e.trace_id != "unpinned"),
            "unpinned must be the first eviction"
        );
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("obs.exemplars.evicted"), Some(&1));
    }

    #[test]
    fn global_functions_are_inert_without_a_session() {
        // Hold the session lock so no concurrent test arms the registry.
        let _guard = crate::session::lock_for_tests();
        counter_add("test.inert", 1);
        observe("test.inert_h", buckets::DURATION_S, 1.0);
        let snap = snapshot();
        assert!(!snap.counters.contains_key("test.inert"));
        assert!(!snap.histograms.contains_key("test.inert_h"));
    }
}
