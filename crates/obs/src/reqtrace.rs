//! Request-scoped tracing for the serving layer.
//!
//! Unlike [`crate::trace`] (sim-time spans for simulation campaigns),
//! this module traces *wall-clock requests* flowing through a real
//! server: every request owns a [`ReqTrace`] span tree (accept → queue →
//! read → breaker → plan/predict → respond) identified by a 128-bit
//! trace id that the client propagates via `x-wavm3-trace-id` or a W3C
//! `traceparent` header.
//!
//! ## Determinism contract
//!
//! The same arena discipline as [`crate::perf`]: each worker thread owns
//! a private shard of the [`TraceCollector`] (its mutex is never
//! contended — exactly one thread pushes to it), and the export step
//! merges shards in *trace-id order*, never thread-completion order. The
//! [canonical export](TraceCollector::export_canonical) strips every
//! wall-clock field, so for a deterministic request stream the sampled
//! span set is byte-identical across any worker count.
//!
//! ## Tail sampling
//!
//! Keeping every span of every request would make tracing the first
//! thing to fall over under load, so the [`TailSampler`] applies
//! deterministic, seed-keyed head+tail rules at record time: errors,
//! sheds, chaos drops and breaker transitions are always kept, as are
//! requests slower than the tail-latency threshold; everything else is
//! kept only when a hash of `(seed, trace id)` selects it. The decision
//! is a pure function of the trace, so two runs over the same request
//! stream sample the same set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// 64-bit SplitMix finaliser — the trace-id deriver and the sampling
/// hash share it so both are pure functions of their integer inputs
/// (no dependency on a seeded RNG stream's word order).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 128-bit request trace id (W3C `trace-id` shape: 32 lowercase hex
/// digits, never all-zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Canonical 32-digit lowercase hex form.
    pub fn as_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse a bare 32-hex-digit trace id. Rejects anything that is not
    /// *exactly* 32 ASCII hex digits, and the all-zero id (invalid per
    /// W3C trace-context). Never panics on arbitrary input.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        match u128::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(TraceId(v)),
        }
    }

    /// Parse a W3C `traceparent` header
    /// (`00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>`). Strict:
    /// exact length, exact dash positions, version `00` only, non-zero
    /// trace and span ids. Never panics on arbitrary input.
    pub fn parse_traceparent(s: &str) -> Option<TraceId> {
        let bytes = s.as_bytes();
        if bytes.len() != 55 || bytes[2] != b'-' || bytes[35] != b'-' || bytes[52] != b'-' {
            return None;
        }
        let (version, trace, span, flags) = (&s[0..2], &s[3..35], &s[36..52], &s[53..55]);
        if version != "00" {
            return None;
        }
        let hex = |part: &str| part.bytes().all(|b| b.is_ascii_hexdigit());
        if !hex(span) || !hex(flags) {
            return None;
        }
        if u64::from_str_radix(span, 16) == Ok(0) {
            return None;
        }
        TraceId::parse(trace)
    }

    /// Deterministically derive the trace id the load generator stamps
    /// on `(seed, request id, attempt)` — a pure function, so reruns of
    /// the same seed produce the same ids and the server-side sampled
    /// span set is reproducible.
    pub fn derive(seed: u64, id: u64, attempt: u32) -> TraceId {
        let hi = mix64(seed ^ mix64(id));
        let lo = mix64(mix64(seed).wrapping_add(id) ^ (attempt as u64).wrapping_mul(0xa5a5_a5a5));
        // `| 1` keeps the id non-zero (the W3C-invalid value).
        TraceId(((hi as u128) << 64) | lo as u128 | 1)
    }

    /// Matching deterministic span id for the `traceparent` header.
    pub fn derived_span_hex(seed: u64, id: u64, attempt: u32) -> String {
        format!(
            "{:016x}",
            mix64(seed ^ mix64(id ^ ((attempt as u64) << 32))) | 1
        )
    }

    /// A server-generated fallback id for requests that arrive without a
    /// usable trace header. Unique per `(nonce, counter)`; marked by a
    /// distinctive top nibble so fallback ids are recognisable in logs.
    pub fn server_generated(nonce: u64, counter: u64) -> TraceId {
        let hi = 0xf000_0000_0000_0000 | (mix64(nonce) >> 4);
        TraceId(((hi as u128) << 64) | mix64(counter ^ !nonce) as u128 | 1)
    }
}

/// Resolve the trace id for an incoming request: prefer a valid
/// `x-wavm3-trace-id`, then a valid `traceparent`; a malformed or
/// missing header falls back to `server_generated` (never an error —
/// bad telemetry headers must not fail real requests).
///
/// Returns the id and whether the client supplied it.
pub fn resolve(
    trace_header: Option<&str>,
    traceparent: Option<&str>,
    nonce: u64,
    counter: u64,
) -> (TraceId, bool) {
    if let Some(id) = trace_header.and_then(TraceId::parse) {
        return (id, true);
    }
    if let Some(id) = traceparent.and_then(TraceId::parse_traceparent) {
        return (id, true);
    }
    (TraceId::server_generated(nonce, counter), false)
}

/// Why a trace was kept (or not) by the [`TailSampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleDecision {
    /// Non-2xx outcome (shed, breach, fault, drop): always kept.
    KeepError,
    /// A breaker state transition happened during the request.
    KeepBreaker,
    /// Total latency beyond the tail threshold.
    KeepTail,
    /// Selected by the deterministic `(seed, trace id)` hash.
    KeepSampled,
    /// Not sampled.
    Drop,
}

impl SampleDecision {
    /// Stable label used in exports and access logs.
    pub fn label(&self) -> &'static str {
        match self {
            SampleDecision::KeepError => "error",
            SampleDecision::KeepBreaker => "breaker",
            SampleDecision::KeepTail => "tail",
            SampleDecision::KeepSampled => "sampled",
            SampleDecision::Drop => "drop",
        }
    }

    /// `true` for every `Keep*` variant.
    pub fn keep(&self) -> bool {
        !matches!(self, SampleDecision::Drop)
    }
}

/// Deterministic seed-keyed tail sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSampler {
    /// Sampling key: the hash rule is a pure function of
    /// `(seed, trace id)`.
    pub seed: u64,
    /// Keep one in this many non-error, non-tail traces (`1` keeps
    /// everything; must be ≥ 1).
    pub keep_1_in: u64,
    /// Requests at least this slow are always kept
    /// (`f64::INFINITY` disables the latency rule — the wall-clock
    /// escape hatch the determinism tests use).
    pub tail_latency_ms: f64,
}

impl Default for TailSampler {
    fn default() -> Self {
        TailSampler {
            seed: 0,
            keep_1_in: 10,
            tail_latency_ms: 200.0,
        }
    }
}

impl TailSampler {
    /// Classify one finished request.
    pub fn decide(&self, record: &ReqRecord) -> SampleDecision {
        if record.status == 0 || !(200..300).contains(&record.status) {
            return SampleDecision::KeepError;
        }
        if record.breaker_transition {
            return SampleDecision::KeepBreaker;
        }
        if record.total_us as f64 / 1e3 >= self.tail_latency_ms {
            return SampleDecision::KeepTail;
        }
        let keep_1_in = self.keep_1_in.max(1);
        let hash =
            mix64(self.seed ^ mix64(record.trace_id.0 as u64) ^ (record.trace_id.0 >> 64) as u64);
        if hash.is_multiple_of(keep_1_in) {
            SampleDecision::KeepSampled
        } else {
            SampleDecision::Drop
        }
    }
}

/// One closed span: offsets are microseconds since the request was
/// accepted, parents are indices into the owning trace's span list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name from the fixed request taxonomy.
    pub name: &'static str,
    /// Index of the parent span (`None` for the root).
    pub parent: Option<usize>,
    /// Start offset, µs since accept.
    pub start_us: u64,
    /// End offset, µs since accept.
    pub end_us: u64,
}

/// Everything recorded about one finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReqRecord {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// Did the client supply the id (vs. a server-generated fallback)?
    pub client_supplied: bool,
    /// Route label (`predict`, `plan`, `shed`, `metrics`, …).
    pub route: String,
    /// Response status (`0` = chaos-dropped, no response written).
    pub status: u16,
    /// Client chaos key, `-` when absent.
    pub chaos_key: String,
    /// Breaker position when the response was formed.
    pub breaker: String,
    /// Did the breaker change state during this request?
    pub breaker_transition: bool,
    /// Served from the degraded fast path?
    pub degraded: bool,
    /// Deadline budget left when the response was formed, ms
    /// (negative = already breached).
    pub deadline_remaining_ms: i64,
    /// Time spent in the admission queue, µs.
    pub queue_us: u64,
    /// Total accept→response time, µs.
    pub total_us: u64,
    /// Closed spans, creation order (root first).
    pub spans: Vec<SpanRec>,
}

impl ReqRecord {
    /// Status class label shared by RED metrics, access logs and
    /// exports: `2xx`/`3xx`/`4xx` plus the distinct overload signals
    /// `429` (shed), `503` (deadline/unavailable), `5xx`, and `drop`
    /// (chaos-withheld response, status 0).
    pub fn class(&self) -> &'static str {
        status_class(self.status)
    }
}

/// Status → class label (see [`ReqRecord::class`]).
pub fn status_class(status: u16) -> &'static str {
    match status {
        0 => "drop",
        429 => "429",
        503 => "503",
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        500..=599 => "5xx",
        _ => "other",
    }
}

/// A per-request span tree under construction. Single-threaded by
/// design: the owning worker mutates it without any synchronisation and
/// hands the finished record to the collector once.
#[derive(Debug)]
pub struct ReqTrace {
    record: ReqRecord,
    started: Instant,
    open: Vec<usize>,
}

impl ReqTrace {
    /// Open the root `request` span, anchored at `accepted_at`.
    pub fn begin(trace_id: TraceId, client_supplied: bool, accepted_at: Instant) -> ReqTrace {
        let mut trace = ReqTrace {
            record: ReqRecord {
                trace_id,
                client_supplied,
                route: "other".to_string(),
                status: 0,
                chaos_key: "-".to_string(),
                breaker: "closed".to_string(),
                breaker_transition: false,
                degraded: false,
                deadline_remaining_ms: 0,
                queue_us: 0,
                total_us: 0,
                spans: Vec::with_capacity(8),
            },
            started: accepted_at,
            open: Vec::with_capacity(4),
        };
        trace.enter("request");
        trace
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Open a child of the innermost open span.
    pub fn enter(&mut self, name: &'static str) {
        let start_us = self.now_us();
        let parent = self.open.last().copied();
        self.record.spans.push(SpanRec {
            name,
            parent,
            start_us,
            end_us: start_us,
        });
        self.open.push(self.record.spans.len() - 1);
    }

    /// Open a child spanning `[start_us, now]` retroactively — used for
    /// the queue span, whose start (the accept instant) predates the
    /// worker picking the job up.
    pub fn enter_at(&mut self, name: &'static str, start_us: u64) {
        let parent = self.open.last().copied();
        self.record.spans.push(SpanRec {
            name,
            parent,
            start_us,
            end_us: start_us,
        });
        self.open.push(self.record.spans.len() - 1);
    }

    /// Close the innermost open span (the root closes in
    /// [`finish`](Self::finish)).
    pub fn exit(&mut self) {
        let end_us = self.now_us();
        self.exit_at(end_us);
    }

    /// Close the innermost open span at an explicit offset — pairs with
    /// [`enter_at`](Self::enter_at) for spans reconstructed after the
    /// fact (queue wait, read).
    pub fn exit_at(&mut self, end_us: u64) {
        if self.open.len() > 1 {
            if let Some(idx) = self.open.pop() {
                self.record.spans[idx].end_us = end_us;
            }
        }
    }

    /// Record the route label.
    pub fn set_route(&mut self, route: &str) {
        self.record.route = route.to_string();
    }

    /// Record the final response status (leave unset for chaos drops).
    pub fn set_status(&mut self, status: u16) {
        self.record.status = status;
    }

    /// Record the client's chaos key.
    pub fn set_chaos_key(&mut self, key: &str) {
        self.record.chaos_key = key.to_string();
    }

    /// Record the breaker position observed while handling.
    pub fn set_breaker(&mut self, label: &str) {
        self.record.breaker = label.to_string();
    }

    /// Mark that the breaker changed state during this request.
    pub fn mark_breaker_transition(&mut self) {
        self.record.breaker_transition = true;
    }

    /// Mark the response as served from the degraded fast path.
    pub fn mark_degraded(&mut self) {
        self.record.degraded = true;
    }

    /// Record the deadline budget left at response time, ms.
    pub fn set_deadline_remaining_ms(&mut self, remaining: i64) {
        self.record.deadline_remaining_ms = remaining;
    }

    /// Record time spent queued, µs.
    pub fn set_queue_us(&mut self, queue_us: u64) {
        self.record.queue_us = queue_us;
    }

    /// The trace id (for response headers and error bodies).
    pub fn trace_id(&self) -> TraceId {
        self.record.trace_id
    }

    /// Did the client supply the trace id?
    pub fn client_supplied(&self) -> bool {
        self.record.client_supplied
    }

    /// The chaos key recorded so far (`-` until set).
    pub fn chaos_key(&self) -> &str {
        &self.record.chaos_key
    }

    /// Close every open span (root included) and return the record.
    pub fn finish(mut self) -> ReqRecord {
        let end_us = self.now_us();
        while let Some(idx) = self.open.pop() {
            self.record.spans[idx].end_us = end_us;
        }
        self.record.total_us = end_us;
        self.record
    }
}

/// One sampled trace plus why it was kept.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledTrace {
    /// The finished request record.
    pub record: ReqRecord,
    /// The sampler's keep reason.
    pub decision: SampleDecision,
}

/// A shard handle owned by exactly one worker thread — its mutex is
/// uncontended by construction (the only other locker is the export
/// path after the workers have quiesced).
#[derive(Clone)]
pub struct TraceSink {
    shard: Arc<Mutex<Vec<SampledTrace>>>,
    sampler: TailSampler,
    recorded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl TraceSink {
    /// Sample and (if kept) record one finished request. Returns the
    /// sampling decision so callers can stamp it into access logs.
    pub fn record(&self, record: ReqRecord) -> SampleDecision {
        let decision = self.sampler.decide(&record);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if decision.keep() {
            self.shard
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(SampledTrace { record, decision });
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    /// Classify without recording — for callers that only need the
    /// would-be decision (e.g. when collection is disarmed but access
    /// logs still print the sampling column).
    pub fn decide(&self, record: &ReqRecord) -> SampleDecision {
        self.sampler.decide(record)
    }
}

/// The per-server trace store: a registry of per-thread shards merged
/// deterministically at export.
pub struct TraceCollector {
    sampler: TailSampler,
    shards: Mutex<Vec<Arc<Mutex<Vec<SampledTrace>>>>>,
    recorded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl TraceCollector {
    /// An empty collector with the given sampling policy.
    pub fn new(sampler: TailSampler) -> TraceCollector {
        TraceCollector {
            sampler,
            shards: Mutex::new(Vec::new()),
            recorded: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Register a new shard for one worker thread.
    pub fn register(&self) -> TraceSink {
        let shard = Arc::new(Mutex::new(Vec::new()));
        self.shards
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&shard));
        TraceSink {
            shard,
            sampler: self.sampler,
            recorded: Arc::clone(&self.recorded),
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// `(recorded, dropped)` totals — `recorded - dropped` traces are
    /// retained, so the cap the sampler imposes is never silent.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.recorded.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }

    /// Merge every shard into one deterministically ordered list:
    /// sorted by `(trace id, route, status)` — never by thread or
    /// completion order, so the result is independent of worker count.
    pub fn sampled(&self) -> Vec<SampledTrace> {
        let shards = self.shards.lock().unwrap_or_else(|p| p.into_inner());
        let mut all: Vec<SampledTrace> = shards
            .iter()
            .flat_map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .collect();
        all.sort_by(|a, b| {
            (a.record.trace_id, &a.record.route, a.record.status).cmp(&(
                b.record.trace_id,
                &b.record.route,
                b.record.status,
            ))
        });
        all
    }

    /// JSONL span export: one JSON object per trace, wall-clock span
    /// offsets included (not reproducible across runs — use
    /// [`export_canonical`](Self::export_canonical) for goldens).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for t in self.sampled() {
            let r = &t.record;
            out.push_str(&format!(
                "{{\"trace_id\":\"{}\",\"client_supplied\":{},\"route\":\"{}\",\
                 \"status\":{},\"class\":\"{}\",\"chaos_key\":\"{}\",\"breaker\":\"{}\",\
                 \"breaker_transition\":{},\"degraded\":{},\"deadline_remaining_ms\":{},\
                 \"queue_us\":{},\"total_us\":{},\"sampled\":\"{}\",\"spans\":[",
                r.trace_id.as_hex(),
                r.client_supplied,
                json_escape(&r.route),
                r.status,
                r.class(),
                json_escape(&r.chaos_key),
                json_escape(&r.breaker),
                r.breaker_transition,
                r.degraded,
                r.deadline_remaining_ms,
                r.queue_us,
                r.total_us,
                t.decision.label(),
            ));
            for (i, span) in r.spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"parent\":{},\"start_us\":{},\"end_us\":{}}}",
                    span.name,
                    span.parent.map_or("null".to_string(), |p| p.to_string()),
                    span.start_us,
                    span.end_us,
                ));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Chrome `trace_event` export (`chrome://tracing`, Perfetto): one
    /// complete (`ph: "X"`) event per span, one tid per trace.
    pub fn export_chrome(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for (tid, t) in self.sampled().iter().enumerate() {
            let r = &t.record;
            for span in &r.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\
                     \"dur\":{},\"args\":{{\"trace_id\":\"{}\",\"route\":\"{}\",\
                     \"status\":{},\"sampled\":\"{}\"}}}}",
                    span.name,
                    tid,
                    span.start_us,
                    span.end_us.saturating_sub(span.start_us),
                    r.trace_id.as_hex(),
                    json_escape(&r.route),
                    r.status,
                    t.decision.label(),
                ));
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// Timing-free canonical projection: one line per sampled trace
    /// (trace-id order) carrying only seed-deterministic fields — the
    /// byte-identical-across-worker-counts surface the determinism
    /// tests pin. Span names appear in tree order with their parent
    /// index; offsets and durations are deliberately absent.
    pub fn export_canonical(&self) -> String {
        let mut out = String::new();
        for t in self.sampled() {
            let r = &t.record;
            let spans: Vec<String> = r
                .spans
                .iter()
                .map(|s| match s.parent {
                    Some(p) => format!("{}<{}", s.name, p),
                    None => s.name.to_string(),
                })
                .collect();
            out.push_str(&format!(
                "{} route={} status={} class={} chaos_key={} breaker={} degraded={} sampled={} spans={}\n",
                r.trace_id.as_hex(),
                r.route,
                r.status,
                r.class(),
                r.chaos_key,
                r.breaker,
                r.degraded,
                t.decision.label(),
                spans.join(","),
            ));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(status: u16, total_us: u64, id: TraceId) -> ReqRecord {
        ReqRecord {
            trace_id: id,
            client_supplied: true,
            route: "predict".to_string(),
            status,
            chaos_key: "1:0".to_string(),
            breaker: "closed".to_string(),
            breaker_transition: false,
            degraded: false,
            deadline_remaining_ms: 900,
            queue_us: 10,
            total_us,
            spans: Vec::new(),
        }
    }

    #[test]
    fn parse_accepts_only_exact_32_hex_nonzero() {
        assert!(TraceId::parse("0af7651916cd43dd8448eb211c80319c").is_some());
        assert!(TraceId::parse("0AF7651916CD43DD8448EB211C80319C").is_some());
        for bad in [
            "",
            "0af7651916cd43dd8448eb211c80319",    // 31
            "0af7651916cd43dd8448eb211c80319cc",  // 33
            "0af7651916cd43dd8448eb211c80319g",   // non-hex
            "00000000000000000000000000000000",   // all-zero
            "0af7651916cd43dd 448eb211c80319c",   // space
            "тридцатьдва-символа-не-шестнадцать", // non-ascii
        ] {
            assert!(TraceId::parse(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn traceparent_is_strict_but_never_panics() {
        let id =
            TraceId::parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
                .expect("valid traceparent");
        assert_eq!(id.as_hex(), "0af7651916cd43dd8448eb211c80319c");
        for bad in [
            "",
            "00",
            "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version
            "00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1",  // short flags
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-011", // shifted dash
            "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01", // wrong separator
        ] {
            assert!(TraceId::parse_traceparent(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn derived_ids_are_deterministic_and_distinct() {
        assert_eq!(TraceId::derive(7, 3, 0), TraceId::derive(7, 3, 0));
        assert_ne!(TraceId::derive(7, 3, 0), TraceId::derive(7, 3, 1));
        assert_ne!(TraceId::derive(7, 3, 0), TraceId::derive(7, 4, 0));
        assert_ne!(TraceId::derive(7, 3, 0), TraceId::derive(8, 3, 0));
        // Derived ids round-trip through the canonical hex form.
        let id = TraceId::derive(42, 17, 2);
        assert_eq!(TraceId::parse(&id.as_hex()), Some(id));
        assert_eq!(TraceId::derived_span_hex(7, 3, 0).len(), 16);
    }

    #[test]
    fn resolve_prefers_the_dedicated_header_then_traceparent() {
        let bare = "0af7651916cd43dd8448eb211c80319c";
        let parent = "00-ffffffffffffffffffffffffffffffff-b7ad6b7169203331-01";
        let (id, client) = resolve(Some(bare), Some(parent), 1, 2);
        assert!(client);
        assert_eq!(id.as_hex(), bare);
        let (id, client) = resolve(Some("garbage"), Some(parent), 1, 2);
        assert!(client);
        assert_eq!(id.as_hex(), "ffffffffffffffffffffffffffffffff");
        let (fallback, client) = resolve(Some("garbage"), Some("also-garbage"), 1, 2);
        assert!(!client);
        assert_ne!(fallback.0, 0);
        // Fallbacks are unique per counter.
        let (other, _) = resolve(None, None, 1, 3);
        assert_ne!(fallback, other);
    }

    #[test]
    fn sampler_keeps_errors_breaker_transitions_and_tails() {
        let sampler = TailSampler {
            seed: 1,
            keep_1_in: u64::MAX, // hash rule effectively never fires
            tail_latency_ms: 200.0,
        };
        let id = TraceId::derive(1, 1, 0);
        assert_eq!(
            sampler.decide(&record(429, 50, id)),
            SampleDecision::KeepError
        );
        assert_eq!(
            sampler.decide(&record(0, 50, id)),
            SampleDecision::KeepError
        );
        assert_eq!(
            sampler.decide(&record(503, 50, id)),
            SampleDecision::KeepError
        );
        let mut with_transition = record(200, 50, id);
        with_transition.breaker_transition = true;
        assert_eq!(
            sampler.decide(&with_transition),
            SampleDecision::KeepBreaker
        );
        assert_eq!(
            sampler.decide(&record(200, 250_000, id)),
            SampleDecision::KeepTail
        );
        assert_eq!(sampler.decide(&record(200, 50, id)), SampleDecision::Drop);
        // keep_1_in = 1 keeps everything.
        let keep_all = TailSampler {
            keep_1_in: 1,
            ..sampler
        };
        assert_eq!(
            keep_all.decide(&record(200, 50, id)),
            SampleDecision::KeepSampled
        );
    }

    #[test]
    fn sampling_hash_is_a_pure_function_of_seed_and_trace_id() {
        let sampler = TailSampler {
            seed: 9,
            keep_1_in: 4,
            tail_latency_ms: f64::INFINITY,
        };
        let mut kept = 0;
        for i in 0..256u64 {
            let r = record(200, 10, TraceId::derive(3, i, 0));
            let first = sampler.decide(&r);
            assert_eq!(first, sampler.decide(&r), "decision must be stable");
            if first.keep() {
                kept += 1;
            }
        }
        // Roughly 1-in-4 with wide tolerance — the point is the rule
        // fires sometimes and not always, deterministically.
        assert!((16..=160).contains(&kept), "kept {kept}/256");
    }

    #[test]
    fn span_tree_nests_and_finish_closes_everything() {
        let t0 = Instant::now();
        let mut trace = ReqTrace::begin(TraceId::derive(1, 1, 0), true, t0);
        trace.enter_at("queue", 0);
        trace.exit();
        trace.enter("handle");
        trace.enter("plan");
        trace.exit();
        // "handle" left open on purpose — finish must close it.
        trace.set_route("plan");
        trace.set_status(200);
        let record = trace.finish();
        let names: Vec<&str> = record.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["request", "queue", "handle", "plan"]);
        assert_eq!(record.spans[0].parent, None);
        assert_eq!(record.spans[1].parent, Some(0));
        assert_eq!(record.spans[2].parent, Some(0));
        assert_eq!(record.spans[3].parent, Some(2));
        for span in &record.spans {
            assert!(span.end_us >= span.start_us);
        }
        assert_eq!(record.status, 200);
    }

    #[test]
    fn collector_merge_is_shard_order_independent() {
        let make = |order: &[u64]| {
            let collector = TraceCollector::new(TailSampler {
                seed: 0,
                keep_1_in: 1,
                tail_latency_ms: f64::INFINITY,
            });
            // Two shards, traces distributed differently per run.
            let a = collector.register();
            let b = collector.register();
            for (i, &id) in order.iter().enumerate() {
                let sink = if i % 2 == 0 { &a } else { &b };
                sink.record(record(200, 10, TraceId::derive(5, id, 0)));
            }
            collector.export_canonical()
        };
        let forward = make(&[1, 2, 3, 4, 5]);
        let reversed = make(&[5, 4, 3, 2, 1]);
        assert_eq!(forward, reversed);
        assert_eq!(forward.lines().count(), 5);
    }

    #[test]
    fn exports_carry_the_join_keys() {
        let collector = TraceCollector::new(TailSampler::default());
        let sink = collector.register();
        let id = TraceId::derive(2, 9, 0);
        let mut shed = record(429, 77, id);
        shed.route = "shed".to_string();
        assert_eq!(sink.record(shed), SampleDecision::KeepError);
        let jsonl = collector.export_jsonl();
        assert!(jsonl.contains(&id.as_hex()), "{jsonl}");
        assert!(jsonl.contains("\"class\":\"429\""), "{jsonl}");
        assert!(jsonl.contains("\"sampled\":\"error\""), "{jsonl}");
        let chrome = collector.export_chrome();
        assert!(chrome.starts_with('['));
        assert!(chrome.trim_end().ends_with(']'));
        let canonical = collector.export_canonical();
        assert!(canonical.contains("class=429"), "{canonical}");
        assert_eq!(collector.totals(), (1, 0));
    }

    #[test]
    fn status_classes_distinguish_overload_signals() {
        assert_eq!(status_class(200), "2xx");
        assert_eq!(status_class(404), "4xx");
        assert_eq!(status_class(429), "429");
        assert_eq!(status_class(503), "503");
        assert_eq!(status_class(500), "5xx");
        assert_eq!(status_class(0), "drop");
    }
}
