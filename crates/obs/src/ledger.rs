//! Energy-attribution ledger: per-phase × per-role × per-term joules.
//!
//! The migration simulation knows, at every meter sample, how the host's
//! ground-truth power splits into physical terms (idle floor, dynamic
//! CPU, memory dirtying, NIC, migration service). The ledger collects
//! that split integrated over the paper's phase windows, one entry per
//! simulated migration, so a campaign can answer *where the joules went*
//! rather than only how many were drawn.
//!
//! ## Determinism contract
//!
//! Entries are recorded under the run key of the enclosing
//! [`run_scope`](crate::run_scope) (the same key the trace buffers use)
//! and sorted by that key when the session finishes, so the JSONL
//! artefact is byte-identical across rayon thread counts — the same
//! guarantee the trace stream gives. Numbers are rendered with Rust's
//! shortest round-trip `f64` formatting (non-finite → `null`), matching
//! the trace encoder.

use crate::session;

/// Per-term energy of one phase window on one host, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TermEnergy {
    /// Static idle floor.
    pub idle_j: f64,
    /// Dynamic CPU power above the idle floor.
    pub cpu_j: f64,
    /// Memory-bus contention from page dirtying.
    pub mem_dirty_j: f64,
    /// NIC power from migration traffic.
    pub network_j: f64,
    /// Migration service machinery.
    pub service_j: f64,
}

impl TermEnergy {
    /// Sum of the terms.
    pub fn total_j(&self) -> f64 {
        self.idle_j + self.cpu_j + self.mem_dirty_j + self.network_j + self.service_j
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &TermEnergy) -> TermEnergy {
        TermEnergy {
            idle_j: self.idle_j + other.idle_j,
            cpu_j: self.cpu_j + other.cpu_j,
            mem_dirty_j: self.mem_dirty_j + other.mem_dirty_j,
            network_j: self.network_j + other.network_j,
            service_j: self.service_j + other.service_j,
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        write_kv(out, "idle_j", self.idle_j);
        out.push(',');
        write_kv(out, "cpu_j", self.cpu_j);
        out.push(',');
        write_kv(out, "mem_dirty_j", self.mem_dirty_j);
        out.push(',');
        write_kv(out, "network_j", self.network_j);
        out.push(',');
        write_kv(out, "service_j", self.service_j);
        out.push('}');
    }
}

/// One host's ledger over a migration: a [`TermEnergy`] per phase
/// window. The windows mirror
/// [`EnergyBreakdown`](../../wavm3_power/phases/struct.EnergyBreakdown.html):
/// aborted runs book the post-abort window under `rollback` and leave
/// `activation` zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoleLedger {
    /// `[ms, ts)` — target preparation, connection setup.
    pub initiation: TermEnergy,
    /// `[ts, te)` — state moving over the network.
    pub transfer: TermEnergy,
    /// `[te, me)` on completed runs — resume, cleanup.
    pub activation: TermEnergy,
    /// `[te, me)` on aborted runs — teardown of the failed attempt.
    pub rollback: TermEnergy,
}

impl RoleLedger {
    /// Sum across phases and terms — the host's total migration energy.
    pub fn total_j(&self) -> f64 {
        self.initiation.total_j()
            + self.transfer.total_j()
            + self.activation.total_j()
            + self.rollback.total_j()
    }

    /// Phase label / energy pairs, in timeline order.
    pub fn phases(&self) -> [(&'static str, TermEnergy); 4] {
        [
            ("initiation", self.initiation),
            ("transfer", self.transfer),
            ("activation", self.activation),
            ("rollback", self.rollback),
        ]
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (label, term)) in self.phases().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(label);
            out.push_str("\":");
            term.write_json(out);
        }
        out.push(',');
        write_kv(out, "total_j", self.total_j());
        out.push('}');
    }
}

/// One migration's attribution entry: both hosts' per-phase term splits.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Migration kind label (`live` / `non-live`).
    pub kind: &'static str,
    /// `completed` or `aborted`.
    pub outcome: &'static str,
    /// Source-host attribution.
    pub source: RoleLedger,
    /// Target-host attribution.
    pub target: RoleLedger,
}

impl LedgerEntry {
    /// Source + target total, joules.
    pub fn total_j(&self) -> f64 {
        self.source.total_j() + self.target.total_j()
    }

    /// One deterministic JSONL line (fixed key order, shortest
    /// round-trip floats, no whitespace). `run` is the run key the entry
    /// was recorded under.
    pub fn to_jsonl(&self, run: &str) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"run\":");
        write_json_string(&mut out, run);
        out.push_str(",\"kind\":");
        write_json_string(&mut out, self.kind);
        out.push_str(",\"outcome\":");
        write_json_string(&mut out, self.outcome);
        out.push_str(",\"source\":");
        self.source.write_json(&mut out);
        out.push_str(",\"target\":");
        self.target.write_json(&mut out);
        out.push(',');
        write_kv(&mut out, "total_j", self.total_j());
        out.push('}');
        out
    }
}

fn write_kv(out: &mut String, key: &str, value: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    if value.is_finite() {
        out.push_str(&value.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `true` when an installed session is collecting ledger entries. The
/// simulation consults this once per run before doing any per-sample
/// attribution work.
#[inline]
pub fn ledger_active() -> bool {
    session::ledger_active()
}

/// Record one migration's attribution under the innermost
/// [`run_scope`](crate::run_scope) key (root key when none is open).
/// No-op without a ledger session.
///
/// Inside a run scope the entry is buffered thread-locally and flushed
/// with the scope — one session-lock acquisition per run instead of one
/// per entry.
pub fn record(entry: LedgerEntry) {
    if !session::ledger_active() {
        return;
    }
    if let Some(entry) = crate::trace::buffer_ledger_entry(entry) {
        session::push_ledger_entry(String::new(), entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(scale: f64) -> TermEnergy {
        TermEnergy {
            idle_j: 100.0 * scale,
            cpu_j: 40.0 * scale,
            mem_dirty_j: 10.0 * scale,
            network_j: 8.0 * scale,
            service_j: 2.0 * scale,
        }
    }

    #[test]
    fn totals_add_up() {
        let role = RoleLedger {
            initiation: term(1.0),
            transfer: term(10.0),
            activation: term(0.5),
            rollback: TermEnergy::default(),
        };
        assert!((role.total_j() - 160.0 * 11.5).abs() < 1e-9);
        let entry = LedgerEntry {
            kind: "live",
            outcome: "completed",
            source: role,
            target: role,
        };
        assert!((entry.total_j() - 2.0 * role.total_j()).abs() < 1e-9);
    }

    #[test]
    fn jsonl_is_fixed_order_and_compact() {
        let entry = LedgerEntry {
            kind: "live",
            outcome: "completed",
            source: RoleLedger {
                transfer: term(1.0),
                ..RoleLedger::default()
            },
            target: RoleLedger::default(),
        };
        let line = entry.to_jsonl("cpuload-src|rep000|att0");
        assert!(line.starts_with("{\"run\":\"cpuload-src|rep000|att0\",\"kind\":\"live\""));
        assert!(line.contains("\"outcome\":\"completed\""));
        // Fixed phase order inside a role object.
        let src = line.find("\"source\":").unwrap();
        let ini = line[src..].find("\"initiation\"").unwrap();
        let tra = line[src..].find("\"transfer\"").unwrap();
        let act = line[src..].find("\"activation\"").unwrap();
        let rb = line[src..].find("\"rollback\"").unwrap();
        assert!(ini < tra && tra < act && act < rb);
        assert!(!line.contains(' '), "compact encoding has no spaces");
        assert!(line.contains("\"total_j\":160"));
    }

    #[test]
    fn ledger_entries_sort_by_run_key_and_skip_empty_trace_buffers() {
        use crate::session::{ObsConfig, Session};
        let session = Session::install(ObsConfig {
            ledger: true,
            ..ObsConfig::default()
        });
        let entry = |scale: f64| LedgerEntry {
            kind: "live",
            outcome: "completed",
            source: RoleLedger {
                transfer: term(scale),
                ..RoleLedger::default()
            },
            target: RoleLedger::default(),
        };
        crate::run_scope("z|rep001|att0".into(), || record(entry(2.0)));
        crate::run_scope("a|rep000|att0".into(), || record(entry(1.0)));
        let report = session.finish();
        let keys: Vec<&str> = report.ledger.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a|rep000|att0", "z|rep001|att0"]);
        // Ledger-only scopes must not pad the trace with empty buffers.
        assert!(report.events.is_empty());
        assert_eq!(report.ledger_jsonl().lines().count(), 2);
    }

    #[test]
    fn record_without_a_session_is_inert() {
        let _guard = crate::session::lock_for_tests();
        assert!(!ledger_active());
        record(LedgerEntry {
            kind: "live",
            outcome: "completed",
            source: RoleLedger::default(),
            target: RoleLedger::default(),
        });
    }

    #[test]
    fn non_finite_values_encode_as_null() {
        let entry = LedgerEntry {
            kind: "live",
            outcome: "completed",
            source: RoleLedger {
                transfer: TermEnergy {
                    idle_j: f64::NAN,
                    ..TermEnergy::default()
                },
                ..RoleLedger::default()
            },
            target: RoleLedger::default(),
        };
        assert!(entry.to_jsonl("k").contains("\"idle_j\":null"));
    }
}
