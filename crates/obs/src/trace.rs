//! Event emission: level gates, sim-time span guards and per-run scopes.
//!
//! ## Determinism contract
//!
//! Simulations run in parallel (rayon fans scenarios out over threads), so
//! a single shared event stream would interleave nondeterministically.
//! Instead every migration run executes inside a [`run_scope`] whose events
//! collect in a thread-local buffer; when the scope closes, the buffer is
//! handed to the session keyed by the scope's run key. At flush time the
//! buffers are sorted by key — a pure function of the campaign structure —
//! so the merged JSONL stream is byte-identical across thread counts.
//!
//! Events emitted outside any run scope (campaign-level progress from the
//! main thread) land in the session's root buffer, which sorts first.

use crate::event::{Event, FieldValue};
use crate::ledger::LedgerEntry;
use crate::level::Level;
use crate::session;
use std::cell::RefCell;
use wavm3_simkit::SimTime;

thread_local! {
    /// Buffer of the innermost open run scope on this thread.
    static RUN_BUF: RefCell<Option<RunBuf>> = const { RefCell::new(None) };
}

struct RunBuf {
    key: String,
    events: Vec<Event>,
    /// Ledger entries recorded inside this scope; flushed with the
    /// events in one session-lock acquisition when the scope closes.
    ledger: Vec<LedgerEntry>,
}

/// Buffer a ledger entry into the innermost open run scope on this
/// thread. Returns the entry back (`Some`) when no scope is open so the
/// caller can fall back to a direct session push under the root key.
pub(crate) fn buffer_ledger_entry(entry: LedgerEntry) -> Option<LedgerEntry> {
    RUN_BUF.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.ledger.push(entry);
            None
        } else {
            Some(entry)
        }
    })
}

/// `true` when any trace sink (JSONL buffer or console) is installed.
#[inline]
pub fn tracing_active() -> bool {
    session::trace_active() || session::console_level().is_some()
}

/// `true` when an event at `level` would reach at least one sink. The
/// [`event!`](crate::event!) macro consults this before evaluating fields.
#[inline]
pub fn event_enabled(level: Level) -> bool {
    if session::trace_active() && level >= session::collect_level() {
        return true;
    }
    matches!(session::console_level(), Some(min) if level >= min)
}

fn dispatch(event: Event) {
    if let Some(min) = session::console_level() {
        if event.level >= min {
            eprintln!("{}", event.to_console());
        }
    }
    if session::trace_active() && event.level >= session::collect_level() {
        let buffered = RUN_BUF.with(|b| {
            if let Some(buf) = b.borrow_mut().as_mut() {
                buf.events.push(event.clone());
                true
            } else {
                false
            }
        });
        if !buffered {
            session::push_root_event(event);
        }
    }
}

/// Emit a point event. Prefer the [`event!`](crate::event!) macro, which
/// skips field construction when no sink accepts `level`.
pub fn emit(
    level: Level,
    target: &'static str,
    name: &'static str,
    t: SimTime,
    fields: Vec<(&'static str, FieldValue)>,
) {
    if !event_enabled(level) {
        return;
    }
    dispatch(Event {
        t,
        level,
        target,
        name,
        span_start: None,
        fields,
    });
}

/// Emit an already-closed span `[start, end]` in one call (used when the
/// boundaries are only known after the fact, e.g. phase windows fixed up
/// at the end of a run).
pub fn emit_span(
    level: Level,
    target: &'static str,
    name: &'static str,
    start: SimTime,
    end: SimTime,
    fields: Vec<(&'static str, FieldValue)>,
) {
    if !event_enabled(level) {
        return;
    }
    dispatch(Event {
        t: end,
        level,
        target,
        name,
        span_start: Some(start),
        fields,
    });
}

/// An open sim-time span. Obtain with [`span`], attach attributes with
/// [`Span::record`], and finish with [`Span::close`] at the end instant.
///
/// Dropping an unclosed active span emits it with `end == start` and an
/// `"unclosed" = true` marker rather than losing it.
#[must_use = "close the span with an end time, or it reports as unclosed"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    level: Level,
    target: &'static str,
    name: &'static str,
    start: SimTime,
    fields: Vec<(&'static str, FieldValue)>,
}

/// Open a span at `start`. When no sink accepts `level` the returned
/// guard is inert and every operation on it is a no-op.
pub fn span(level: Level, target: &'static str, name: &'static str, start: SimTime) -> Span {
    if !event_enabled(level) {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner {
            level,
            target,
            name,
            start,
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// `true` when the span will actually be emitted (use to skip
    /// expensive attribute computation).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach one attribute (no-op on inert spans).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
    }

    /// Close the span at `end` and emit it.
    pub fn close(mut self, end: SimTime) {
        if let Some(inner) = self.inner.take() {
            dispatch(Event {
                t: end,
                level: inner.level,
                target: inner.target,
                name: inner.name,
                span_start: Some(inner.start),
                fields: inner.fields,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut inner) = self.inner.take() {
            inner.fields.push(("unclosed", FieldValue::Bool(true)));
            dispatch(Event {
                t: inner.start,
                level: inner.level,
                target: inner.target,
                name: inner.name,
                span_start: Some(inner.start),
                fields: inner.fields,
            });
        }
    }
}

/// RAII guard restoring the previous thread-local buffer (panic-safe).
pub struct RunScope {
    previous: Option<RunBuf>,
    armed: bool,
}

impl RunScope {
    fn open(key: String) -> RunScope {
        let previous = RUN_BUF.with(|b| {
            b.borrow_mut().replace(RunBuf {
                key,
                events: Vec::new(),
                ledger: Vec::new(),
            })
        });
        RunScope {
            previous,
            armed: true,
        }
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let closed = RUN_BUF.with(|b| {
            let mut slot = b.borrow_mut();
            let closed = slot.take();
            *slot = self.previous.take();
            closed
        });
        if let Some(buf) = closed {
            // A ledger-only scope buffers no events; pushing it would
            // only pad the report with empty run buffers.
            let events = if session::trace_active() || !buf.events.is_empty() {
                Some(buf.events)
            } else {
                None
            };
            session::push_run_shard(buf.key, events, buf.ledger);
        }
    }
}

/// Run `f` with its trace events collected under `key`.
///
/// Keys must be unique across a session (e.g. `scenario-id|rep003|att0`)
/// and are sorted lexicographically at flush time, so zero-pad any
/// numeric components. Scopes nest: the inner scope's events flush under
/// the inner key, and the outer buffer resumes afterwards. When neither
/// tracing nor the energy ledger is armed this is exactly `f()` (the
/// ledger needs the scope open so its entries pick up the run key).
pub fn run_scope<R>(key: String, f: impl FnOnce() -> R) -> R {
    run_scope_with(move || key, f)
}

/// [`run_scope`] with a lazily-built key: `key` is only evaluated when a
/// trace or ledger sink is actually armed, so hot paths pay nothing for
/// the `format!` that builds run keys when observability is off.
pub fn run_scope_with<R>(key: impl FnOnce() -> String, f: impl FnOnce() -> R) -> R {
    if !session::trace_active() && !session::ledger_active() {
        return f();
    }
    let _scope = RunScope::open(key());
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ObsConfig, Session};

    fn test_session() -> Session {
        Session::install(ObsConfig {
            trace: true,
            collect_level: Level::Debug,
            console: None,
            metrics: false,
            profiling: false,
            ledger: false,
        })
    }

    #[test]
    fn disabled_probes_are_inert() {
        // Hold the session lock so no concurrent test installs sinks
        // while this one asserts on the disabled state.
        let _guard = crate::session::lock_for_tests();
        assert!(!tracing_active());
        assert!(!event_enabled(Level::Error));
        crate::event!(Level::Error, "t", "n", SimTime::ZERO, "k" => 1u64);
        let mut sp = span(Level::Error, "t", "n", SimTime::ZERO);
        assert!(!sp.is_active());
        sp.record("k", 2u64);
        sp.close(SimTime::ZERO);
    }

    #[test]
    fn level_filter_drops_below_threshold() {
        let session = test_session();
        run_scope("a".into(), || {
            crate::event!(Level::Trace, "t", "too.fine", SimTime::ZERO);
            crate::event!(Level::Debug, "t", "kept.debug", SimTime::ZERO);
            crate::event!(Level::Info, "t", "kept.info", SimTime::ZERO);
        });
        let report = session.finish();
        let jsonl = report.trace_jsonl();
        assert!(!jsonl.contains("too.fine"));
        assert!(jsonl.contains("kept.debug"));
        assert!(jsonl.contains("kept.info"));
    }

    #[test]
    fn run_buffers_merge_in_key_order_not_emission_order() {
        let session = test_session();
        run_scope("z-last".into(), || {
            crate::event!(Level::Info, "t", "second", SimTime::ZERO);
        });
        run_scope("a-first".into(), || {
            crate::event!(Level::Info, "t", "first", SimTime::ZERO);
        });
        crate::event!(Level::Info, "t", "root", SimTime::ZERO);
        let report = session.finish();
        let names: Vec<&str> = report
            .trace_jsonl()
            .lines()
            .map(|l| {
                let start = l.find("\"name\":\"").unwrap() + 8;
                let end = l[start..].find('"').unwrap() + start;
                &l[start..end]
            })
            .map(|s| match s {
                "first" => "first",
                "second" => "second",
                _ => "root",
            })
            .collect();
        assert_eq!(names, vec!["root", "first", "second"]);
    }

    #[test]
    fn nested_scopes_restore_the_outer_buffer() {
        let session = test_session();
        run_scope("outer".into(), || {
            crate::event!(Level::Info, "t", "before", SimTime::ZERO);
            run_scope("outer|inner".into(), || {
                crate::event!(Level::Info, "t", "within", SimTime::ZERO);
            });
            crate::event!(Level::Info, "t", "after", SimTime::ZERO);
        });
        let report = session.finish();
        let keys: Vec<&str> = report.events.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["outer", "outer|inner"]);
        assert_eq!(report.events[0].1.len(), 2);
        assert_eq!(report.events[1].1.len(), 1);
    }

    #[test]
    fn unclosed_span_is_flagged_not_lost() {
        let session = test_session();
        run_scope("r".into(), || {
            let mut sp = span(Level::Info, "t", "leaky", SimTime::from_secs(1));
            sp.record("k", 7u64);
            drop(sp);
        });
        let report = session.finish();
        let jsonl = report.trace_jsonl();
        assert!(jsonl.contains("leaky"));
        assert!(jsonl.contains("\"unclosed\":true"));
    }
}
