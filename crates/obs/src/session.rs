//! Session lifecycle: installing sinks, collecting buffers, reporting.
//!
//! One [`Session`] is active per process at a time (installation takes a
//! global lock, so concurrent tests serialise instead of interleaving).
//! With no session installed, every instrumentation probe in the
//! workspace reduces to a relaxed atomic load — the "null sink".

use crate::event::Event;
use crate::ledger::LedgerEntry;
use crate::level::Level;
use crate::metrics::{self, MetricsSnapshot};
use crate::perf::{self, PerfSnapshot, ProfileSnapshot};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

// --- Global sink state, read on the hot path. ------------------------------

static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);
static METRICS_ACTIVE: AtomicBool = AtomicBool::new(false);
static LEDGER_ACTIVE: AtomicBool = AtomicBool::new(false);
/// 0 = console off, otherwise `level as u8 + 1`.
static CONSOLE_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Minimum level the JSONL buffer collects.
static COLLECT_LEVEL: AtomicU8 = AtomicU8::new(Level::Debug as u8);

#[inline]
pub(crate) fn trace_active() -> bool {
    TRACE_ACTIVE.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn metrics_active() -> bool {
    METRICS_ACTIVE.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn ledger_active() -> bool {
    LEDGER_ACTIVE.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn console_level() -> Option<Level> {
    match CONSOLE_LEVEL.load(Ordering::Relaxed) {
        0 => None,
        n => Some(Level::ALL[(n - 1) as usize]),
    }
}

#[inline]
pub(crate) fn collect_level() -> Level {
    Level::ALL[COLLECT_LEVEL.load(Ordering::Relaxed) as usize]
}

#[inline]
pub(crate) fn any_active() -> bool {
    trace_active() || metrics_active() || ledger_active() || console_level().is_some()
}

// --- Collected buffers. ----------------------------------------------------

#[derive(Default)]
struct Collected {
    /// Events emitted outside any run scope (main-thread campaign level).
    root: Vec<Event>,
    /// Closed run-scope buffers, in completion order (re-sorted by key at
    /// flush, which is what makes the merged stream deterministic).
    runs: Vec<(String, Vec<Event>)>,
    /// Energy-attribution entries keyed by run key, in completion order
    /// (re-sorted by key at flush, same determinism contract).
    ledger: Vec<(String, LedgerEntry)>,
}

fn collected() -> &'static Mutex<Collected> {
    static COLLECTED: OnceLock<Mutex<Collected>> = OnceLock::new();
    COLLECTED.get_or_init(Mutex::default)
}

fn lock_collected() -> MutexGuard<'static, Collected> {
    collected().lock().unwrap_or_else(|p| p.into_inner())
}

pub(crate) fn push_root_event(event: Event) {
    lock_collected().root.push(event);
}

/// Drain one closed run scope into the session in a single lock
/// acquisition: the event buffer (when the scope kept one) and every
/// ledger entry recorded inside it, all under the scope's run key.
pub(crate) fn push_run_shard(key: String, events: Option<Vec<Event>>, ledger: Vec<LedgerEntry>) {
    if events.is_none() && ledger.is_empty() {
        return;
    }
    let mut collected = lock_collected();
    if !ledger.is_empty() {
        collected
            .ledger
            .extend(ledger.into_iter().map(|entry| (key.clone(), entry)));
    }
    if let Some(events) = events {
        collected.runs.push((key, events));
    }
}

pub(crate) fn push_ledger_entry(key: String, entry: LedgerEntry) {
    lock_collected().ledger.push((key, entry));
}

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
}

/// Serialise against session installation — lets tests that assert on the
/// *absence* of a session avoid racing tests that install one.
#[cfg(test)]
pub(crate) fn lock_for_tests() -> MutexGuard<'static, ()> {
    session_lock().lock().unwrap_or_else(|p| p.into_inner())
}

// --- Configuration and the session guard. ----------------------------------

/// Which sinks a [`Session`] arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Collect events into the deterministic JSONL trace buffer.
    pub trace: bool,
    /// Minimum level the trace buffer records (default [`Level::Debug`]).
    pub collect_level: Level,
    /// Human-readable console subscriber on stderr, with its filter
    /// level; `None` = silent.
    pub console: Option<Level>,
    /// Arm the global metrics registry.
    pub metrics: bool,
    /// Arm the wall-clock stage profiler.
    pub profiling: bool,
    /// Collect per-migration energy-attribution [`LedgerEntry`]s.
    pub ledger: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace: false,
            collect_level: Level::Debug,
            console: None,
            metrics: false,
            profiling: false,
            ledger: false,
        }
    }
}

/// An installed observability session. Dropping it (or calling
/// [`Session::finish`]) disarms every sink and releases the global
/// session lock.
pub struct Session {
    _lock: MutexGuard<'static, ()>,
    config: ObsConfig,
}

impl Session {
    /// Arm the configured sinks. Blocks until any other session in the
    /// process has finished.
    pub fn install(config: ObsConfig) -> Session {
        let lock = session_lock().lock().unwrap_or_else(|p| p.into_inner());
        *lock_collected() = Collected::default();
        metrics::reset_global();
        perf::reset_global();
        COLLECT_LEVEL.store(config.collect_level as u8, Ordering::Relaxed);
        CONSOLE_LEVEL.store(
            config.console.map(|l| l as u8 + 1).unwrap_or(0),
            Ordering::Relaxed,
        );
        TRACE_ACTIVE.store(config.trace, Ordering::Relaxed);
        METRICS_ACTIVE.store(config.metrics, Ordering::Relaxed);
        LEDGER_ACTIVE.store(config.ledger, Ordering::Relaxed);
        perf::set_active(config.profiling);
        Session {
            _lock: lock,
            config,
        }
    }

    /// The configuration this session was installed with.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// Disarm the sinks and hand back everything collected.
    pub fn finish(self) -> ObsReport {
        disarm();
        let collected = std::mem::take(&mut *lock_collected());
        let mut events = Vec::with_capacity(collected.runs.len() + 1);
        if !collected.root.is_empty() {
            // The root buffer's key sorts before any run key.
            events.push((String::new(), collected.root));
        }
        events.extend(collected.runs);
        events.sort_by(|a, b| a.0.cmp(&b.0));
        let mut ledger = collected.ledger;
        ledger.sort_by(|a, b| a.0.cmp(&b.0));
        let perf = perf::snapshot();
        let report = ObsReport {
            events,
            ledger,
            metrics: metrics::snapshot(),
            profiling: perf.flatten(),
            perf,
        };
        metrics::reset_global();
        perf::reset_global();
        report
        // `self._lock` releases here, letting the next session install.
    }
}

fn disarm() {
    TRACE_ACTIVE.store(false, Ordering::Relaxed);
    METRICS_ACTIVE.store(false, Ordering::Relaxed);
    LEDGER_ACTIVE.store(false, Ordering::Relaxed);
    CONSOLE_LEVEL.store(0, Ordering::Relaxed);
    perf::set_active(false);
}

impl Drop for Session {
    fn drop(&mut self) {
        disarm();
        *lock_collected() = Collected::default();
        metrics::reset_global();
        perf::reset_global();
    }
}

/// Everything one session collected, ready to serialise.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Run buffers sorted by run key (root buffer first, empty key).
    /// Within a buffer, events are in emission order.
    pub events: Vec<(String, Vec<Event>)>,
    /// Energy-attribution entries sorted by run key.
    pub ledger: Vec<(String, LedgerEntry)>,
    /// Deterministic metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Flat per-stage wall-clock profile, keyed by call-tree path (not
    /// reproducible; never in traces). Derived from [`ObsReport::perf`].
    pub profiling: ProfileSnapshot,
    /// Hierarchical wall-clock call tree with profiler counters (not
    /// reproducible; never in traces).
    pub perf: PerfSnapshot,
}

impl ObsReport {
    /// Total number of collected trace events.
    pub fn event_count(&self) -> usize {
        self.events.iter().map(|(_, evs)| evs.len()).sum()
    }

    /// The full deterministic JSONL trace (one event per line, run
    /// buffers concatenated in key order).
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for (_, events) in &self.events {
            for ev in events {
                out.push_str(&ev.to_jsonl());
                out.push('\n');
            }
        }
        out
    }

    /// Write [`ObsReport::trace_jsonl`] to `path`, creating parent
    /// directories on demand.
    pub fn write_trace_jsonl(&self, path: &Path) -> io::Result<()> {
        write_with_context(path, &self.trace_jsonl())
    }

    /// The deterministic energy-attribution JSONL (one migration per
    /// line, entries in run-key order).
    pub fn ledger_jsonl(&self) -> String {
        let mut out = String::new();
        for (key, entry) in &self.ledger {
            out.push_str(&entry.to_jsonl(key));
            out.push('\n');
        }
        out
    }

    /// Write [`ObsReport::ledger_jsonl`] to `path`, creating parent
    /// directories on demand.
    pub fn write_ledger_jsonl(&self, path: &Path) -> io::Result<()> {
        write_with_context(path, &self.ledger_jsonl())
    }

    /// Write the metrics snapshot (plus the profiling section) as a JSON
    /// document to `path`, creating parent directories on demand.
    ///
    /// Layout: `{"counters":{…},"gauges":{…},"histograms":{…},
    /// "profiling":{…}}`. Counters/histograms are seed-deterministic;
    /// gauges may carry wall-clock data and `profiling` always does.
    pub fn write_metrics_json(&self, path: &Path) -> io::Result<()> {
        write_with_context(path, &self.metrics_json())
    }

    /// The JSON document written by [`ObsReport::write_metrics_json`].
    pub fn metrics_json(&self) -> String {
        use serde::{Serialize, Value};
        // The metrics snapshot keeps its own serde schema (and round-trip);
        // the file adds the wall-clock profiling appendix alongside it.
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let mut root = match self.metrics.to_value() {
            Value::Object(pairs) => pairs,
            other => vec![("metrics".to_string(), other)],
        };
        root.push(("profiling".to_string(), self.profiling.to_value()));
        serde_json::to_string(&Raw(Value::Object(root))).expect("metrics snapshot serialises")
    }
}

fn write_with_context(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| annotate(parent, e))?;
        }
    }
    let mut f = std::fs::File::create(path).map_err(|e| annotate(path, e))?;
    f.write_all(contents.as_bytes())
        .map_err(|e| annotate(path, e))
}

fn annotate(path: &Path, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_simkit::SimTime;

    #[test]
    fn metrics_session_records_and_finish_disarms() {
        let session = Session::install(ObsConfig {
            metrics: true,
            ..ObsConfig::default()
        });
        crate::metrics::counter_add("session.test", 3);
        let report = session.finish();
        assert_eq!(report.metrics.counters["session.test"], 3);
        // Disarmed: later increments are dropped and the registry is clean.
        crate::metrics::counter_add("session.test", 5);
        assert!(crate::metrics::snapshot().counters.is_empty());
    }

    #[test]
    fn metrics_json_has_metrics_and_profiling_sections() {
        let session = Session::install(ObsConfig {
            metrics: true,
            profiling: true,
            ..ObsConfig::default()
        });
        crate::metrics::counter_add("migration.runs", 2);
        {
            let _t = crate::perf::scope("unit.stage");
        }
        let report = session.finish();
        let json = report.metrics_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"migration.runs\":2"));
        assert!(json.contains("\"profiling\""));
        assert!(json.contains("\"unit.stage\""));
    }

    #[test]
    fn trace_files_are_written_with_parent_dirs() {
        let session = Session::install(ObsConfig {
            trace: true,
            ..ObsConfig::default()
        });
        crate::event!(Level::Info, "t", "io.test", SimTime::ZERO, "ok" => true);
        let report = session.finish();
        let dir = std::env::temp_dir().join(format!("wavm3-obs-test-{}", std::process::id()));
        let path = dir.join("deep/nested/trace.jsonl");
        report.write_trace_jsonl(&path).expect("write trace");
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("io.test"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_errors_carry_the_path() {
        let report = ObsReport {
            events: Vec::new(),
            ledger: Vec::new(),
            metrics: MetricsSnapshot::default(),
            profiling: ProfileSnapshot::default(),
            perf: PerfSnapshot::default(),
        };
        let err = report
            .write_trace_jsonl(Path::new("/dev/null/not-a-dir/x.jsonl"))
            .expect_err("cannot create a directory under /dev/null");
        assert!(err.to_string().contains("not-a-dir"));
    }
}
