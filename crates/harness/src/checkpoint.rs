//! Per-scenario result journaling with verification and quarantine.
//!
//! A campaign directory holds one `.ckpt` file per completed scenario.
//! Each file is two lines:
//!
//! ```text
//! {"magic":"wavm3-checkpoint","version":1,"key":"...","fingerprint":"...","checksum":"..."}
//! <payload — typically serde_json of the scenario's records>
//! ```
//!
//! The header's **checksum** (FNV-1a 64 over the payload bytes) catches
//! torn or bit-rotted files; the **fingerprint** (caller-supplied, hashed
//! over the runner config + scenario identity) catches files written by
//! a *different* campaign — other seed, other repetition policy, other
//! fault mix — whose records would silently break determinism if merged.
//! Anything that fails verification is renamed to `*.quarantined` (the
//! evidence survives for debugging) and reported so the scenario is
//! recomputed from its deterministic seed.

use crate::error::Wavm3Error;
use crate::fsx::write_atomic_str;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// File-format magic; a header with anything else is foreign.
pub const CHECKPOINT_MAGIC: &str = "wavm3-checkpoint";
/// Format version; bumped on incompatible payload changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// FNV-1a 64-bit over `bytes` — the same cheap, dependency-free hash the
/// runner already uses for scenario-id seed scoping.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash an ordered list of identity parts into a hex fingerprint. Parts
/// are length-prefixed so `["ab","c"]` and `["a","bc"]` differ.
pub fn fingerprint_of(parts: &[&str]) -> String {
    let mut joined = Vec::new();
    for p in parts {
        joined.extend_from_slice(p.len().to_le_bytes().as_slice());
        joined.extend_from_slice(p.as_bytes());
    }
    format!("{:016x}", fnv1a64(&joined))
}

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    key: String,
    fingerprint: String,
    checksum: String,
}

/// Outcome of a checkpoint lookup.
#[derive(Debug)]
pub enum CheckpointLoad {
    /// No checkpoint for this key (or resume is off).
    Missing,
    /// Verified payload — safe to merge.
    Valid(String),
    /// A file existed but failed verification; it has been renamed to
    /// `*.quarantined` and the scenario must be recomputed.
    Quarantined {
        /// Where the evidence now lives.
        path: PathBuf,
        /// Human-readable verification failure.
        reason: String,
    },
}

/// A campaign checkpoint directory.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    resume: bool,
}

impl CheckpointStore {
    /// Open (creating if needed) the campaign directory. With `resume`
    /// false, existing checkpoints are ignored by [`CheckpointStore::load`]
    /// — the campaign starts fresh but still journals as it goes.
    pub fn open(dir: impl Into<PathBuf>, resume: bool) -> Result<Self, Wavm3Error> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| Wavm3Error::io_at(&dir, e))?;
        Ok(CheckpointStore { dir, resume })
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether `load` consults existing files.
    pub fn resume(&self) -> bool {
        self.resume
    }

    /// Deterministic per-key file path: a sanitised slug for human
    /// `ls`-ability plus the key's full hash for collision freedom.
    pub fn path_for(&self, key: &str) -> PathBuf {
        let slug: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(80)
            .collect();
        self.dir
            .join(format!("{slug}-{:016x}.ckpt", fnv1a64(key.as_bytes())))
    }

    /// Journal `payload` for `key` atomically under `fingerprint`.
    pub fn save(&self, key: &str, fingerprint: &str, payload: &str) -> Result<(), Wavm3Error> {
        let _perf = wavm3_obs::perf::scope("harness.checkpoint.save");
        let header = Header {
            magic: CHECKPOINT_MAGIC.to_string(),
            version: CHECKPOINT_VERSION,
            key: key.to_string(),
            fingerprint: fingerprint.to_string(),
            checksum: format!("{:016x}", fnv1a64(payload.as_bytes())),
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| Wavm3Error::serde("checkpoint header", e))?;
        let doc = format!("{header_json}\n{payload}");
        write_atomic_str(&self.path_for(key), &doc)?;
        wavm3_obs::metrics::counter_add("harness.checkpoint.saved", 1);
        Ok(())
    }

    /// Look up `key`, verifying magic, version, key, fingerprint and
    /// checksum. Invalid files are quarantined, never deleted. Only I/O
    /// trouble (other than a missing file) is an `Err`.
    pub fn load(&self, key: &str, fingerprint: &str) -> Result<CheckpointLoad, Wavm3Error> {
        if !self.resume {
            return Ok(CheckpointLoad::Missing);
        }
        let _perf = wavm3_obs::perf::scope("harness.checkpoint.load");
        let path = self.path_for(key);
        let raw = match fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(CheckpointLoad::Missing)
            }
            Err(e) => return Err(Wavm3Error::io_at(&path, e)),
        };
        match Self::verify(&raw, key, fingerprint) {
            Ok(payload) => {
                wavm3_obs::metrics::counter_add("harness.checkpoint.loaded", 1);
                Ok(CheckpointLoad::Valid(payload))
            }
            Err(reason) => {
                let to = self.quarantine(&path, &reason)?;
                Ok(CheckpointLoad::Quarantined { path: to, reason })
            }
        }
    }

    /// Rename a bad checkpoint to `*.quarantined` so the evidence
    /// survives while the key reads as missing from now on. Public so a
    /// caller that finds a *payload*-level problem (e.g. records that no
    /// longer deserialise) can retire the file through the same path.
    pub fn quarantine(&self, path: &Path, reason: &str) -> Result<PathBuf, Wavm3Error> {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".quarantined");
        let to = path.with_file_name(name);
        fs::rename(path, &to).map_err(|e| Wavm3Error::io_at(path, e))?;
        wavm3_obs::metrics::counter_add("harness.checkpoint.quarantined", 1);
        eprintln!(
            "warning: quarantined checkpoint {} ({reason})",
            to.display()
        );
        Ok(to)
    }

    fn verify(raw: &str, key: &str, fingerprint: &str) -> Result<String, String> {
        let (header_line, payload) = raw
            .split_once('\n')
            .ok_or_else(|| "missing payload line".to_string())?;
        let header: Header =
            serde_json::from_str(header_line).map_err(|e| format!("unparsable header: {e}"))?;
        if header.magic != CHECKPOINT_MAGIC {
            return Err(format!("bad magic {:?}", header.magic));
        }
        if header.version != CHECKPOINT_VERSION {
            return Err(format!(
                "version {} (this build reads {CHECKPOINT_VERSION})",
                header.version
            ));
        }
        if header.key != key {
            return Err(format!("key {:?} does not match {key:?}", header.key));
        }
        if header.fingerprint != fingerprint {
            return Err(format!(
                "fingerprint {} does not match campaign fingerprint {fingerprint}",
                header.fingerprint
            ));
        }
        let checksum = format!("{:016x}", fnv1a64(payload.as_bytes()));
        if header.checksum != checksum {
            return Err(format!(
                "checksum {} does not match payload ({checksum})",
                header.checksum
            ));
        }
        Ok(payload.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str, resume: bool) -> CheckpointStore {
        let d = std::env::temp_dir().join(format!("wavm3-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        CheckpointStore::open(d, resume).expect("open store")
    }

    #[test]
    fn roundtrip() {
        let s = store("roundtrip", true);
        s.save("fam/live/m/0 VM", "fp01", "[1,2,3]").unwrap();
        match s.load("fam/live/m/0 VM", "fp01").unwrap() {
            CheckpointLoad::Valid(p) => assert_eq!(p, "[1,2,3]"),
            other => panic!("expected valid, got {other:?}"),
        }
        assert!(matches!(
            s.load("fam/live/m/1 VM", "fp01").unwrap(),
            CheckpointLoad::Missing
        ));
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn resume_off_ignores_existing_files() {
        let s = store("noresume", true);
        s.save("k", "fp", "x").unwrap();
        let fresh = CheckpointStore::open(s.dir(), false).unwrap();
        assert!(matches!(
            fresh.load("k", "fp").unwrap(),
            CheckpointLoad::Missing
        ));
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn corruption_is_quarantined() {
        let s = store("corrupt", true);
        s.save("k", "fp", "payload-bytes").unwrap();
        let path = s.path_for("k");
        let mut raw = fs::read_to_string(&path).unwrap();
        raw = raw.replace("payload-bytes", "payload-bytez");
        fs::write(&path, raw).unwrap();
        match s.load("k", "fp").unwrap() {
            CheckpointLoad::Quarantined { path: q, reason } => {
                assert!(reason.contains("checksum"), "{reason}");
                assert!(q.to_string_lossy().ends_with(".quarantined"));
                assert!(q.exists(), "evidence must survive");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The key now reads as missing: the scenario will be recomputed.
        assert!(matches!(
            s.load("k", "fp").unwrap(),
            CheckpointLoad::Missing
        ));
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_quarantined() {
        let s = store("fp", true);
        s.save("k", "fp-old-seed", "x").unwrap();
        match s.load("k", "fp-new-seed").unwrap() {
            CheckpointLoad::Quarantined { reason, .. } => {
                assert!(reason.contains("fingerprint"), "{reason}")
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn fingerprints_are_order_and_boundary_sensitive() {
        assert_ne!(fingerprint_of(&["ab", "c"]), fingerprint_of(&["a", "bc"]));
        assert_ne!(fingerprint_of(&["a", "b"]), fingerprint_of(&["b", "a"]));
        assert_eq!(fingerprint_of(&["a", "b"]), fingerprint_of(&["a", "b"]));
    }

    #[test]
    fn distinct_keys_do_not_collide_on_disk() {
        let s = store("keys", true);
        // Same sanitised slug, different raw keys.
        assert_ne!(s.path_for("a/b"), s.path_for("a.b"));
        fs::remove_dir_all(s.dir()).ok();
    }
}
