//! # wavm3-harness — crash-safe campaign supervision
//!
//! The paper's repetition protocol (§V-B) makes a full reproduction a
//! long-running batch job; this crate supplies the primitives that turn
//! that job into a restartable, supervised one:
//!
//! * [`Wavm3Error`] — the workspace error taxonomy (hand-rolled
//!   `thiserror`-style enum) plus the `ensure_*` validation guards used
//!   by the `validate()` methods across `faults` / `migration` /
//!   `experiments`;
//! * [`write_atomic`] — tmp + fsync + rename file writes that never
//!   expose a truncated artefact;
//! * [`CheckpointStore`] — per-scenario result journaling with a
//!   checksum + runner/seed fingerprint header, verification on load,
//!   and quarantine (never deletion) of anything that fails it;
//! * [`run_isolated`] — `catch_unwind` panic isolation so one poisoned
//!   scenario becomes a recorded failure instead of tearing down the
//!   rayon pool;
//! * [`Budget`] / [`BudgetTracker`] — per-scenario wall-clock and
//!   sim-time deadlines with graceful degradation.
//!
//! The crate is deliberately low in the dependency graph (only simkit,
//! obs and serde) so `faults`, `migration` and `experiments` can all
//! speak the same error spine; the campaign-level glue that knows about
//! scenarios and datasets lives in `wavm3-experiments::campaign`.

pub mod checkpoint;
pub mod error;
pub mod fsx;
pub mod signal;
pub mod supervisor;

pub use checkpoint::{
    fingerprint_of, fnv1a64, CheckpointLoad, CheckpointStore, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use error::{
    ensure_finite, ensure_non_negative, ensure_ordered, ensure_probability, Wavm3Error,
};
pub use fsx::{write_atomic, write_atomic_str};
pub use supervisor::{
    panic_message, run_isolated, run_isolated_with, Budget, BudgetKind, BudgetTracker,
};
