//! Panic isolation and deadline supervision.
//!
//! [`run_isolated`] turns a panic in one unit of work into a value the
//! campaign can record and route around — essential under rayon, where
//! an uncaught worker panic propagates at the scope join and tears down
//! every sibling scenario with it. [`BudgetTracker`] implements graceful
//! degradation for long campaigns: per-scenario wall-clock and sim-time
//! budgets that cut the variance rule short instead of dropping results.

use crate::error::Wavm3Error;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use wavm3_simkit::SimDuration;

/// Extract the human message from a panic payload (`&str` / `String`
/// payloads cover `panic!`, `assert!`, `unwrap`, `expect`).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, converting a panic into [`Wavm3Error::ScenarioPanicked`]
/// labelled with `context`. The closure is wrapped in
/// [`AssertUnwindSafe`]: callers hand in freshly-scoped state (the
/// deterministic RNG scope rebuilds everything from seeds), so no
/// broken invariant outlives the failed call.
pub fn run_isolated<T>(context: &str, f: impl FnOnce() -> T) -> Result<T, Wavm3Error> {
    run_isolated_with(|| context.to_string(), f)
}

/// [`run_isolated`] with a lazily-built context label: the closure is
/// only evaluated on the panic path, so hot loops pay nothing for the
/// `format!` that names the failing unit of work.
pub fn run_isolated_with<T>(
    context: impl FnOnce() -> String,
    f: impl FnOnce() -> T,
) -> Result<T, Wavm3Error> {
    let _perf = wavm3_obs::perf::scope("harness.isolated");
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            wavm3_obs::metrics::counter_add("harness.panics_isolated", 1);
            Err(Wavm3Error::ScenarioPanicked {
                context: context(),
                message: panic_message(payload.as_ref()),
            })
        }
    }
}

/// Per-scenario execution budget. `None` fields are unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budget {
    /// Wall-clock ceiling.
    pub wall: Option<Duration>,
    /// Simulated-time ceiling (accumulated across repetitions).
    pub sim: Option<SimDuration>,
}

impl Budget {
    /// No limits at all.
    pub const UNLIMITED: Budget = Budget {
        wall: None,
        sim: None,
    };

    /// `true` when neither ceiling is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.sim.is_none()
    }
}

/// Which ceiling was hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetKind {
    /// The wall-clock ceiling.
    Wall,
    /// The sim-time ceiling.
    Sim,
}

/// Tracks spend against a [`Budget`]. Wall clock is measured from
/// construction; sim time is charged explicitly by the caller after
/// each repetition.
#[derive(Debug)]
pub struct BudgetTracker {
    budget: Budget,
    started: Instant,
    sim_spent: SimDuration,
}

impl BudgetTracker {
    /// Start the wall clock now.
    pub fn start(budget: Budget) -> Self {
        BudgetTracker {
            budget,
            started: Instant::now(),
            sim_spent: SimDuration::ZERO,
        }
    }

    /// Charge simulated time spent by one repetition.
    pub fn charge_sim(&mut self, spent: SimDuration) {
        self.sim_spent += spent;
    }

    /// Simulated time charged so far.
    pub fn sim_spent(&self) -> SimDuration {
        self.sim_spent
    }

    /// `Some(kind)` once a ceiling is reached. Sim exhaustion is
    /// reported in preference to wall exhaustion because it is
    /// deterministic — a budget of zero truncates identically on every
    /// machine, which is what the resume tests rely on.
    pub fn exhausted(&self) -> Option<BudgetKind> {
        if let Some(cap) = self.budget.sim {
            if self.sim_spent >= cap {
                return Some(BudgetKind::Sim);
            }
        }
        if let Some(cap) = self.budget.wall {
            if self.started.elapsed() >= cap {
                return Some(BudgetKind::Wall);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolates_panics_with_their_message() {
        let ok = run_isolated("fine", || 41 + 1);
        assert_eq!(ok.unwrap(), 42);

        let err = run_isolated("boom-scope", || -> i32 { panic!("exploded at rep 3") });
        match err.unwrap_err() {
            Wavm3Error::ScenarioPanicked { context, message } => {
                assert_eq!(context, "boom-scope");
                assert_eq!(message, "exploded at rep 3");
            }
            other => panic!("wrong variant: {other}"),
        }
    }

    #[test]
    fn captures_formatted_panic_payloads() {
        let err = run_isolated("fmt", || panic!("bad value {}", 7)).unwrap_err();
        assert!(err.to_string().contains("bad value 7"), "{err}");
    }

    #[test]
    fn sim_budget_is_deterministic() {
        let budget = Budget {
            wall: None,
            sim: Some(SimDuration::from_secs(100)),
        };
        let mut t = BudgetTracker::start(budget);
        assert_eq!(t.exhausted(), None);
        t.charge_sim(SimDuration::from_secs(60));
        assert_eq!(t.exhausted(), None);
        t.charge_sim(SimDuration::from_secs(40));
        assert_eq!(t.exhausted(), Some(BudgetKind::Sim));
    }

    #[test]
    fn zero_sim_budget_exhausts_immediately() {
        let t = BudgetTracker::start(Budget {
            wall: None,
            sim: Some(SimDuration::ZERO),
        });
        assert_eq!(t.exhausted(), Some(BudgetKind::Sim));
        assert!(Budget::UNLIMITED.is_unlimited());
    }

    #[test]
    fn zero_wall_budget_exhausts() {
        let t = BudgetTracker::start(Budget {
            wall: Some(Duration::ZERO),
            sim: None,
        });
        assert_eq!(t.exhausted(), Some(BudgetKind::Wall));
    }
}
