//! The workspace error taxonomy.
//!
//! One spine type, [`Wavm3Error`], replaces the ad-hoc `String` and
//! `Box<dyn Error>` plumbing of the experiment binaries. The variants
//! are the failure classes a long campaign actually hits: invalid
//! configuration (caught at construction by the `validate()` family),
//! I/O annotated with the offending path, checkpoint corruption or
//! fingerprint drift, panicking scenarios, and model-training
//! shortfalls. The crate has no proc-macro dependency, so the `Display`
//! / `Error` impls are written out by hand in the same one-line-per-
//! variant style `thiserror` would generate.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Every way a WAVM3 campaign can fail, as one matchable enum.
#[derive(Debug)]
pub enum Wavm3Error {
    /// A configuration field failed `validate()`: NaN, non-finite,
    /// negative bandwidth, inverted interval, ...
    InvalidConfig {
        /// Dotted path of the rejected field (e.g. `faults.link.min_factor`).
        field: String,
        /// Why it was rejected, with the offending value.
        reason: String,
    },
    /// An I/O operation failed; `path` is what was being touched.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A checkpoint file exists but cannot be trusted (bad magic, bad
    /// checksum, unparsable header or payload). It has been quarantined.
    CheckpointCorrupt {
        /// The quarantined file.
        path: PathBuf,
        /// What failed to verify.
        reason: String,
    },
    /// A checkpoint verifies but was written under a different runner /
    /// seed fingerprint, so replaying it would break determinism.
    CheckpointMismatch {
        /// The quarantined file.
        path: PathBuf,
        /// Fingerprint the current campaign expects.
        expected: String,
        /// Fingerprint found in the header.
        found: String,
    },
    /// (De)serialisation of a campaign artefact failed.
    Serde {
        /// What was being encoded or decoded.
        context: String,
        /// The serde error text.
        reason: String,
    },
    /// A scenario panicked under the supervisor.
    ScenarioPanicked {
        /// The isolation label (scenario id or similar).
        context: String,
        /// The captured panic message.
        message: String,
    },
    /// Model training could not proceed (too few readings/runs).
    Training {
        /// Which training stage starved.
        context: String,
    },
    /// A runtime input (not a config field) was rejected.
    InvalidInput {
        /// Where the input was rejected.
        context: String,
        /// Why.
        reason: String,
    },
    /// A result-level acceptance check failed (e.g. a paper ordering that
    /// must hold under every seed).
    CheckFailed {
        /// What was being checked and how it failed.
        context: String,
    },
    /// A request or operation blew through its deadline (serving-path
    /// taxonomy: the work may have been abandoned mid-flight).
    DeadlineExceeded {
        /// What was being served or computed.
        context: String,
        /// The deadline that was breached, in milliseconds.
        deadline_ms: u64,
    },
    /// Work was shed because a bounded queue or admission limit was full
    /// — the load-shedding path, distinct from a runtime failure: the
    /// caller should back off and retry.
    Overloaded {
        /// Which queue or limiter shed the work.
        context: String,
    },
}

impl Wavm3Error {
    /// An [`Wavm3Error::InvalidConfig`] with formatted parts.
    pub fn invalid_config(field: impl Into<String>, reason: impl fmt::Display) -> Self {
        Wavm3Error::InvalidConfig {
            field: field.into(),
            reason: reason.to_string(),
        }
    }

    /// An [`Wavm3Error::Io`] annotated with `path`.
    pub fn io_at(path: impl AsRef<Path>, source: io::Error) -> Self {
        Wavm3Error::Io {
            path: path.as_ref().to_path_buf(),
            source,
        }
    }

    /// An [`Wavm3Error::Training`] for `context`.
    pub fn training(context: impl Into<String>) -> Self {
        Wavm3Error::Training {
            context: context.into(),
        }
    }

    /// An [`Wavm3Error::InvalidInput`] with formatted parts.
    pub fn invalid_input(context: impl Into<String>, reason: impl fmt::Display) -> Self {
        Wavm3Error::InvalidInput {
            context: context.into(),
            reason: reason.to_string(),
        }
    }

    /// An [`Wavm3Error::CheckFailed`] for `context`.
    pub fn check_failed(context: impl Into<String>) -> Self {
        Wavm3Error::CheckFailed {
            context: context.into(),
        }
    }

    /// An [`Wavm3Error::DeadlineExceeded`] for `context`.
    pub fn deadline_exceeded(context: impl Into<String>, deadline_ms: u64) -> Self {
        Wavm3Error::DeadlineExceeded {
            context: context.into(),
            deadline_ms,
        }
    }

    /// An [`Wavm3Error::Overloaded`] for `context`.
    pub fn overloaded(context: impl Into<String>) -> Self {
        Wavm3Error::Overloaded {
            context: context.into(),
        }
    }

    /// `true` for the load-dependent, retry-worthy variants — the ones a
    /// server maps to 429/503 rather than 500, and a client answers with
    /// backoff instead of giving up.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Wavm3Error::DeadlineExceeded { .. } | Wavm3Error::Overloaded { .. }
        )
    }

    /// An [`Wavm3Error::Serde`] with formatted parts.
    pub fn serde(context: impl Into<String>, reason: impl fmt::Display) -> Self {
        Wavm3Error::Serde {
            context: context.into(),
            reason: reason.to_string(),
        }
    }

    /// `true` for the configuration-rejection variants — the ones a CLI
    /// maps to a usage-style exit code instead of a runtime failure.
    pub fn is_config_error(&self) -> bool {
        matches!(
            self,
            Wavm3Error::InvalidConfig { .. } | Wavm3Error::InvalidInput { .. }
        )
    }
}

impl fmt::Display for Wavm3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wavm3Error::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            Wavm3Error::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Wavm3Error::CheckpointCorrupt { path, reason } => {
                write!(f, "corrupt checkpoint {}: {reason}", path.display())
            }
            Wavm3Error::CheckpointMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint fingerprint mismatch {}: expected {expected}, found {found}",
                path.display()
            ),
            Wavm3Error::Serde { context, reason } => write!(f, "{context}: {reason}"),
            Wavm3Error::ScenarioPanicked { context, message } => {
                write!(f, "scenario panicked: {context}: {message}")
            }
            Wavm3Error::Training { context } => {
                write!(f, "training failed: {context}: too few readings")
            }
            Wavm3Error::InvalidInput { context, reason } => write!(f, "{context}: {reason}"),
            Wavm3Error::CheckFailed { context } => write!(f, "check failed: {context}"),
            Wavm3Error::DeadlineExceeded {
                context,
                deadline_ms,
            } => write!(f, "deadline exceeded: {context}: {deadline_ms} ms"),
            Wavm3Error::Overloaded { context } => {
                write!(f, "overloaded: {context}: request shed, retry later")
            }
        }
    }
}

impl std::error::Error for Wavm3Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Wavm3Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for Wavm3Error {
    fn from(e: serde_json::Error) -> Self {
        Wavm3Error::serde("serde_json", e)
    }
}

/// Validate that `value` is finite, returning an
/// [`Wavm3Error::InvalidConfig`] naming `field` otherwise.
pub fn ensure_finite(field: &str, value: f64) -> Result<(), Wavm3Error> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(Wavm3Error::invalid_config(
            field,
            format!("must be finite, got {value}"),
        ))
    }
}

/// Validate that `value` is a finite probability in `[0, 1]`.
pub fn ensure_probability(field: &str, value: f64) -> Result<(), Wavm3Error> {
    ensure_finite(field, value)?;
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(Wavm3Error::invalid_config(
            field,
            format!("probability must lie in [0, 1], got {value}"),
        ))
    }
}

/// Validate that `value` is finite and non-negative.
pub fn ensure_non_negative(field: &str, value: f64) -> Result<(), Wavm3Error> {
    ensure_finite(field, value)?;
    if value >= 0.0 {
        Ok(())
    } else {
        Err(Wavm3Error::invalid_config(
            field,
            format!("must be non-negative, got {value}"),
        ))
    }
}

/// Validate an ordered pair `lo <= hi` (inverted-interval rejection),
/// naming both fields in the error.
pub fn ensure_ordered<T: PartialOrd + fmt::Debug>(
    lo_field: &str,
    lo: T,
    hi_field: &str,
    hi: T,
) -> Result<(), Wavm3Error> {
    if lo <= hi {
        Ok(())
    } else {
        Err(Wavm3Error::invalid_config(
            lo_field,
            format!("must not exceed {hi_field} ({lo:?} > {hi:?})"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Wavm3Error::invalid_config("faults.link.min_factor", "must be finite, got NaN");
        assert_eq!(
            e.to_string(),
            "invalid config: faults.link.min_factor: must be finite, got NaN"
        );
        assert!(e.is_config_error());

        let e = Wavm3Error::io_at("/tmp/x", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("/tmp/x"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.is_config_error());
    }

    #[test]
    fn serving_variants_classify_as_retryable_not_config() {
        let e = Wavm3Error::deadline_exceeded("serve./plan", 250);
        assert_eq!(e.to_string(), "deadline exceeded: serve./plan: 250 ms");
        assert!(e.is_retryable());
        assert!(!e.is_config_error());

        let e = Wavm3Error::overloaded("serve.admission_queue");
        assert!(e.to_string().contains("retry later"), "{e}");
        assert!(e.is_retryable());
        assert!(!e.is_config_error());

        // Config rejections are not retryable: resending the same bad
        // request can never succeed.
        assert!(!Wavm3Error::invalid_config("f", "bad").is_retryable());
        assert!(!Wavm3Error::check_failed("c").is_retryable());
    }

    #[test]
    fn numeric_guards() {
        assert!(ensure_finite("f", 1.0).is_ok());
        assert!(ensure_finite("f", f64::NAN).is_err());
        assert!(ensure_finite("f", f64::INFINITY).is_err());
        assert!(ensure_probability("p", 0.5).is_ok());
        assert!(ensure_probability("p", -0.1).is_err());
        assert!(ensure_probability("p", 1.1).is_err());
        assert!(ensure_non_negative("n", 0.0).is_ok());
        assert!(ensure_non_negative("n", -1e-9).is_err());
        assert!(ensure_ordered("lo", 1.0, "hi", 2.0).is_ok());
        let err = ensure_ordered("lo", 3.0, "hi", 2.0).unwrap_err();
        assert!(err.to_string().contains("lo"), "{err}");
        assert!(err.to_string().contains("hi"), "{err}");
    }
}
