//! Interrupt-aware campaigns: SIGINT/SIGTERM as graceful partial success.
//!
//! The default disposition for both signals is immediate process death —
//! no campaign report, no exit-code distinction from a crash, and any
//! artefact being written at that instant is torn mid-byte. A supervised
//! campaign can do better: [`install`] replaces the disposition with a
//! flag-setting handler, the campaign polls [`interrupted`] between
//! scenarios and skips the remainder (recording them as failures), and
//! the CLI layer maps the whole run to the partial-success exit code 3
//! with an `interrupted by SIGTERM` entry in `campaign-report.json` —
//! the same contract as a scenario that panicked under supervision.
//!
//! The handler is async-signal-safe: it stores one relaxed atomic and
//! returns. Everything else (reporting, draining, exiting) happens on
//! the normal control path. A second signal while the first is still
//! draining re-runs the same store, so repeated Ctrl-C never escalates
//! to an unclean death — callers who want that behaviour can restore
//! `SIG_DFL` themselves.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which signal fired, encoded for the handler's single atomic store.
const NONE: u8 = 0;
const INT: u8 = 1;
const TERM: u8 = 2;

static INTERRUPT: AtomicU8 = AtomicU8::new(NONE);

#[cfg(unix)]
mod sys {
    use super::{Ordering, INT, INTERRUPT, TERM};

    // Bind the C library's `signal(2)` directly: the platform libc is
    // already linked into every Rust binary, so this adds no dependency
    // — exactly the vendor-free discipline the workspace uses elsewhere.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        let kind = if signum == SIGTERM { TERM } else { INT };
        INTERRUPT.store(kind, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; `signal` itself is safe to call from the
        // main control path.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// Non-unix targets keep the default disposition; the flag can still
    /// be raised through [`super::raise_for_tests`].
    pub(super) fn install() {}
}

/// Install the SIGINT/SIGTERM flag handlers (idempotent; later installs
/// are harmless re-registrations of the same handler).
pub fn install() {
    sys::install();
}

/// `true` once an interrupt signal has been observed.
pub fn interrupted() -> bool {
    INTERRUPT.load(Ordering::Relaxed) != NONE
}

/// The human name of the observed signal, if any.
pub fn interrupted_by() -> Option<&'static str> {
    match INTERRUPT.load(Ordering::Relaxed) {
        INT => Some("SIGINT"),
        TERM => Some("SIGTERM"),
        _ => None,
    }
}

/// Test hook: raise the flag as if `sigterm`-vs-`sigint` had fired.
/// Process-global — tests using it must run in their own process (a
/// dedicated integration-test binary) or clear it when done.
pub fn raise_for_tests(term: bool) {
    INTERRUPT.store(if term { TERM } else { INT }, Ordering::Relaxed);
}

/// Test hook: lower the flag again.
pub fn clear_for_tests() {
    INTERRUPT.store(NONE, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        // Serialise against any other test touching the global flag by
        // doing the full cycle in one test.
        clear_for_tests();
        assert!(!interrupted());
        assert_eq!(interrupted_by(), None);
        raise_for_tests(false);
        assert!(interrupted());
        assert_eq!(interrupted_by(), Some("SIGINT"));
        raise_for_tests(true);
        assert_eq!(interrupted_by(), Some("SIGTERM"));
        clear_for_tests();
        assert!(!interrupted());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
        assert!(!interrupted(), "installation alone never raises the flag");
    }
}
