//! Crash-safe file writes: tmp file + fsync + rename.
//!
//! A plain `std::fs::write` interrupted mid-way leaves a truncated file
//! that later readers (golden checks, resume logic) happily parse as
//! valid-but-wrong data. [`write_atomic`] never exposes a partial file:
//! the contents land in a hidden sibling first, are fsync'd, and only
//! then renamed over the destination — rename within one directory is
//! atomic on POSIX. The parent directory is fsync'd afterwards so the
//! rename itself survives a power cut.

use crate::error::Wavm3Error;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers within one process (rayon workers
/// checkpointing different scenarios into the same directory).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` atomically, creating missing parent
/// directories. On any failure the temporary file is cleaned up and the
/// error is annotated with the offending path; `path` itself is either
/// untouched or fully written, never truncated.
pub fn write_atomic(path: &Path, contents: &[u8]) -> Result<(), Wavm3Error> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p).map_err(|e| Wavm3Error::io_at(p, e))?;
            Some(p)
        }
        _ => None,
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            Wavm3Error::io_at(
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name"),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));

    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        Ok(())
    };
    if let Err(e) = write() {
        let _ = fs::remove_file(&tmp);
        return Err(Wavm3Error::io_at(&tmp, e));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(Wavm3Error::io_at(path, e));
    }
    // Persist the rename itself. Directory fsync is advisory on some
    // filesystems, so failures here are not fatal to the write.
    if let Some(parent) = parent {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// String-convenience wrapper over [`write_atomic`].
pub fn write_atomic_str(path: &Path, contents: &str) -> Result<(), Wavm3Error> {
    write_atomic(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("wavm3-fsx-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_and_creates_parents() {
        let dir = tmp_dir("parents");
        let path = dir.join("a/b/out.txt");
        write_atomic_str(&path, "hello").expect("atomic write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello");
        // Overwrite is atomic too.
        write_atomic_str(&path, "world").expect("overwrite");
        assert_eq!(fs::read_to_string(&path).unwrap(), "world");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_tmp_droppings() {
        let dir = tmp_dir("clean");
        let path = dir.join("out.txt");
        write_atomic_str(&path, "x").unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.txt".to_string()], "{names:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_annotated_with_the_path() {
        let err = write_atomic_str(Path::new("/dev/null/not-a-dir/x.txt"), "x")
            .expect_err("cannot create dirs under /dev/null");
        assert!(err.to_string().contains("not-a-dir"), "{err}");
    }
}
