//! `validate()` bug-proofing: descriptive rejections for inverted or
//! non-finite configurations, and the property that any config accepted
//! by `validate()` can never panic the planner.

use proptest::prelude::*;
use wavm3_faults::{
    AbortFault, FaultConfig, FaultPlan, LinkFaultConfig, NonConvergenceFault, RetryPolicy,
};
use wavm3_simkit::{RngFactory, SimDuration, SimTime};

#[test]
fn inverted_factor_range_is_rejected_with_both_field_names() {
    let cfg = FaultConfig {
        link: LinkFaultConfig {
            mean_windows: 1.0,
            min_factor: 0.8,
            max_factor: 0.2,
            ..LinkFaultConfig::default()
        },
        ..FaultConfig::default()
    };
    let err = cfg.validate().expect_err("min_factor > max_factor");
    let msg = err.to_string();
    assert!(msg.contains("min_factor"), "{msg}");
    assert!(msg.contains("max_factor"), "{msg}");
}

#[test]
fn inverted_window_interval_is_rejected() {
    let cfg = FaultConfig {
        link: LinkFaultConfig {
            mean_windows: 1.0,
            earliest: SimTime::from_secs(90),
            latest: SimTime::from_secs(10),
            ..LinkFaultConfig::default()
        },
        ..FaultConfig::default()
    };
    let msg = cfg.validate().expect_err("earliest > latest").to_string();
    assert!(msg.contains("earliest"), "{msg}");

    let cfg = FaultConfig {
        abort: AbortFault {
            probability: 0.5,
            earliest: SimTime::from_secs(60),
            latest: SimTime::from_secs(15),
        },
        ..FaultConfig::default()
    };
    let msg = cfg
        .validate()
        .expect_err("abort window inverted")
        .to_string();
    assert!(msg.contains("abort.earliest"), "{msg}");
}

#[test]
fn mean_windows_above_cap_is_rejected() {
    let cfg = FaultConfig {
        link: LinkFaultConfig {
            mean_windows: 5.0,
            max_windows: 4,
            ..LinkFaultConfig::default()
        },
        ..FaultConfig::default()
    };
    let msg = cfg.validate().expect_err("mean above cap").to_string();
    assert!(msg.contains("mean_windows"), "{msg}");
    assert!(msg.contains("max_windows"), "{msg}");
}

#[test]
fn nan_and_out_of_range_probabilities_are_rejected() {
    for bad in [f64::NAN, f64::INFINITY, -0.2, 1.4] {
        let cfg = FaultConfig {
            non_convergence: NonConvergenceFault {
                probability: bad,
                round_cap: 2,
            },
            ..FaultConfig::default()
        };
        assert!(
            cfg.validate().is_err(),
            "probability {bad} must be rejected"
        );
    }
    let cfg = FaultConfig {
        link: LinkFaultConfig {
            mean_windows: f64::NAN,
            ..LinkFaultConfig::default()
        },
        ..FaultConfig::default()
    };
    assert!(cfg.validate().is_err(), "NaN mean_windows must be rejected");
}

#[test]
fn retry_policy_rejections_classify_as_config_errors() {
    // Every RetryPolicy rejection must be a *config* error so `cli::run`
    // maps it to the usage exit code 2 instead of runtime failure 1.
    let zero_attempts = RetryPolicy {
        max_attempts: 0,
        ..RetryPolicy::default()
    };
    let err = zero_attempts.validate().expect_err("zero attempts");
    assert!(err.is_config_error(), "{err}");
    assert!(err.to_string().contains("max_attempts"), "{err}");

    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.5, -3.0] {
        let policy = RetryPolicy {
            multiplier: bad,
            ..RetryPolicy::default()
        };
        let err = match policy.validate() {
            Err(err) => err,
            Ok(()) => panic!("multiplier {bad} must be rejected"),
        };
        assert!(err.is_config_error(), "{err}");
    }
}

#[test]
fn retry_policy_worst_case_backoff_overflow_is_a_config_error() {
    // 5s * (1e40)^9 overflows f64; before validation learned to check
    // the worst case this config passed and the overflowing attempts
    // then collapsed to ZERO backoff (from_secs_f64 saturates non-finite
    // to zero) — a hot retry loop wearing a "40 orders of magnitude of
    // backoff" costume.
    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: SimDuration::from_secs(5),
        multiplier: 1e40,
    };
    let err = policy.validate().expect_err("worst-case overflow");
    assert!(err.is_config_error(), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("worst-case backoff overflows"), "{msg}");

    // The same growth rate with an attempt budget that keeps the product
    // finite stays valid.
    let bounded = RetryPolicy {
        max_attempts: 3,
        ..policy
    };
    assert!(bounded.validate().is_ok());
}

#[test]
fn overflowing_backoff_saturates_up_not_down() {
    // Defense in depth for a policy mutated after validation: a
    // non-finite product pins the pause at the maximum representable
    // duration instead of zero, and the schedule stays monotone.
    let policy = RetryPolicy {
        max_attempts: 200,
        base_backoff: SimDuration::from_secs(5),
        multiplier: 1e12,
    };
    let saturated = policy.backoff_before(100);
    assert_eq!(saturated, SimDuration::from_micros(u64::MAX));
    let mut prev = SimDuration::ZERO;
    for attempt in 0..12 {
        let pause = policy.backoff_before(attempt);
        assert!(pause >= prev, "backoff must be monotone in the attempt");
        prev = pause;
    }
}

#[test]
fn planner_panics_on_an_enabled_invalid_config() {
    // The campaign layer rejects this before any plan is drawn; reaching
    // the planner with it must be a loud, deterministic panic rather than
    // windows silently drawn from an inverted range.
    let cfg = FaultConfig {
        link: LinkFaultConfig {
            mean_windows: 5.0,
            max_windows: 4,
            ..LinkFaultConfig::default()
        },
        ..FaultConfig::default()
    };
    let err = std::panic::catch_unwind(|| FaultPlan::generate(&cfg, &RngFactory::new(1)))
        .expect_err("invalid enabled config must panic the planner");
    let msg = wavm3_harness::panic_message(err.as_ref());
    assert!(msg.contains("mean_windows"), "{msg}");
}

/// The full (valid and invalid) configuration space, far wider than the
/// planner's own property tests sweep: NaN probabilities, inverted
/// intervals, inverted factor ranges, zero caps.
fn chaotic_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        -2.0f64..=6.0,
    ]
}

fn arb_any_faults() -> impl Strategy<Value = FaultConfig> {
    let link = (
        chaotic_f64(),
        0usize..=6,
        0u64..=20,
        0u64..=20,
        chaotic_f64(),
        chaotic_f64(),
        0u64..=120,
        0u64..=120,
    )
        .prop_map(
            |(mean, max_w, dur_a, dur_b, f_a, f_b, t_a, t_b)| LinkFaultConfig {
                mean_windows: mean,
                max_windows: max_w,
                min_duration: SimDuration::from_secs(dur_a),
                max_duration: SimDuration::from_secs(dur_b),
                min_factor: f_a,
                max_factor: f_b,
                earliest: SimTime::from_secs(t_a),
                latest: SimTime::from_secs(t_b),
            },
        );
    let non_convergence =
        (chaotic_f64(), 0usize..=4).prop_map(|(probability, round_cap)| NonConvergenceFault {
            probability,
            round_cap,
        });
    let abort =
        (chaotic_f64(), 0u64..=120, 0u64..=120).prop_map(|(probability, a, b)| AbortFault {
            probability,
            earliest: SimTime::from_secs(a),
            latest: SimTime::from_secs(b),
        });
    (link, non_convergence, abort).prop_map(|(link, non_convergence, abort)| FaultConfig {
        link,
        non_convergence,
        abort,
    })
}

proptest! {
    /// Any config `validate()` accepts is safe to hand to the planner:
    /// `FaultPlan::generate` never panics on it, and the drawn plan
    /// respects the configured bounds.
    #[test]
    fn validated_configs_never_panic_the_planner(cfg in arb_any_faults(), seed in 0u64..1000) {
        if cfg.validate().is_ok() {
            let plan = std::panic::catch_unwind(|| {
                FaultPlan::generate(&cfg, &RngFactory::new(seed))
            })
            .expect("validated config panicked the planner");
            prop_assert!(plan.link_windows().len() <= cfg.link.max_windows);
            for w in plan.link_windows() {
                prop_assert!(w.bandwidth_factor >= cfg.link.min_factor - 1e-12);
                prop_assert!(w.bandwidth_factor <= cfg.link.max_factor + 1e-12);
                prop_assert!(w.window.start >= cfg.link.earliest);
            }
            if let Some(at) = plan.abort_at() {
                prop_assert!(at >= cfg.abort.earliest && at <= cfg.abort.latest);
            }
        }
    }
}
