//! # wavm3-faults — seeded fault injection for migration runs
//!
//! The paper's testbed is a healthy, dedicated gigabit LAN; real
//! consolidation managers migrate over shared links that degrade, guests
//! whose pre-copy refuses to converge, and toolstacks that abort mid-copy.
//! This crate injects those conditions into the simulator deterministically:
//! a [`FaultPlan`] is drawn up-front from the run's [`RngFactory`] scope, so
//! a faulted run replays bit-identically regardless of thread count, and a
//! run with faults disabled is byte-identical to one built before this crate
//! existed ([`FaultConfig::default`] injects nothing and draws nothing).
//!
//! Three fault classes (paper-extension §"robustness"):
//!
//! * **link degradation** — transient windows during which the effective
//!   migration bandwidth is multiplied by a factor `< 1` (congestion,
//!   packet loss and the ensuing TCP backoff);
//! * **pre-copy non-convergence** — a dirty-page storm that forces the
//!   final stop-and-copy after a configurable round cap, earlier than the
//!   engine's own termination policy would have fired;
//! * **migration abort** — the toolstack cancels the migration at a drawn
//!   instant; the VM rolls back to the source and the energy spent tearing
//!   the half-built target state down is accounted as rollback energy.
//!
//! What actually happened is recorded as [`FaultEvent`]s on the migration
//! record, and [`RetryPolicy`] gives runners an exponential-backoff retry
//! loop over aborted attempts.

use rand::Rng;
use serde::{Deserialize, Serialize};
use wavm3_harness::{ensure_non_negative, ensure_ordered, ensure_probability, Wavm3Error};
use wavm3_simkit::{Interval, RngFactory, SimDuration, SimTime};

/// Transient link-degradation windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultConfig {
    /// Expected number of degradation windows per run (0 = off). Windows
    /// are drawn as `max_windows` independent Bernoulli trials with
    /// `p = mean_windows / max_windows`, so the count is binomial with
    /// this mean.
    pub mean_windows: f64,
    /// Hard cap on windows per run.
    pub max_windows: usize,
    /// Shortest window.
    pub min_duration: SimDuration,
    /// Longest window.
    pub max_duration: SimDuration,
    /// Strongest degradation: bandwidth multiplier at the bottom of the
    /// drawn range (0 = total outage).
    pub min_factor: f64,
    /// Weakest degradation: multiplier at the top of the drawn range.
    pub max_factor: f64,
    /// Earliest instant a window may start.
    pub earliest: SimTime,
    /// Latest instant a window may start.
    pub latest: SimTime,
}

impl Default for LinkFaultConfig {
    fn default() -> Self {
        LinkFaultConfig {
            mean_windows: 0.0,
            max_windows: 4,
            min_duration: SimDuration::from_secs(3),
            max_duration: SimDuration::from_secs(15),
            min_factor: 0.05,
            max_factor: 0.5,
            earliest: SimTime::from_secs(10),
            latest: SimTime::from_secs(90),
        }
    }
}

impl LinkFaultConfig {
    /// Reject NaN / non-finite rates, factors outside `[0, 1]`, and
    /// inverted intervals (`min_factor > max_factor`, `earliest > latest`,
    /// `min_duration > max_duration`, `mean_windows > max_windows`) with
    /// descriptive errors — at construction, not mid-campaign.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        ensure_non_negative("faults.link.mean_windows", self.mean_windows)?;
        if self.mean_windows > self.max_windows as f64 {
            return Err(Wavm3Error::invalid_config(
                "faults.link.mean_windows",
                format!(
                    "must not exceed max_windows ({} > {})",
                    self.mean_windows, self.max_windows
                ),
            ));
        }
        ensure_probability("faults.link.min_factor", self.min_factor)?;
        ensure_probability("faults.link.max_factor", self.max_factor)?;
        ensure_ordered(
            "faults.link.min_factor",
            self.min_factor,
            "faults.link.max_factor",
            self.max_factor,
        )?;
        ensure_ordered(
            "faults.link.min_duration",
            self.min_duration,
            "faults.link.max_duration",
            self.max_duration,
        )?;
        ensure_ordered(
            "faults.link.earliest",
            self.earliest,
            "faults.link.latest",
            self.latest,
        )?;
        Ok(())
    }
}

/// Pre-copy non-convergence (dirty-page storm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonConvergenceFault {
    /// Per-run probability that the storm occurs (0 = off).
    pub probability: f64,
    /// Pre-copy rounds allowed before the forced stop-and-copy.
    pub round_cap: usize,
}

impl Default for NonConvergenceFault {
    fn default() -> Self {
        NonConvergenceFault {
            probability: 0.0,
            round_cap: 2,
        }
    }
}

impl NonConvergenceFault {
    /// Reject invalid probabilities and a zero round cap.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        ensure_probability("faults.non_convergence.probability", self.probability)?;
        if self.round_cap == 0 {
            return Err(Wavm3Error::invalid_config(
                "faults.non_convergence.round_cap",
                "must allow at least one pre-copy round",
            ));
        }
        Ok(())
    }
}

/// Migration abort with rollback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbortFault {
    /// Per-run probability of an abort being scheduled (0 = off). An
    /// abort scheduled after the transfer already finished has no effect.
    pub probability: f64,
    /// Earliest abort instant.
    pub earliest: SimTime,
    /// Latest abort instant.
    pub latest: SimTime,
}

impl Default for AbortFault {
    fn default() -> Self {
        AbortFault {
            probability: 0.0,
            earliest: SimTime::from_secs(15),
            latest: SimTime::from_secs(60),
        }
    }
}

impl AbortFault {
    /// Reject invalid probabilities and inverted abort windows.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        ensure_probability("faults.abort.probability", self.probability)?;
        ensure_ordered(
            "faults.abort.earliest",
            self.earliest,
            "faults.abort.latest",
            self.latest,
        )?;
        Ok(())
    }
}

/// Complete fault-injection configuration. The default injects nothing,
/// so every pre-existing run is byte-identical with faults "enabled but
/// empty".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Link degradation windows.
    pub link: LinkFaultConfig,
    /// Pre-copy non-convergence storm.
    pub non_convergence: NonConvergenceFault,
    /// Mid-migration abort.
    pub abort: AbortFault,
}

impl FaultConfig {
    /// Validate every fault class. The campaign entry points call this
    /// before any plan is drawn; [`FaultPlan::generate`] re-checks as a
    /// last line of defense and panics with this error's message.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        self.link.validate()?;
        self.non_convergence.validate()?;
        self.abort.validate()
    }

    /// `true` when at least one fault class can fire.
    pub fn is_enabled(&self) -> bool {
        self.link.mean_windows > 0.0
            || self.non_convergence.probability > 0.0
            || self.abort.probability > 0.0
    }

    /// A moderate all-classes preset (the `--faults` CLI default): some
    /// runs see a degraded link, some refuse to converge, a few abort.
    pub fn light() -> Self {
        FaultConfig {
            link: LinkFaultConfig {
                mean_windows: 1.5,
                ..LinkFaultConfig::default()
            },
            non_convergence: NonConvergenceFault {
                probability: 0.25,
                round_cap: 2,
            },
            abort: AbortFault {
                probability: 0.15,
                ..AbortFault::default()
            },
        }
    }
}

/// One scheduled link-degradation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkWindow {
    /// When the degradation is active.
    pub window: Interval,
    /// Multiplier applied to the effective bandwidth while active.
    pub bandwidth_factor: f64,
}

/// Everything that will go wrong in one run, drawn up-front.
///
/// The plan is generated from named [`RngFactory`] streams
/// (`fault.link` / `fault.converge` / `fault.abort`), so enabling one
/// fault class never perturbs the draws of another, and the same run seed
/// always produces the same plan — on any thread count.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    link_windows: Vec<LinkWindow>,
    force_stop_after_rounds: Option<usize>,
    abort_at: Option<SimTime>,
}

impl FaultPlan {
    /// The empty plan: nothing fails.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Draw a plan from `cfg` under the run's RNG scope. A fully disabled
    /// config short-circuits to [`FaultPlan::none`] without touching any
    /// stream.
    ///
    /// # Panics
    ///
    /// On a config that fails [`FaultConfig::validate`]. Campaign entry
    /// points reject such configs with a proper [`Wavm3Error`] before any
    /// plan is drawn; reaching this panic means validation was bypassed,
    /// and a deterministic panic here beats silently drawing windows from
    /// an inverted or NaN range.
    pub fn generate(cfg: &FaultConfig, rng: &RngFactory) -> Self {
        if !cfg.is_enabled() {
            return FaultPlan::none();
        }
        if let Err(e) = cfg.validate() {
            panic!("FaultPlan::generate: {e}");
        }
        let mut plan = FaultPlan::none();

        if cfg.link.mean_windows > 0.0 && cfg.link.max_windows > 0 {
            let mut link_rng = rng.stream("fault.link");
            let p = (cfg.link.mean_windows / cfg.link.max_windows as f64).clamp(0.0, 1.0);
            for _ in 0..cfg.link.max_windows {
                if !link_rng.gen_bool(p) {
                    continue;
                }
                let start = uniform_time(&mut link_rng, cfg.link.earliest, cfg.link.latest);
                let span =
                    uniform_duration(&mut link_rng, cfg.link.min_duration, cfg.link.max_duration);
                let factor = uniform_f64(&mut link_rng, cfg.link.min_factor, cfg.link.max_factor)
                    .clamp(0.0, 1.0);
                plan.link_windows.push(LinkWindow {
                    window: Interval::starting_at(start, span),
                    bandwidth_factor: factor,
                });
            }
            plan.link_windows
                .sort_by_key(|w| (w.window.start, w.window.end));
        }

        if cfg.non_convergence.probability > 0.0 {
            let mut conv_rng = rng.stream("fault.converge");
            if conv_rng.gen_bool(cfg.non_convergence.probability.clamp(0.0, 1.0)) {
                plan.force_stop_after_rounds = Some(cfg.non_convergence.round_cap.max(1));
            }
        }

        if cfg.abort.probability > 0.0 {
            let mut abort_rng = rng.stream("fault.abort");
            if abort_rng.gen_bool(cfg.abort.probability.clamp(0.0, 1.0)) {
                plan.abort_at = Some(uniform_time(
                    &mut abort_rng,
                    cfg.abort.earliest,
                    cfg.abort.latest,
                ));
            }
        }

        plan
    }

    /// Bandwidth multiplier active at `t`: the minimum factor over every
    /// window containing `t` (overlapping outages don't recover each
    /// other), `1.0` when none is active.
    pub fn bandwidth_factor_at(&self, t: SimTime) -> f64 {
        self.link_windows
            .iter()
            .filter(|w| w.window.contains(t))
            .map(|w| w.bandwidth_factor)
            .fold(1.0, f64::min)
    }

    /// The scheduled link-degradation windows, in start order.
    pub fn link_windows(&self) -> &[LinkWindow] {
        &self.link_windows
    }

    /// `Some(cap)` when a non-convergence storm forces stop-and-copy
    /// after `cap` pre-copy rounds.
    pub fn force_stop_after_rounds(&self) -> Option<usize> {
        self.force_stop_after_rounds
    }

    /// The scheduled abort instant, if any.
    pub fn abort_at(&self) -> Option<SimTime> {
        self.abort_at
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.link_windows.is_empty()
            && self.force_stop_after_rounds.is_none()
            && self.abort_at.is_none()
    }

    /// Test/bench helper: a plan with exactly these components.
    pub fn from_parts(
        link_windows: Vec<LinkWindow>,
        force_stop_after_rounds: Option<usize>,
        abort_at: Option<SimTime>,
    ) -> Self {
        FaultPlan {
            link_windows,
            force_stop_after_rounds,
            abort_at,
        }
    }
}

/// One fault that actually fired during a run, recorded on the migration
/// record in occurrence order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A link-degradation window became active during the transfer.
    LinkDegraded {
        /// The scheduled window.
        window: Interval,
        /// Bandwidth multiplier applied while active.
        bandwidth_factor: f64,
    },
    /// A non-convergence storm forced the final stop-and-copy.
    ForcedStopAndCopy {
        /// When the forced pass started.
        at: SimTime,
        /// Pre-copy rounds completed before the force.
        after_rounds: usize,
    },
    /// The migration was aborted and rolled back to the source.
    Aborted {
        /// Abort instant.
        at: SimTime,
        /// Bytes already pushed over the link when the abort fired.
        bytes_sent: u64,
    },
}

impl FaultEvent {
    /// Short stable identifier for traces and metrics labels.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::LinkDegraded { .. } => "link_degraded",
            FaultEvent::ForcedStopAndCopy { .. } => "forced_stop_and_copy",
            FaultEvent::Aborted { .. } => "aborted",
        }
    }

    /// The sim instant the fault took effect (window start for link
    /// degradation).
    pub fn at(&self) -> SimTime {
        match self {
            FaultEvent::LinkDegraded { window, .. } => window.start,
            FaultEvent::ForcedStopAndCopy { at, .. } => *at,
            FaultEvent::Aborted { at, .. } => *at,
        }
    }
}

/// Report `event` to the observability layer: a `fault.injected` trace
/// event plus per-kind counters (`faults.injected`, `faults.<kind>`).
/// Near-zero cost when no session is installed.
pub fn observe_fault(event: &FaultEvent) {
    wavm3_obs::metrics::counter_add("faults.injected", 1);
    match event {
        FaultEvent::LinkDegraded {
            window,
            bandwidth_factor,
        } => {
            wavm3_obs::metrics::counter_add("faults.link_degraded", 1);
            wavm3_obs::event!(
                wavm3_obs::Level::Warn, "wavm3_faults", "fault.injected", window.start,
                "kind" => "link_degraded",
                "window_end_us" => window.end,
                "bandwidth_factor" => *bandwidth_factor,
            );
        }
        FaultEvent::ForcedStopAndCopy { at, after_rounds } => {
            wavm3_obs::metrics::counter_add("faults.forced_stop_and_copy", 1);
            wavm3_obs::event!(
                wavm3_obs::Level::Warn, "wavm3_faults", "fault.injected", *at,
                "kind" => "forced_stop_and_copy",
                "after_rounds" => *after_rounds as u64,
            );
        }
        FaultEvent::Aborted { at, bytes_sent } => {
            wavm3_obs::metrics::counter_add("faults.aborted", 1);
            wavm3_obs::event!(
                wavm3_obs::Level::Warn, "wavm3_faults", "fault.injected", *at,
                "kind" => "aborted",
                "bytes_sent" => *bytes_sent,
            );
        }
    }
}

/// Retry-with-exponential-backoff over aborted migration attempts.
///
/// Backoff is *simulated* time — the runner charges it to the schedule,
/// not the wall clock. `backoff_before(k)` is the pause before attempt
/// `k` (1-based retries): `base * multiplier^(k-1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed (1 = no retries).
    pub max_attempts: u32,
    /// Pause before the first retry.
    pub base_backoff: SimDuration,
    /// Growth factor per further retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_secs(5),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, aborted or not.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Reject a zero attempt budget and NaN / non-finite / shrinking
    /// backoff parameters, including combinations whose *worst-case*
    /// backoff overflows f64: `SimDuration::from_secs_f64` saturates
    /// non-finite inputs to ZERO, so an unchecked overflow would turn
    /// the longest pause into a hot retry loop — the opposite of the
    /// configured intent. Configs that can reach that state are a
    /// config error (exit 2), not a latent runtime surprise.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        if self.max_attempts == 0 {
            return Err(Wavm3Error::invalid_config(
                "retry.max_attempts",
                "must allow at least one attempt",
            ));
        }
        if !self.multiplier.is_finite() || self.multiplier < 1.0 {
            return Err(Wavm3Error::invalid_config(
                "retry.multiplier",
                format!(
                    "backoff growth factor must be >= 1, got {}",
                    self.multiplier
                ),
            ));
        }
        let worst =
            self.base_backoff.as_secs_f64() * self.multiplier.powi(self.max_attempts as i32 - 1);
        if !worst.is_finite() {
            return Err(Wavm3Error::invalid_config(
                "retry.multiplier",
                format!(
                    "worst-case backoff overflows ({}s base x {}^{} is not finite)",
                    self.base_backoff.as_secs_f64(),
                    self.multiplier,
                    self.max_attempts.saturating_sub(1)
                ),
            ));
        }
        Ok(())
    }

    /// Simulated pause before retry attempt `attempt` (1-based; attempt 0
    /// is the initial try and has no backoff). A product that escapes
    /// f64 range despite [`validate`](Self::validate) (e.g. a policy
    /// mutated after validation) saturates to the *maximum* pause rather
    /// than letting `from_secs_f64`'s non-finite handling collapse it to
    /// zero — too much backoff is safe, zero backoff is a retry storm.
    pub fn backoff_before(&self, attempt: u32) -> SimDuration {
        if attempt == 0 {
            return SimDuration::ZERO;
        }
        let scale = self.multiplier.max(1.0).powi(attempt as i32 - 1);
        let secs = self.base_backoff.as_secs_f64() * scale;
        if !secs.is_finite() {
            return SimDuration::from_micros(u64::MAX);
        }
        SimDuration::from_secs_f64(secs)
    }
}

fn uniform_f64<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo..hi)
}

fn uniform_time<R: Rng>(rng: &mut R, lo: SimTime, hi: SimTime) -> SimTime {
    if hi <= lo {
        return lo;
    }
    SimTime::from_micros(rng.gen_range(lo.as_micros()..=hi.as_micros()))
}

fn uniform_duration<R: Rng>(rng: &mut R, lo: SimDuration, hi: SimDuration) -> SimDuration {
    if hi <= lo {
        return lo;
    }
    SimDuration::from_micros(rng.gen_range(lo.as_micros()..=hi.as_micros()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_cfg() -> FaultConfig {
        FaultConfig {
            link: LinkFaultConfig {
                mean_windows: 2.0,
                ..LinkFaultConfig::default()
            },
            non_convergence: NonConvergenceFault {
                probability: 1.0,
                round_cap: 2,
            },
            abort: AbortFault {
                probability: 1.0,
                ..AbortFault::default()
            },
        }
    }

    #[test]
    fn default_config_is_off_and_draws_nothing() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_enabled());
        let plan = FaultPlan::generate(&cfg, &RngFactory::new(1));
        assert!(plan.is_empty());
        assert_eq!(plan.bandwidth_factor_at(SimTime::from_secs(30)), 1.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = enabled_cfg();
        let a = FaultPlan::generate(&cfg, &RngFactory::new(7));
        let b = FaultPlan::generate(&cfg, &RngFactory::new(7));
        assert_eq!(a, b);
        let c = FaultPlan::generate(&cfg, &RngFactory::new(8));
        assert_ne!(a, c, "different scope, different plan");
    }

    #[test]
    fn certain_probabilities_always_schedule() {
        let plan = FaultPlan::generate(&enabled_cfg(), &RngFactory::new(3));
        assert_eq!(plan.force_stop_after_rounds(), Some(2));
        let at = plan.abort_at().expect("abort scheduled");
        assert!(at >= SimTime::from_secs(15) && at <= SimTime::from_secs(60));
    }

    #[test]
    fn windows_respect_config_bounds() {
        let cfg = enabled_cfg();
        for seed in 0..32 {
            let plan = FaultPlan::generate(&cfg, &RngFactory::new(seed));
            assert!(plan.link_windows().len() <= cfg.link.max_windows);
            for w in plan.link_windows() {
                assert!(w.window.start >= cfg.link.earliest);
                assert!(w.window.start <= cfg.link.latest);
                assert!(w.window.duration() >= cfg.link.min_duration);
                assert!(w.window.duration() <= cfg.link.max_duration);
                assert!(w.bandwidth_factor >= cfg.link.min_factor);
                assert!(w.bandwidth_factor <= cfg.link.max_factor);
            }
        }
    }

    #[test]
    fn factor_is_min_over_active_windows() {
        let plan = FaultPlan::from_parts(
            vec![
                LinkWindow {
                    window: Interval::new(SimTime::from_secs(10), SimTime::from_secs(30)),
                    bandwidth_factor: 0.5,
                },
                LinkWindow {
                    window: Interval::new(SimTime::from_secs(20), SimTime::from_secs(40)),
                    bandwidth_factor: 0.2,
                },
            ],
            None,
            None,
        );
        assert_eq!(plan.bandwidth_factor_at(SimTime::from_secs(15)), 0.5);
        assert_eq!(plan.bandwidth_factor_at(SimTime::from_secs(25)), 0.2);
        assert_eq!(plan.bandwidth_factor_at(SimTime::from_secs(35)), 0.2);
        assert_eq!(plan.bandwidth_factor_at(SimTime::from_secs(45)), 1.0);
    }

    #[test]
    fn fault_classes_use_independent_streams() {
        // Turning the link class off must not change the abort draw.
        let rng = RngFactory::new(11);
        let full = FaultPlan::generate(&enabled_cfg(), &rng);
        let mut abort_only = enabled_cfg();
        abort_only.link.mean_windows = 0.0;
        abort_only.non_convergence.probability = 0.0;
        let partial = FaultPlan::generate(&abort_only, &rng);
        assert_eq!(full.abort_at(), partial.abort_at());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps_nothing() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_secs(5),
            multiplier: 2.0,
        };
        assert_eq!(p.backoff_before(0), SimDuration::ZERO);
        assert_eq!(p.backoff_before(1), SimDuration::from_secs(5));
        assert_eq!(p.backoff_before(2), SimDuration::from_secs(10));
        assert_eq!(p.backoff_before(3), SimDuration::from_secs(20));
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = FaultPlan::generate(&enabled_cfg(), &RngFactory::new(5));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn light_preset_enables_every_class() {
        let cfg = FaultConfig::light();
        assert!(cfg.is_enabled());
        assert!(cfg.link.mean_windows > 0.0);
        assert!(cfg.non_convergence.probability > 0.0);
        assert!(cfg.abort.probability > 0.0);
    }
}
