//! Regeneration of the paper's figures (2–7) as CSV series + summaries.
//!
//! Each figure function runs the corresponding experiment family and
//! produces:
//!
//! * `csv` — long-form series `panel,legend,time_s,power_w` of the
//!   repetition-averaged 2 Hz power traces (what the paper plots);
//! * `summary` — per-curve phase/energy digest lines (what the paper's
//!   prose discusses: transfer lengths, suspension drops, energy
//!   totals).

use crate::campaign::Campaign;
use crate::dataset::{mean_trace, ScenarioRuns};
use crate::scenario::{ExperimentFamily, Scenario};
use std::fmt::Write as _;
use wavm3_cluster::MachineSet;
use wavm3_migration::MigrationKind;
use wavm3_simkit::TimeSeries;

/// A rendered figure.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Figure id, e.g. "fig3".
    pub id: &'static str,
    /// Human summary (stdout).
    pub summary: String,
    /// Long-form CSV of the averaged traces.
    pub csv: String,
}

fn averaged_source_target(runs: &ScenarioRuns) -> (TimeSeries, TimeSeries) {
    let src: Vec<&TimeSeries> = runs
        .records
        .iter()
        .map(|r| &r.source_trace.series)
        .collect();
    let dst: Vec<&TimeSeries> = runs
        .records
        .iter()
        .map(|r| &r.target_trace.series)
        .collect();
    (mean_trace(&src), mean_trace(&dst))
}

fn push_csv(csv: &mut String, panel: &str, legend: &str, series: &TimeSeries) {
    for (t, v) in series.iter() {
        let _ = writeln!(csv, "{panel},{legend},{:.1},{:.1}", t.as_secs_f64(), v);
    }
}

fn summarise(summary: &mut String, panel: &str, runs: &ScenarioRuns) {
    let n = runs.records.len() as f64;
    let mean = |f: &dyn Fn(&wavm3_migration::MigrationRecord) -> f64| {
        runs.records.iter().map(f).sum::<f64>() / n
    };
    let _ = writeln!(
        summary,
        "{panel:<22} {:<6} reps={:<2} transfer={:>6.1}s downtime={:>6.2}s bytes={:>6.2}G E_src={:>7.1}kJ E_dst={:>7.1}kJ",
        runs.scenario.label,
        runs.records.len(),
        mean(&|r| r.phases.transfer().as_secs_f64()),
        mean(&|r| r.downtime.as_secs_f64()),
        mean(&|r| r.total_bytes as f64 / 1e9),
        mean(&|r| r.source_energy.total_j() / 1e3),
        mean(&|r| r.target_energy.total_j() / 1e3),
    );
}

/// Render one load-sweep family (Figs. 3, 4, 6, 7 share this shape).
fn render_family(
    id: &'static str,
    title: &str,
    family: ExperimentFamily,
    set: MachineSet,
    campaign: &Campaign,
) -> FigureOutput {
    let scenarios = Scenario::family_scenarios(family, set);
    let dataset = campaign.collect(scenarios);
    let mut summary = String::new();
    let mut csv = String::from("panel,legend,time_s,power_w\n");
    let _ = writeln!(summary, "{title} ({})", set.label());
    for runs in &dataset.runs {
        let kind = runs.scenario.kind.label();
        let (src, dst) = averaged_source_target(runs);
        let src_panel = format!("{kind}-source");
        let dst_panel = format!("{kind}-target");
        push_csv(&mut csv, &src_panel, &runs.scenario.label, &src);
        push_csv(&mut csv, &dst_panel, &runs.scenario.label, &dst);
        summarise(&mut summary, &src_panel, runs);
    }
    FigureOutput { id, summary, csv }
}

/// Fig. 2 — phase-annotated traces of one non-live and one live migration
/// (idle hosts, CPU-loaded migrant).
pub fn fig2(campaign: &Campaign) -> FigureOutput {
    let base = Scenario {
        family: ExperimentFamily::CpuloadSource,
        kind: MigrationKind::NonLive,
        machine_set: MachineSet::M,
        source_load_vms: 0,
        target_load_vms: 0,
        migrant_mem_ratio: None,
        label: "0 VM".into(),
    };
    let mut live = base.clone();
    live.kind = MigrationKind::Live;
    let dataset = campaign.collect(vec![base, live]);
    let mut summary = String::new();
    let mut csv = String::from("panel,legend,time_s,power_w\n");
    let _ = writeln!(
        summary,
        "Fig 2: energy consumption phases of non-live and live migration"
    );
    for runs in &dataset.runs {
        let kind = runs.scenario.kind.label();
        let r0 = &runs.records[0];
        let _ = writeln!(
            summary,
            "  {kind:<9} ms={:.1}s ts={:.1}s te={:.1}s me={:.1}s  E_init={:.1}kJ E_xfer={:.1}kJ E_act={:.1}kJ (source)",
            r0.phases.ms.as_secs_f64(),
            r0.phases.ts.as_secs_f64(),
            r0.phases.te.as_secs_f64(),
            r0.phases.me.as_secs_f64(),
            r0.source_energy.initiation_j / 1e3,
            r0.source_energy.transfer_j / 1e3,
            r0.source_energy.activation_j / 1e3,
        );
        let (src, dst) = averaged_source_target(runs);
        // Terminal rendering of the source trace with phase markers.
        let _ = writeln!(
            summary,
            "{}",
            crate::export::ascii_trace(&src, &r0.phases, 7)
        );
        push_csv(&mut csv, &format!("{kind}-source"), "trace", &src);
        push_csv(&mut csv, &format!("{kind}-target"), "trace", &dst);
    }
    FigureOutput {
        id: "fig2",
        summary,
        csv,
    }
}

/// Fig. 3 — CPULOAD-SOURCE (non-live/live × source/target panels).
pub fn fig3(campaign: &Campaign) -> FigureOutput {
    render_family(
        "fig3",
        "Fig 3: CPULOAD-SOURCE power traces",
        ExperimentFamily::CpuloadSource,
        MachineSet::M,
        campaign,
    )
}

/// Fig. 4 — CPULOAD-TARGET.
pub fn fig4(campaign: &Campaign) -> FigureOutput {
    render_family(
        "fig4",
        "Fig 4: CPULOAD-TARGET power traces",
        ExperimentFamily::CpuloadTarget,
        MachineSet::M,
        campaign,
    )
}

/// Fig. 5 — MEMLOAD-VM (dirtying-ratio sweep).
pub fn fig5(campaign: &Campaign) -> FigureOutput {
    render_family(
        "fig5",
        "Fig 5: MEMLOAD-VM power traces (dirtying ratio sweep)",
        ExperimentFamily::MemloadVm,
        MachineSet::M,
        campaign,
    )
}

/// Fig. 6 — MEMLOAD-SOURCE.
pub fn fig6(campaign: &Campaign) -> FigureOutput {
    render_family(
        "fig6",
        "Fig 6: MEMLOAD-SOURCE power traces",
        ExperimentFamily::MemloadSource,
        MachineSet::M,
        campaign,
    )
}

/// Fig. 7 — MEMLOAD-TARGET.
pub fn fig7(campaign: &Campaign) -> FigureOutput {
    render_family(
        "fig7",
        "Fig 7: MEMLOAD-TARGET power traces",
        ExperimentFamily::MemloadTarget,
        MachineSet::M,
        campaign,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RepetitionPolicy, RunnerConfig};

    fn fast_cfg() -> Campaign {
        Campaign::plain(RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(1),
            base_seed: 7,
            ..Default::default()
        })
    }

    #[test]
    fn fig2_has_phase_annotations_and_both_kinds() {
        let f = fig2(&fast_cfg());
        assert!(f.summary.contains("non-live"));
        assert!(f.summary.contains("live"));
        assert!(f.summary.contains("ts="));
        assert!(f.csv.lines().count() > 100);
        assert!(f.csv.starts_with("panel,legend,time_s,power_w"));
    }

    #[test]
    fn fig5_sweeps_all_ratios() {
        let f = fig5(&fast_cfg());
        for pct in ["5%", "15%", "35%", "55%", "75%", "95%"] {
            assert!(f.summary.contains(pct), "missing {pct}:\n{}", f.summary);
        }
        // Live only: panels are live-source / live-target.
        assert!(f.csv.contains("live-source,5%"));
        assert!(!f.csv.contains("non-live-source"));
    }

    #[test]
    fn fig3_has_four_panels() {
        let f = fig3(&fast_cfg());
        for panel in [
            "non-live-source",
            "non-live-target",
            "live-source",
            "live-target",
        ] {
            assert!(f.csv.contains(panel), "missing panel {panel}");
        }
        assert_eq!(f.id, "fig3");
    }
}
