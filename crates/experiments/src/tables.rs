//! Regeneration of the paper's tables.
//!
//! Each `table*` function renders a text table from campaign results,
//! side-by-side with the paper's published numbers where applicable, so
//! shape comparisons (who wins, by roughly what factor) are immediate.

use crate::campaign::Campaign;
use crate::dataset::ExperimentDataset;
use crate::scenario::Scenario;
use std::fmt::Write as _;
use wavm3_cluster::{hardware, vm_instances, MachineSet};
use wavm3_migration::{MigrationKind, MigrationRecord};
use wavm3_models::evaluation::{evaluate_models, score_model, stream_model_diagnostics};
use wavm3_models::paper;
use wavm3_models::{
    train_huang, train_liu, train_strunk, train_wavm3, EnergyModel, HostRole, HuangModel, LiuModel,
    PowerModel, ReadingSplit, StrunkModel, Wavm3Model,
};

/// Everything trained on one machine set's training runs.
#[derive(Debug, Clone)]
pub struct TrainedBundle {
    /// WAVM3 for live migration (Table IV).
    pub wavm3_live: Wavm3Model,
    /// WAVM3 for non-live migration (Table III).
    pub wavm3_non_live: Wavm3Model,
    /// HUANG per mechanism.
    pub huang_live: HuangModel,
    /// HUANG, non-live.
    pub huang_non_live: HuangModel,
    /// LIU per mechanism.
    pub liu_live: LiuModel,
    /// LIU, non-live.
    pub liu_non_live: LiuModel,
    /// STRUNK per mechanism.
    pub strunk_live: StrunkModel,
    /// STRUNK, non-live.
    pub strunk_non_live: StrunkModel,
}

/// Train every model on the given training records (paper §VI-F / §VII).
pub fn train_all(train: &[&MigrationRecord]) -> Option<TrainedBundle> {
    let split = ReadingSplit::default();
    Some(TrainedBundle {
        wavm3_live: train_wavm3(train, MigrationKind::Live, &split)?,
        wavm3_non_live: train_wavm3(train, MigrationKind::NonLive, &split)?,
        huang_live: train_huang(train, MigrationKind::Live, &split)?,
        huang_non_live: train_huang(train, MigrationKind::NonLive, &split)?,
        liu_live: train_liu(train, MigrationKind::Live)?,
        liu_non_live: train_liu(train, MigrationKind::NonLive)?,
        strunk_live: train_strunk(train, MigrationKind::Live)?,
        strunk_non_live: train_strunk(train, MigrationKind::NonLive)?,
    })
}

/// Run the full Table IIa campaign on one machine set under the given
/// supervised campaign (checkpoints, budgets, panic isolation included).
pub fn run_campaign(set: MachineSet, campaign: &Campaign) -> ExperimentDataset {
    campaign.collect(Scenario::full_campaign(set))
}

/// Fraction of runs used for training throughout the table pipeline.
pub const RUN_TRAIN_FRACTION: f64 = 0.3;

/// Seed of the run-level split.
pub const RUN_SPLIT_SEED: u64 = 0x5EED_5713;

/// Table I — qualitative workload-impact matrix, with measured evidence.
pub fn table1(dataset: &ExperimentDataset) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I: Workload impact on VM migration (measured evidence)"
    );
    let _ = writeln!(out);

    // Evidence 1: source CPU load stretches the transfer phase.
    let stretch = |kind: MigrationKind, family: crate::scenario::ExperimentFamily, hi: &str| {
        let pick = |label: &str| {
            dataset
                .runs
                .iter()
                .find(|r| {
                    r.scenario.family == family
                        && r.scenario.kind == kind
                        && r.scenario.label == label
                })
                .map(|r| {
                    let xs: Vec<f64> = r
                        .records
                        .iter()
                        .map(|x| x.phases.transfer().as_secs_f64())
                        .collect();
                    xs.iter().sum::<f64>() / xs.len() as f64
                })
        };
        match (pick("0 VM"), pick(hi)) {
            (Some(lo), Some(hi)) if lo > 0.0 => Some(hi / lo),
            _ => None,
        }
    };
    use crate::scenario::ExperimentFamily as F;
    if let Some(s) = stretch(MigrationKind::Live, F::CpuloadSource, "8 VM") {
        let _ = writeln!(
            out,
            "CPU-intensive on SOURCE : slowdown for state transfer      (live transfer x{s:.2} at 8 load VMs)"
        );
    }
    if let Some(s) = stretch(MigrationKind::Live, F::CpuloadTarget, "8 VM") {
        let _ = writeln!(
            out,
            "CPU-intensive on TARGET : slowdown for VM start/transfer   (live transfer x{s:.2} at 8 load VMs)"
        );
    }
    // Evidence 2: memory-intensive migrant inflates downtime and bytes.
    let mem = |label: &str| {
        dataset
            .runs
            .iter()
            .find(|r| r.scenario.family == F::MemloadVm && r.scenario.label == label)
            .map(|r| {
                let n = r.records.len() as f64;
                (
                    r.records
                        .iter()
                        .map(|x| x.downtime.as_secs_f64())
                        .sum::<f64>()
                        / n,
                    r.records.iter().map(|x| x.total_bytes as f64).sum::<f64>() / n,
                )
            })
    };
    if let (Some((d_lo, b_lo)), Some((d_hi, b_hi))) = (mem("5%"), mem("95%")) {
        let _ = writeln!(
            out,
            "MEMORY-intensive on VM  : multiple transfers of VM state    (bytes x{:.2}, suspension {:.1}s -> {:.1}s as DR 5%->95%)",
            b_hi / b_lo,
            d_lo,
            d_hi
        );
    }
    let _ = writeln!(
        out,
        "MEMORY-intensive, NON-LIVE: no influence                      (suspended VM dirties nothing)"
    );
    out
}

/// Table II — the experimental setup (static configuration echo).
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE IIa: Experimental design");
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>18}",
        "Experiment", "source load", "target load", "migrating VM"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>18}",
        "CPULOAD-SOURCE", "0-8 load VMs", "idle", "migrating-cpu"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>18}",
        "CPULOAD-TARGET", "migrant only", "0-8 load VMs", "migrating-cpu"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>18}",
        "MEMLOAD-VM", "migrant only", "idle", "migrating-mem 5-95%"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>18}",
        "MEMLOAD-SOURCE", "0-8 load VMs", "idle", "migrating-mem 95%"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>18}",
        "MEMLOAD-TARGET", "migrant only", "0-8 load VMs", "migrating-mem 95%"
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "TABLE IIb: VM configurations");
    let _ = writeln!(
        out,
        "{:<15} {:>6} {:>8} {:>8} {:>14} {:>8}",
        "ID", "vCPUs", "kernel", "RAM", "workload", "storage"
    );
    for vm in vm_instances::all() {
        let _ = writeln!(
            out,
            "{:<15} {:>6} {:>8} {:>7}M {:>14} {:>7}G",
            vm.name, vm.vcpus, vm.kernel, vm.ram_mib, vm.workload, vm.storage_gib
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "TABLE IIc: Hardware configuration");
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>9} {:>20} {:>12} {:>10}",
        "Machine", "vCPUs", "RAM", "NIC", "idle power", "Xen"
    );
    for m in [
        hardware::m01(),
        hardware::m02(),
        hardware::o1(),
        hardware::o2(),
    ] {
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>8}G {:>20} {:>10.0} W {:>10}",
            m.name,
            m.logical_cpus,
            m.ram_mib / 1024,
            m.nic,
            m.power.idle_w,
            "4.2.5"
        );
    }
    out
}

fn wavm3_coeff_table(model: &Wavm3Model, paper_model: &Wavm3Model, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<7} {:<11} {:>12} {:>12} {:>14} {:>10} {:>10}   (paper alpha / C1)",
        "Host", "Phase", "alpha", "beta(vm)", "beta(bw)", "gamma(dr)", "C"
    );
    for (role, ours, theirs) in [
        ("source", &model.source, &paper_model.source),
        ("target", &model.target, &paper_model.target),
    ] {
        for (phase, c, p) in [
            ("initiation", &ours.initiation, &theirs.initiation),
            ("transfer", &ours.transfer, &theirs.transfer),
            ("activation", &ours.activation, &theirs.activation),
        ] {
            let _ = writeln!(
                out,
                "{:<7} {:<11} {:>12.4} {:>12.4} {:>14.3e} {:>10.4} {:>10.2}   ({:.2} / {:.1})",
                role,
                phase,
                c.alpha_cpu_host,
                c.beta_cpu_vm,
                c.beta_bw,
                c.gamma_dr,
                c.c,
                p.alpha_cpu_host,
                p.c
            );
        }
    }
    out
}

/// Tables III/IV — WAVM3 coefficients fitted on the m-set training runs.
pub fn table3_4(dataset_m: &ExperimentDataset, kind: MigrationKind) -> Option<String> {
    let (train, _) = dataset_m.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);
    let model = train_wavm3(&train, kind, &ReadingSplit::default())?;
    let (paper_model, title) = match kind {
        MigrationKind::NonLive => (
            paper::wavm3_non_live(),
            "TABLE III: WAVM3 coefficients, non-live migration (ours vs paper)",
        ),
        MigrationKind::Live => (
            paper::wavm3_live(),
            "TABLE IV: WAVM3 coefficients, live migration (ours vs paper)",
        ),
        MigrationKind::PostCopy => {
            panic!("the paper has no post-copy coefficient table")
        }
    };
    Some(wavm3_coeff_table(&model, &paper_model, title))
}

/// Table V — WAVM3 NRMSE on both machine sets with the C1→C2 bias swap.
pub fn table5(dataset_m: &ExperimentDataset, dataset_o: &ExperimentDataset) -> Option<String> {
    let (train_m, test_m) = dataset_m.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);
    let split = ReadingSplit::default();
    let live = train_wavm3(&train_m, MigrationKind::Live, &split)?;
    let non_live = train_wavm3(&train_m, MigrationKind::NonLive, &split)?;

    let o_records = dataset_o.all_records();
    let o_idle = o_records.first()?.idle_power_w;
    let live_o = live.with_idle_bias(o_idle);
    let non_live_o = non_live.with_idle_bias(o_idle);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE V: WAVM3 NRMSE on both machine pairs (ours vs paper)"
    );
    let _ = writeln!(
        out,
        "{:<7} {:>16} {:>16} {:>16} {:>16}",
        "Host", "non-live m01-m02", "live m01-m02", "non-live o1-o2", "live o1-o2"
    );
    for (role, paper_row) in [
        (HostRole::Source, &paper::TABLE_V[0]),
        (HostRole::Target, &paper::TABLE_V[1]),
    ] {
        let cell = |m: &Wavm3Model, kind, recs: &[&MigrationRecord]| {
            score_model(m, role, kind, recs)
                .map(|r| r.nrmse_pct())
                .unwrap_or(f64::NAN)
        };
        let _ = writeln!(
            out,
            "{:<7} {:>13.1}%   {:>13.1}%   {:>13.1}%   {:>13.1}%   (paper {:>4.1}/{:>4.1}/{:>4.1}/{:>4.1})",
            role.label(),
            cell(&non_live, MigrationKind::NonLive, &test_m),
            cell(&live, MigrationKind::Live, &test_m),
            cell(&non_live_o, MigrationKind::NonLive, &o_records),
            cell(&live_o, MigrationKind::Live, &o_records),
            paper_row.m_non_live_pct,
            paper_row.m_live_pct,
            paper_row.o_non_live_pct,
            paper_row.o_live_pct,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(o1-o2 predictions use the idle-bias swap C1 -> C2, delta = {:.0} W)",
        o_idle - live.trained_idle_w
    );
    Some(out)
}

/// Table VI — baseline training coefficients.
pub fn table6(dataset_m: &ExperimentDataset) -> Option<String> {
    let (train, _) = dataset_m.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);
    let bundle = train_all(&train)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE VI: training coefficients of HUANG, LIU, STRUNK (live)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>14} {:>14} {:>12}",
        "Model", "Host", "alpha", "beta", "C"
    );
    let h = &bundle.huang_live;
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>14.3} {:>14} {:>12.1}",
        "HUANG", "source", h.source.alpha, "-", h.source.c
    );
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>14.3} {:>14} {:>12.1}",
        "HUANG", "target", h.target.alpha, "-", h.target.c
    );
    let l = &bundle.liu_live;
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>14.3e} {:>14} {:>12.1}",
        "LIU", "source", l.source.alpha, "-", l.source.c
    );
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>14.3e} {:>14} {:>12.1}",
        "LIU", "target", l.target.alpha, "-", l.target.c
    );
    let s = &bundle.strunk_live;
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>14.3} {:>14.3} {:>12.1}",
        "STRUNK", "source", s.source.alpha_mem, s.source.beta_bw, s.source.c
    );
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>14.3} {:>14.3} {:>12.1}",
        "STRUNK", "target", s.target.alpha_mem, s.target.beta_bw, s.target.c
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(paper: HUANG src 2.27/671.92, dst 2.56/645.78; LIU src 2.43/494.2, dst 2.19/508.2;"
    );
    let _ = writeln!(
        out,
        "        STRUNK src 3.35/-3.47/201.1, dst 5.04/-0.5/201.1 -- units differ, shapes compare)"
    );
    Some(out)
}

/// Table VII — the model comparison on the m-set test runs.
pub fn table7(dataset_m: &ExperimentDataset) -> Option<String> {
    let (train, test) = dataset_m.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);
    let bundle = train_all(&train)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE VII: model comparison on m01-m02 (test runs; energies in kJ)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>11} {:>11} {:>9} {:>11} {:>11} {:>9}   (paper NRMSE nl/l)",
        "Model", "Host", "MAE(nl)", "RMSE(nl)", "NRMSE(nl)", "MAE(l)", "RMSE(l)", "NRMSE(l)"
    );

    let models_non_live: Vec<&dyn EnergyModel> = vec![
        &bundle.wavm3_non_live,
        &bundle.huang_non_live,
        &bundle.liu_non_live,
        &bundle.strunk_non_live,
    ];
    let models_live: Vec<&dyn EnergyModel> = vec![
        &bundle.wavm3_live,
        &bundle.huang_live,
        &bundle.liu_live,
        &bundle.strunk_live,
    ];
    let rows_nl = evaluate_models(&models_non_live, &test);
    let rows_l = evaluate_models(&models_live, &test);
    // Live residual diagnostics: per-run energy residuals for all four
    // models and per-sample per-phase power residuals for the
    // power-granular ones, streamed into the metrics registry (no-op
    // without a metrics session; main-thread, so fully deterministic).
    let power_non_live: Vec<&dyn PowerModel> = vec![&bundle.wavm3_non_live, &bundle.huang_non_live];
    let power_live: Vec<&dyn PowerModel> = vec![&bundle.wavm3_live, &bundle.huang_live];
    stream_model_diagnostics(
        &models_non_live,
        &power_non_live,
        MigrationKind::NonLive,
        &test,
    );
    stream_model_diagnostics(&models_live, &power_live, MigrationKind::Live, &test);
    for (i, name) in ["WAVM3", "HUANG", "LIU", "STRUNK"].iter().enumerate() {
        for role in HostRole::ALL {
            let nl = rows_nl
                .iter()
                .find(|r| r.model == *name && r.role == role && r.kind == MigrationKind::NonLive);
            let l = rows_l
                .iter()
                .find(|r| r.model == *name && r.role == role && r.kind == MigrationKind::Live);
            let p = paper::TABLE_VII_NRMSE
                .iter()
                .find(|r| r.model == *name && r.host == role.label());
            if let (Some(nl), Some(l), Some(p)) = (nl, l, p) {
                let _ = writeln!(
                    out,
                    "{:<8} {:<7} {:>11.2} {:>11.2} {:>8.1}% {:>11.2} {:>11.2} {:>8.1}%   ({:>4.1}%/{:>4.1}%)",
                    name,
                    role.label(),
                    nl.errors.mae / 1000.0,
                    nl.errors.rmse / 1000.0,
                    nl.errors.nrmse_pct(),
                    l.errors.mae / 1000.0,
                    l.errors.rmse / 1000.0,
                    l.errors.nrmse_pct(),
                    p.non_live_pct,
                    p.live_pct
                );
            }
        }
        let _ = i;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RepetitionPolicy, RunnerConfig};

    /// A reduced campaign that still exercises every family (2 reps).
    fn small_dataset(set: MachineSet) -> ExperimentDataset {
        use crate::scenario::ExperimentFamily as F;
        let mut scenarios = Vec::new();
        for fam in [
            F::CpuloadSource,
            F::CpuloadTarget,
            F::MemloadVm,
            F::MemloadSource,
            F::MemloadTarget,
        ] {
            let mut all = Scenario::family_scenarios(fam, set);
            // Keep the extreme levels only, for speed.
            all.retain(|s| {
                s.label == "0 VM" || s.label == "8 VM" || s.label == "5%" || s.label == "95%"
            });
            scenarios.extend(all);
        }
        ExperimentDataset::collect(
            scenarios,
            &RunnerConfig {
                repetitions: RepetitionPolicy::Fixed(2),
                base_seed: 99,
                ..Default::default()
            },
        )
    }

    #[test]
    fn table2_is_static_and_complete() {
        let t = table2();
        for needle in [
            "CPULOAD-SOURCE",
            "MEMLOAD-TARGET",
            "migrating-mem",
            "m01",
            "o2",
            "Broadcom",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn tables_render_from_a_small_campaign() {
        let m = small_dataset(MachineSet::M);
        let t1 = table1(&m);
        assert!(t1.contains("CPU-intensive on SOURCE"), "{t1}");
        assert!(t1.contains("MEMORY-intensive on VM"), "{t1}");

        let t3 = table3_4(&m, MigrationKind::NonLive).unwrap();
        assert!(t3.contains("TABLE III"));
        assert!(t3.contains("transfer"));
        let t4 = table3_4(&m, MigrationKind::Live).unwrap();
        assert!(t4.contains("TABLE IV"));

        let t6 = table6(&m).unwrap();
        assert!(t6.contains("STRUNK"));

        let t7 = table7(&m).unwrap();
        assert!(t7.contains("WAVM3"));
        assert!(t7.contains("LIU"));

        let o = small_dataset(MachineSet::O);
        let t5 = table5(&m, &o).unwrap();
        assert!(t5.contains("o1-o2"));
        assert!(t5.contains("bias swap"));
    }
}
