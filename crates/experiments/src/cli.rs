//! Minimal argument parsing shared by the regeneration binaries.
//!
//! Flags: `--reps N` (fixed repetitions instead of the paper's variance
//! rule), `--seed S` (campaign seed), `--out DIR` (CSV output directory,
//! default `out/`), `--faults` (inject the light fault mix: transient link
//! degradation, pre-copy non-convergence, occasional aborts with retry),
//! the observability set: `--trace PATH` (deterministic JSONL event
//! trace), `--log-level LVL` (human console subscriber on stderr),
//! `--metrics-out PATH` (metrics snapshot + wall-clock profiling JSON),
//! `--ledger-out PATH` (per-migration energy-attribution JSONL),
//! `--html-report PATH` (self-contained HTML campaign report) and
//! `--profile-out DIR` (arms the hierarchical self-profiler and writes
//! `profile.json`, `trace.json` — Chrome `chrome://tracing` / Perfetto
//! format — and `flame.folded` — collapsed stacks for flamegraph tools),
//! plus the crash-safety set: `--checkpoint-dir DIR` (journal per-scenario
//! results), `--resume` (reload verified checkpoints instead of
//! recomputing), and `--wall-budget-s S` / `--sim-budget-s S`
//! (per-scenario runtime budgets). `--threads N` sizes the campaign's
//! worker pool (default: the machine's core count); every value produces
//! byte-identical output, and `--threads 1` is an exact serial run.
//!
//! Exit codes: `0` success, `1` runtime failure, `2` invalid flags or
//! configuration, `3` partial success (the campaign completed but at
//! least one scenario failed under supervision — see the failure report
//! in the checkpoint directory).

use crate::campaign::{Campaign, SupervisorOptions};
use crate::runner::{RepetitionPolicy, RunnerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use wavm3_faults::FaultConfig;
use wavm3_harness::Wavm3Error;
use wavm3_migration::SimulationPath;
use wavm3_obs::{Level, ObsConfig, Session};
use wavm3_simkit::SimDuration;

/// Exit code for invalid flags or configuration.
pub const EXIT_USAGE: u8 = 2;
/// Exit code for a campaign that completed with scenario failures.
pub const EXIT_PARTIAL: u8 = 3;

/// Observability flags shared by every experiment binary.
#[derive(Debug, Clone, Default)]
pub struct ObsCliOptions {
    /// `--trace PATH`: write the deterministic JSONL event trace here.
    pub trace: Option<PathBuf>,
    /// `--log-level LVL`: echo events at `LVL` and above to stderr.
    pub log_level: Option<Level>,
    /// `--metrics-out PATH`: write the metrics + profiling JSON here.
    pub metrics_out: Option<PathBuf>,
    /// `--ledger-out PATH`: write the energy-attribution JSONL here.
    pub ledger_out: Option<PathBuf>,
    /// `--html-report PATH`: write the self-contained HTML campaign
    /// report here (arms metrics and the ledger).
    pub html_report: Option<PathBuf>,
    /// `--profile-out DIR`: arm the hierarchical self-profiler and write
    /// `profile.json` / `trace.json` / `flame.folded` into this directory.
    pub profile_out: Option<PathBuf>,
}

impl ObsCliOptions {
    /// `true` when any observability sink was requested.
    pub fn any(&self) -> bool {
        self.trace.is_some()
            || self.log_level.is_some()
            || self.metrics_out.is_some()
            || self.ledger_out.is_some()
            || self.html_report.is_some()
            || self.profile_out.is_some()
    }

    /// The session configuration these flags describe.
    pub fn session_config(&self) -> ObsConfig {
        ObsConfig {
            trace: self.trace.is_some(),
            collect_level: Level::Debug,
            console: self.log_level,
            metrics: self.metrics_out.is_some() || self.html_report.is_some(),
            profiling: self.profile_out.is_some(),
            ledger: self.ledger_out.is_some() || self.html_report.is_some(),
        }
    }
}

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Runner configuration derived from the flags.
    pub runner: RunnerConfig,
    /// Where figure CSVs are written.
    pub out_dir: PathBuf,
    /// Observability sinks.
    pub obs: ObsCliOptions,
    /// Crash-safety supervision (checkpoints, resume, budgets).
    pub supervisor: SupervisorOptions,
    /// `--threads N`: worker threads for the campaign pool. `None` lets
    /// rayon size the pool from the machine's core count. Seeds are a
    /// pure function of `(scenario, rep)`, so every value — including
    /// `--threads 1` — produces byte-identical campaign output.
    pub threads: Option<usize>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            runner: RunnerConfig::default(),
            out_dir: PathBuf::from("out"),
            obs: ObsCliOptions::default(),
            supervisor: SupervisorOptions::default(),
            threads: None,
        }
    }
}

/// Parse `std::env::args`. Unknown flags abort with a usage message.
pub fn parse_args() -> CliOptions {
    parse_from(std::env::args().skip(1))
}

/// Testable core of [`parse_args`].
pub fn parse_from(args: impl Iterator<Item = String>) -> CliOptions {
    let mut opts = CliOptions::default();
    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage("--reps needs a positive integer"));
                opts.runner.repetitions = RepetitionPolicy::Fixed(v.max(1));
            }
            "--seed" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
                opts.runner.base_seed = v;
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage("--out needs a path"));
                opts.out_dir = PathBuf::from(v);
            }
            "--faults" => {
                opts.runner.faults = Some(FaultConfig::light());
            }
            "--path" => {
                let v = it.next().unwrap_or_else(|| usage("--path needs a value"));
                opts.runner.path = match v.as_str() {
                    "sampled" => SimulationPath::Sampled,
                    "analytic" => SimulationPath::Analytic,
                    other => usage(&format!(
                        "--path needs 'sampled' or 'analytic', got '{other}'"
                    )),
                };
            }
            "--trace" => {
                let v = it.next().unwrap_or_else(|| usage("--trace needs a path"));
                opts.obs.trace = Some(PathBuf::from(v));
            }
            "--log-level" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<Level>().ok())
                    .unwrap_or_else(|| {
                        usage("--log-level needs one of trace/debug/info/warn/error")
                    });
                opts.obs.log_level = Some(v);
            }
            "--metrics-out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--metrics-out needs a path"));
                opts.obs.metrics_out = Some(PathBuf::from(v));
            }
            "--ledger-out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--ledger-out needs a path"));
                opts.obs.ledger_out = Some(PathBuf::from(v));
            }
            "--html-report" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--html-report needs a path"));
                opts.obs.html_report = Some(PathBuf::from(v));
            }
            "--profile-out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--profile-out needs a directory"));
                opts.obs.profile_out = Some(PathBuf::from(v));
            }
            "--checkpoint-dir" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--checkpoint-dir needs a path"));
                opts.supervisor.checkpoint_dir = Some(PathBuf::from(v));
            }
            "--resume" => {
                opts.supervisor.resume = true;
            }
            "--threads" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|v| *v > 0)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                opts.threads = Some(v);
            }
            "--wall-budget-s" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v > 0.0)
                    .unwrap_or_else(|| usage("--wall-budget-s needs a positive number"));
                opts.supervisor.budget.wall = Some(std::time::Duration::from_secs_f64(v));
            }
            "--sim-budget-s" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .unwrap_or_else(|| usage("--sim-budget-s needs a non-negative number"));
                opts.supervisor.budget.sim = Some(SimDuration::from_secs_f64(v));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if opts.supervisor.resume && opts.supervisor.checkpoint_dir.is_none() {
        usage("--resume requires --checkpoint-dir");
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--reps N] [--seed S] [--out DIR] [--faults] \
         [--path sampled|analytic] \
         [--trace PATH] [--log-level LVL] [--metrics-out PATH] \
         [--ledger-out PATH] [--html-report PATH] [--profile-out DIR] \
         [--checkpoint-dir DIR] [--resume] [--wall-budget-s S] [--sim-budget-s S] \
         [--threads N]"
    );
    eprintln!("  default repetition policy: paper variance rule (>=10 runs, <10% variance delta)");
    eprintln!(
        "  --faults: seeded fault injection (link degradation, non-convergence, aborts+retry)"
    );
    eprintln!("  --path: integration engine; 'sampled' (default, 2 Hz meter traces) or 'analytic'");
    eprintln!("      (closed-form per-phase energies, no per-sample rows, ~100x faster)");
    eprintln!("  --trace: write a deterministic sim-time JSONL event trace");
    eprintln!("  --log-level: echo events (trace/debug/info/warn/error) to stderr");
    eprintln!("  --metrics-out: write the metrics snapshot + wall-clock profile as JSON");
    eprintln!("  --ledger-out: write the per-migration energy-attribution JSONL (deterministic)");
    eprintln!("  --html-report: write a self-contained HTML campaign report (phase energies,");
    eprintln!("      residual summaries, fault/retry counts); arms metrics + ledger");
    eprintln!("  --profile-out: arm the hierarchical self-profiler; writes profile.json (call");
    eprintln!("      tree), trace.json (Chrome trace_event) and flame.folded (collapsed stacks)");
    eprintln!("  --checkpoint-dir: journal per-scenario results for crash-safe restarts");
    eprintln!(
        "  --resume: reload verified checkpoints from --checkpoint-dir instead of re-running"
    );
    eprintln!("  --wall-budget-s / --sim-budget-s: per-scenario runtime budgets; on exhaustion");
    eprintln!("      the repetition rule is cut short and the result flagged budget_truncated");
    eprintln!("  --threads: campaign worker threads (default: machine core count); output is");
    eprintln!("      byte-identical at every thread count, --threads 1 reproduces a serial run");
    eprintln!("  exit codes: 0 ok, 1 runtime error, 2 bad flags/config, 3 partial success");
    std::process::exit(if err.is_empty() { 0 } else { EXIT_USAGE as i32 });
}

/// Run one experiment binary: parse the shared flags, build the
/// supervised [`Campaign`] (validating the runner configuration — invalid
/// configs exit with code 2 before any compute), install the requested
/// observability session around `body`, write the trace / metrics files
/// afterwards, and persist the campaign's failure report next to the
/// checkpoints. A campaign whose scenarios partially failed exits with
/// code 3; other failures are reported on stderr and exit with code 1.
pub fn run(body: impl FnOnce(&CliOptions, &Campaign) -> Result<(), Wavm3Error>) -> ExitCode {
    // Catch SIGINT/SIGTERM instead of dying mid-write: the campaign
    // drains (in-flight scenarios finish and checkpoint, queued ones are
    // skipped as recorded failures) and the run exits with the
    // partial-success code 3 — mirroring the serve crate's graceful
    // drain, and keeping `--resume` able to pick up where the interrupt
    // landed.
    wavm3_harness::signal::install();
    let opts = parse_args();
    let campaign = match Campaign::new(opts.runner, opts.supervisor.clone()) {
        Ok(campaign) => campaign,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // Pin the campaign pool to `--threads N` before any parallel work
    // starts; results never depend on the count, only throughput does.
    let pool = match rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads.unwrap_or(0))
        .build()
    {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("error: could not build thread pool: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let session = opts
        .obs
        .any()
        .then(|| Session::install(opts.obs.session_config()));

    let result = pool.install(|| body(&opts, &campaign));

    let mut sink_result: Result<(), Wavm3Error> = Ok(());
    let obs_report = session.map(Session::finish);
    if let Some(report) = &obs_report {
        if let Some(path) = &opts.obs.trace {
            match report.write_trace_jsonl(path) {
                Ok(()) => eprintln!(
                    "trace: {} events -> {}",
                    report.event_count(),
                    path.display()
                ),
                Err(e) => sink_result = Err(Wavm3Error::io_at(path, e)),
            }
        }
        if let Some(path) = &opts.obs.metrics_out {
            match report.write_metrics_json(path) {
                Ok(()) => eprintln!("metrics: {}", path.display()),
                Err(e) => sink_result = Err(Wavm3Error::io_at(path, e)),
            }
        }
        if let Some(path) = &opts.obs.ledger_out {
            match report.write_ledger_jsonl(path) {
                Ok(()) => eprintln!(
                    "ledger: {} migrations -> {}",
                    report.ledger.len(),
                    path.display()
                ),
                Err(e) => sink_result = Err(Wavm3Error::io_at(path, e)),
            }
        }
        if let Some(dir) = &opts.obs.profile_out {
            match write_profile_exports(dir, report) {
                Ok(()) => eprintln!("profile: {}", dir.display()),
                Err(e) => sink_result = Err(e),
            }
        }
        let profile = wavm3_obs::perf::summarise(&report.profiling);
        if !profile.is_empty() {
            eprint!("{profile}");
        }
    }

    let mut report = campaign.report();
    if let Some(obs) = &obs_report {
        report.profiling = obs.profiling.clone();
    }
    if let Some(signal) = wavm3_harness::signal::interrupted_by() {
        // The campaign records one failure per scenario it skipped during
        // the drain; a signal that lands after the last scenario still
        // deserves an entry so `campaign-report.json` and the exit code
        // (3, partial success) say what happened.
        if !report
            .failures
            .iter()
            .any(|f| f.message.contains("interrupted by"))
        {
            report.failures.push(crate::runner::ScenarioFailure {
                scenario: "<campaign>".to_string(),
                base_seed: campaign.runner().base_seed,
                rep: 0,
                fault_plan: None,
                message: format!("interrupted by {signal} after the last scenario completed"),
            });
        }
        eprintln!("interrupted by {signal}: campaign drained, reporting partial success");
    }
    if let (Some(path), Some(obs)) = (&opts.obs.html_report, &obs_report) {
        let html = crate::report::render_campaign_html(obs, &report);
        match crate::export::write_file(path, &html) {
            Ok(()) => eprintln!("report: {}", path.display()),
            Err(e) => sink_result = Err(e),
        }
    }
    if let Some(dir) = campaign.checkpoint_dir() {
        let path = dir.join("campaign-report.json");
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = wavm3_harness::write_atomic_str(&path, &json) {
                    eprintln!("warning: could not write campaign report: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not serialise campaign report: {e}"),
        }
    }
    if report.stats != Default::default() {
        eprintln!(
            "supervision: {} computed, {} resumed, {} quarantined, {} budget-truncated, {} failed",
            report.stats.completed,
            report.stats.resumed,
            report.stats.quarantined,
            report.stats.budget_truncated,
            report.stats.failed,
        );
    }

    match result.and(sink_result) {
        Ok(()) if !report.failures.is_empty() => {
            for failure in &report.failures {
                eprintln!(
                    "failed scenario: '{}' rep {} (seed {:#x}): {}",
                    failure.scenario, failure.rep, failure.base_seed, failure.message
                );
            }
            eprintln!(
                "partial success: {} of the campaign's scenarios failed",
                report.failures.len()
            );
            ExitCode::from(EXIT_PARTIAL)
        }
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.is_config_error() {
                ExitCode::from(EXIT_USAGE)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// Write the profiler's export files for `report` into `dir`:
/// `profile.json` (the raw call-tree snapshot), `trace.json` (Chrome
/// `trace_event` format, loadable in `chrome://tracing` / Perfetto) and
/// `flame.folded` (collapsed stacks for flamegraph tooling).
pub fn write_profile_exports(
    dir: &std::path::Path,
    report: &wavm3_obs::ObsReport,
) -> Result<(), Wavm3Error> {
    let json = serde_json::to_string_pretty(&report.perf)
        .map_err(|e| Wavm3Error::serde("perf snapshot", e))?;
    crate::export::write_file(&dir.join("profile.json"), &json)?;
    crate::export::write_file(
        &dir.join("trace.json"),
        &wavm3_obs::perf::chrome_trace(&report.perf),
    )?;
    crate::export::write_file(
        &dir.join("flame.folded"),
        &wavm3_obs::perf::collapsed_stacks(&report.perf),
    )?;
    Ok(())
}

/// Write a figure's CSV into the output directory and print its summary.
pub fn emit_figure(
    opts: &CliOptions,
    fig: &crate::figures::FigureOutput,
) -> Result<(), Wavm3Error> {
    let path = opts.out_dir.join(format!("{}.csv", fig.id));
    crate::export::write_file(&path, &fig.csv)?;
    println!("{}", fig.summary);
    println!("(series written to {})", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_paper_policy() {
        let o = parse_from(std::iter::empty());
        assert!(matches!(
            o.runner.repetitions,
            RepetitionPolicy::VarianceRule { min: 10, .. }
        ));
        assert_eq!(o.out_dir, PathBuf::from("out"));
        assert!(!o.obs.any(), "observability defaults to off");
        assert!(o.supervisor.checkpoint_dir.is_none());
        assert!(!o.supervisor.resume);
        assert_eq!(o.supervisor.budget.wall, None);
        assert_eq!(o.supervisor.budget.sim, None);
    }

    #[test]
    fn flags_parse() {
        let o = parse_from(
            ["--reps", "3", "--seed", "42", "--out", "tmpdir"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(matches!(o.runner.repetitions, RepetitionPolicy::Fixed(3)));
        assert_eq!(o.runner.base_seed, 42);
        assert_eq!(o.out_dir, PathBuf::from("tmpdir"));
    }

    #[test]
    fn path_flag_selects_the_engine() {
        let o = parse_from(std::iter::empty());
        assert_eq!(o.runner.path, SimulationPath::Sampled, "sampled by default");
        let o = parse_from(["--path", "analytic"].iter().map(|s| s.to_string()));
        assert_eq!(o.runner.path, SimulationPath::Analytic);
        let o = parse_from(["--path", "sampled"].iter().map(|s| s.to_string()));
        assert_eq!(o.runner.path, SimulationPath::Sampled);
    }

    #[test]
    fn faults_flag_switches_on_the_light_mix() {
        let o = parse_from(std::iter::empty());
        assert!(o.runner.faults.is_none(), "faults default to off");
        let o = parse_from(["--faults"].iter().map(|s| s.to_string()));
        let f = o.runner.faults.expect("--faults sets a config");
        assert!(f.is_enabled());
    }

    #[test]
    fn obs_flags_parse_and_describe_a_session() {
        let o = parse_from(
            [
                "--trace",
                "t.jsonl",
                "--log-level",
                "warn",
                "--metrics-out",
                "m.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(
            o.obs.trace.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(o.obs.log_level, Some(Level::Warn));
        assert_eq!(
            o.obs.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert!(o.obs.any());
        let cfg = o.obs.session_config();
        assert!(cfg.trace && cfg.metrics);
        assert!(!cfg.profiling, "profiling is armed by --profile-out only");
        assert_eq!(cfg.console, Some(Level::Warn));
    }

    #[test]
    fn profile_out_arms_the_profiler_only() {
        let o = parse_from(["--profile-out", "prof"].iter().map(|s| s.to_string()));
        assert_eq!(
            o.obs.profile_out.as_deref(),
            Some(std::path::Path::new("prof"))
        );
        assert!(o.obs.any());
        let cfg = o.obs.session_config();
        assert!(cfg.profiling, "--profile-out arms the self-profiler");
        assert!(!cfg.trace && !cfg.metrics && !cfg.ledger);
    }

    #[test]
    fn ledger_and_html_report_flags_arm_the_session() {
        let o = parse_from(["--ledger-out", "l.jsonl"].iter().map(|s| s.to_string()));
        assert_eq!(
            o.obs.ledger_out.as_deref(),
            Some(std::path::Path::new("l.jsonl"))
        );
        assert!(o.obs.any());
        let cfg = o.obs.session_config();
        assert!(cfg.ledger && !cfg.metrics && !cfg.trace);

        let o = parse_from(["--html-report", "r.html"].iter().map(|s| s.to_string()));
        assert_eq!(
            o.obs.html_report.as_deref(),
            Some(std::path::Path::new("r.html"))
        );
        let cfg = o.obs.session_config();
        assert!(cfg.ledger && cfg.metrics, "html report arms both sinks");
        assert!(!cfg.profiling);
    }

    #[test]
    fn threads_flag_parses() {
        let o = parse_from(std::iter::empty());
        assert_eq!(o.threads, None, "default pool size is the core count");
        let o = parse_from(["--threads", "4"].iter().map(|s| s.to_string()));
        assert_eq!(o.threads, Some(4));
        let o = parse_from(["--threads", "1"].iter().map(|s| s.to_string()));
        assert_eq!(o.threads, Some(1));
    }

    #[test]
    fn supervision_flags_parse() {
        let o = parse_from(
            [
                "--checkpoint-dir",
                "ckpt",
                "--resume",
                "--wall-budget-s",
                "1.5",
                "--sim-budget-s",
                "600",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(
            o.supervisor.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("ckpt"))
        );
        assert!(o.supervisor.resume);
        assert_eq!(
            o.supervisor.budget.wall,
            Some(std::time::Duration::from_millis(1500))
        );
        assert_eq!(o.supervisor.budget.sim, Some(SimDuration::from_secs(600)));
    }
}
