//! Minimal argument parsing shared by the regeneration binaries.
//!
//! Flags: `--reps N` (fixed repetitions instead of the paper's variance
//! rule), `--seed S` (campaign seed), `--out DIR` (CSV output directory,
//! default `out/`), `--faults` (inject the light fault mix: transient link
//! degradation, pre-copy non-convergence, occasional aborts with retry).

use crate::runner::{RepetitionPolicy, RunnerConfig};
use std::path::PathBuf;
use wavm3_faults::FaultConfig;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Runner configuration derived from the flags.
    pub runner: RunnerConfig,
    /// Where figure CSVs are written.
    pub out_dir: PathBuf,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            runner: RunnerConfig::default(),
            out_dir: PathBuf::from("out"),
        }
    }
}

/// Parse `std::env::args`. Unknown flags abort with a usage message.
pub fn parse_args() -> CliOptions {
    parse_from(std::env::args().skip(1))
}

/// Testable core of [`parse_args`].
pub fn parse_from(args: impl Iterator<Item = String>) -> CliOptions {
    let mut opts = CliOptions::default();
    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage("--reps needs a positive integer"));
                opts.runner.repetitions = RepetitionPolicy::Fixed(v.max(1));
            }
            "--seed" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
                opts.runner.base_seed = v;
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage("--out needs a path"));
                opts.out_dir = PathBuf::from(v);
            }
            "--faults" => {
                opts.runner.faults = Some(FaultConfig::light());
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <bin> [--reps N] [--seed S] [--out DIR] [--faults]");
    eprintln!("  default repetition policy: paper variance rule (>=10 runs, <10% variance delta)");
    eprintln!(
        "  --faults: seeded fault injection (link degradation, non-convergence, aborts+retry)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Write a figure's CSV into the output directory and print its summary.
pub fn emit_figure(opts: &CliOptions, fig: &crate::figures::FigureOutput) {
    std::fs::create_dir_all(&opts.out_dir).expect("create output directory");
    let path = opts.out_dir.join(format!("{}.csv", fig.id));
    std::fs::write(&path, &fig.csv).expect("write figure CSV");
    println!("{}", fig.summary);
    println!("(series written to {})", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_paper_policy() {
        let o = parse_from(std::iter::empty());
        assert!(matches!(
            o.runner.repetitions,
            RepetitionPolicy::VarianceRule { min: 10, .. }
        ));
        assert_eq!(o.out_dir, PathBuf::from("out"));
    }

    #[test]
    fn flags_parse() {
        let o = parse_from(
            ["--reps", "3", "--seed", "42", "--out", "tmpdir"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(matches!(o.runner.repetitions, RepetitionPolicy::Fixed(3)));
        assert_eq!(o.runner.base_seed, 42);
        assert_eq!(o.out_dir, PathBuf::from("tmpdir"));
    }

    #[test]
    fn faults_flag_switches_on_the_light_mix() {
        let o = parse_from(std::iter::empty());
        assert!(o.runner.faults.is_none(), "faults default to off");
        let o = parse_from(["--faults"].iter().map(|s| s.to_string()));
        let f = o.runner.faults.expect("--faults sets a config");
        assert!(f.is_enabled());
    }
}
