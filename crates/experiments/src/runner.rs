//! Experiment execution with the paper's repetition protocol.
//!
//! §V-B: *"we repeat each experiment until the difference in variance
//! between one run and the previous runs becomes less than 10 %, resulting
//! in at least ten runs for each experiment."* The repetition criterion is
//! applied to the run's total source-side migration energy.
//!
//! Scenarios are independent, so [`run_all`] fans them out over rayon;
//! every run is seeded as `base.child(scenario-id hash).child(rep)`, making
//! results identical regardless of the thread count.

use crate::scenario::Scenario;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wavm3_faults::{FaultConfig, RetryPolicy};
use wavm3_migration::{MigrationConfig, MigrationRecord};
use wavm3_simkit::{RngFactory, SimDuration};
use wavm3_stats::VarianceStopper;

/// How many repetitions to run per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepetitionPolicy {
    /// Exactly `n` repetitions (fast paths, benches).
    Fixed(usize),
    /// The paper's rule: at least `min`, stop when the variance of the
    /// total migration energy changes by less than `threshold`, hard cap
    /// at `max`.
    VarianceRule {
        /// Minimum repetitions (paper: 10).
        min: usize,
        /// Hard cap.
        max: usize,
        /// Relative variance-change threshold (paper: 0.10).
        threshold: f64,
    },
}

impl RepetitionPolicy {
    /// The paper's protocol.
    pub fn paper() -> Self {
        RepetitionPolicy::VarianceRule {
            min: 10,
            max: 15,
            threshold: 0.10,
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Repetition policy.
    pub repetitions: RepetitionPolicy,
    /// Root seed of the whole campaign.
    pub base_seed: u64,
    /// Fault injection: `None` (the default) runs the engine exactly as it
    /// behaved before the fault subsystem existed.
    pub faults: Option<FaultConfig>,
    /// Retry policy for aborted runs (only consulted when faults are on).
    pub retry: RetryPolicy,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            repetitions: RepetitionPolicy::paper(),
            base_seed: 0xC1A5_7E01,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }
}

fn scenario_rng(cfg: &RunnerConfig, scenario: &Scenario) -> RngFactory {
    // Hash the scenario id into a child scope so adding scenarios never
    // perturbs the seeds of existing ones.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scenario.id().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    RngFactory::new(cfg.base_seed).child(h)
}

/// One repetition, with the runner's retry-on-abort protocol.
///
/// Attempt 0 draws from `scope.child(rep)` — with faults off this is the
/// exact pre-fault seeding, so a `faults: None` campaign is bit-identical
/// to one produced before the subsystem existed. Attempt `k > 0` draws from
/// `scope.child(rep).child(k)`, an independent stream of the same rep.
///
/// The returned record is the last attempt's, annotated with the retry
/// history: the fault events of failed attempts are carried forward (in
/// attempt order), their whole measured energy is charged to the final
/// record's `rollback_j` (energy spent and rolled back), and
/// `retry_backoff` accumulates the exponential backoff simulated between
/// attempts.
/// Trace run key of one attempt: sorts by scenario, then repetition, then
/// attempt, giving the merged JSONL stream its deterministic order.
fn run_key(scenario: &Scenario, rep: u64, attempt: u32) -> String {
    format!("{}|rep{rep:03}|att{attempt}", scenario.id())
}

fn run_repetition(
    scenario: &Scenario,
    cfg: &RunnerConfig,
    scope: &RngFactory,
    rep: u64,
) -> MigrationRecord {
    let _timer = wavm3_obs::profile::stage("runner.repetition");
    let faults = match cfg.faults {
        Some(f) if f.is_enabled() => f,
        _ => {
            return wavm3_obs::run_scope(run_key(scenario, rep, 0), || {
                scenario.build(scope.child(rep)).run()
            })
        }
    };
    let max_attempts = cfg.retry.max_attempts.max(1);
    let mut carried_events = Vec::new();
    let mut wasted_source_j = 0.0;
    let mut wasted_target_j = 0.0;
    let mut backoff = SimDuration::ZERO;
    let mut attempt = 0u32;
    loop {
        let rng = if attempt == 0 {
            scope.child(rep)
        } else {
            scope.child(rep).child(attempt as u64)
        };
        let config = MigrationConfig::with_faults(scenario.kind, faults);
        // The whole attempt (including the retry decision) runs inside its
        // run scope so every event lands in the attempt's own buffer —
        // worker threads never write the shared root buffer.
        let (done, mut record) = wavm3_obs::run_scope(run_key(scenario, rep, attempt), || {
            let mut record = scenario.build_with_config(rng, config).run();
            record.attempt = attempt;
            record.retry_backoff = backoff;
            if !carried_events.is_empty() {
                carried_events.append(&mut record.fault_events);
                record.fault_events = std::mem::take(&mut carried_events);
            }
            let done = !record.is_aborted() || attempt + 1 >= max_attempts;
            if !done {
                wavm3_obs::metrics::counter_add("runner.retries", 1);
                wavm3_obs::event!(
                    wavm3_obs::Level::Warn, "wavm3_experiments", "runner.retry",
                    record.phases.me,
                    "attempt" => attempt,
                    "next_backoff_s" => cfg.retry.backoff_before(attempt + 1).as_secs_f64(),
                );
            }
            (done, record)
        });
        if done {
            record.source_energy.rollback_j += wasted_source_j;
            record.target_energy.rollback_j += wasted_target_j;
            return record;
        }
        wasted_source_j += record.source_energy.total_j();
        wasted_target_j += record.target_energy.total_j();
        carried_events = record.fault_events;
        attempt += 1;
        backoff += cfg.retry.backoff_before(attempt);
    }
}

/// Run one scenario under the repetition policy.
pub fn run_scenario(scenario: &Scenario, cfg: &RunnerConfig) -> Vec<MigrationRecord> {
    let _timer = wavm3_obs::profile::stage("runner.scenario");
    let scope = scenario_rng(cfg, scenario);
    let records = match cfg.repetitions {
        RepetitionPolicy::Fixed(n) => (0..n)
            .map(|rep| run_repetition(scenario, cfg, &scope, rep as u64))
            .collect(),
        RepetitionPolicy::VarianceRule {
            min,
            max,
            threshold,
        } => {
            // Progress events collect under their own run key ("z-" sorts
            // after every "repNNN" buffer of the same scenario).
            wavm3_obs::run_scope(format!("{}|z-progress", scenario.id()), || {
                let mut stopper = VarianceStopper::new(min.max(2), max.max(min.max(2)), threshold);
                let mut records = Vec::new();
                let mut rep = 0u64;
                while !stopper.is_satisfied() {
                    let record = run_repetition(scenario, cfg, &scope, rep);
                    stopper.push(record.source_energy.total_j());
                    wavm3_obs::event!(
                        wavm3_obs::Level::Debug, "wavm3_experiments", "runner.variance_progress",
                        record.phases.me,
                        "rep" => rep,
                        "runs" => stopper.runs() as u64,
                        "source_energy_j" => record.source_energy.total_j(),
                        "relative_change" => stopper.relative_change().unwrap_or(f64::NAN),
                        "satisfied" => stopper.is_satisfied(),
                    );
                    records.push(record);
                    rep += 1;
                }
                records
            })
        }
    };
    wavm3_obs::metrics::counter_add("runner.repetitions", records.len() as u64);
    records
}

/// Run many scenarios in parallel; output order matches input order.
pub fn run_all(scenarios: &[Scenario], cfg: &RunnerConfig) -> Vec<Vec<MigrationRecord>> {
    let _timer = wavm3_obs::profile::stage("runner.campaign");
    let started = std::time::Instant::now();
    let results: Vec<Vec<MigrationRecord>> =
        scenarios.par_iter().map(|s| run_scenario(s, cfg)).collect();
    // Wall-clock campaign throughput: explicitly non-reproducible, which
    // is why it lives in a gauge and never in the trace.
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 {
        let runs: usize = results.iter().map(Vec::len).sum();
        wavm3_obs::metrics::gauge_set("runner.throughput_runs_per_s", runs as f64 / elapsed);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ExperimentFamily, Scenario};
    use wavm3_cluster::MachineSet;
    use wavm3_migration::MigrationKind;

    fn cheap_scenario() -> Scenario {
        Scenario {
            family: ExperimentFamily::CpuloadSource,
            kind: MigrationKind::NonLive,
            machine_set: MachineSet::M,
            source_load_vms: 0,
            target_load_vms: 0,
            migrant_mem_ratio: None,
            label: "0 VM".into(),
        }
    }

    #[test]
    fn fixed_policy_runs_exact_count() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(3),
            base_seed: 1,
            ..Default::default()
        };
        let records = run_scenario(&cheap_scenario(), &cfg);
        assert_eq!(records.len(), 3);
        // Repetitions differ (noise seeds differ)…
        assert_ne!(records[0].source_trace, records[1].source_trace);
        // …but re-running the whole scenario reproduces everything.
        let again = run_scenario(&cheap_scenario(), &cfg);
        assert_eq!(records[0].source_trace, again[0].source_trace);
        assert_eq!(records[2].total_bytes, again[2].total_bytes);
    }

    #[test]
    fn variance_rule_reaches_min_runs() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::VarianceRule {
                min: 4,
                max: 8,
                threshold: 0.5,
            },
            base_seed: 2,
            ..Default::default()
        };
        let records = run_scenario(&cheap_scenario(), &cfg);
        assert!(
            records.len() >= 4 && records.len() <= 8,
            "{}",
            records.len()
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let scenarios = vec![cheap_scenario(), {
            let mut s = cheap_scenario();
            s.kind = MigrationKind::Live;
            s.label = "0 VM live".into();
            s
        }];
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: 3,
            ..Default::default()
        };
        let par = run_all(&scenarios, &cfg);
        let seq: Vec<Vec<MigrationRecord>> =
            scenarios.iter().map(|s| run_scenario(s, &cfg)).collect();
        assert_eq!(par, seq, "rayon fan-out must not change results");
    }

    #[test]
    fn aborted_runs_retry_and_carry_their_history() {
        use wavm3_faults::{AbortFault, LinkFaultConfig};
        use wavm3_simkit::SimTime;

        let mut scenario = cheap_scenario();
        scenario.kind = MigrationKind::Live;
        scenario.label = "0 VM live".into();
        // Link degradation on every run plus a likely (but not certain)
        // abort: most repetitions fail at least once and then complete on a
        // retry drawn from an independent stream.
        let faults = FaultConfig {
            link: LinkFaultConfig {
                mean_windows: 2.0,
                ..LinkFaultConfig::default()
            },
            abort: AbortFault {
                probability: 0.7,
                earliest: SimTime::from_secs(16),
                latest: SimTime::from_secs(45),
            },
            ..FaultConfig::default()
        };
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(6),
            base_seed: 9,
            faults: Some(faults),
            ..Default::default()
        };
        let records = run_scenario(&scenario, &cfg);
        assert_eq!(records.len(), 6);
        let retried = records
            .iter()
            .find(|r| r.attempt > 0 && !r.is_aborted())
            .expect("some repetition should complete via retry");
        // The final record carries the failed attempts' events and charges
        // their whole spent energy as rollback.
        assert!(retried
            .fault_events
            .iter()
            .any(|e| matches!(e, wavm3_faults::FaultEvent::Aborted { .. })));
        assert!(retried.rollback_energy_j() > 0.0);
        assert!(retried.retry_backoff > SimDuration::ZERO);
        assert!(records.iter().all(|r| r.attempt < cfg.retry.max_attempts));
        // The retry protocol is as reproducible as everything else.
        let again = run_scenario(&scenario, &cfg);
        assert_eq!(records, again);
    }

    #[test]
    fn faults_off_reproduces_the_pre_fault_campaign_exactly() {
        // `faults: None` and `faults: Some(disabled)` must both take the
        // plain path: same seeds, same records.
        let base = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: 5,
            ..Default::default()
        };
        let with_disabled = RunnerConfig {
            faults: Some(FaultConfig::default()),
            ..base
        };
        assert_eq!(
            run_scenario(&cheap_scenario(), &base),
            run_scenario(&cheap_scenario(), &with_disabled)
        );
    }

    #[test]
    fn seeds_differ_between_scenarios() {
        let a = cheap_scenario();
        let mut b = cheap_scenario();
        b.source_load_vms = 1;
        b.label = "1 VM".into();
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(1),
            base_seed: 4,
            ..Default::default()
        };
        let ra = run_scenario(&a, &cfg);
        let rb = run_scenario(&b, &cfg);
        assert_ne!(ra[0].source_trace, rb[0].source_trace);
    }
}
