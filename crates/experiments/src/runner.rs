//! Experiment execution with the paper's repetition protocol.
//!
//! §V-B: *"we repeat each experiment until the difference in variance
//! between one run and the previous runs becomes less than 10 %, resulting
//! in at least ten runs for each experiment."* The repetition criterion is
//! applied to the run's total source-side migration energy.
//!
//! Scenarios are independent, so [`run_all`] fans them out over rayon;
//! every run is seeded as `base.child(scenario-id hash).child(rep)`, making
//! results identical regardless of the thread count.

use crate::scenario::Scenario;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wavm3_migration::MigrationRecord;
use wavm3_simkit::RngFactory;
use wavm3_stats::VarianceStopper;

/// How many repetitions to run per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepetitionPolicy {
    /// Exactly `n` repetitions (fast paths, benches).
    Fixed(usize),
    /// The paper's rule: at least `min`, stop when the variance of the
    /// total migration energy changes by less than `threshold`, hard cap
    /// at `max`.
    VarianceRule {
        /// Minimum repetitions (paper: 10).
        min: usize,
        /// Hard cap.
        max: usize,
        /// Relative variance-change threshold (paper: 0.10).
        threshold: f64,
    },
}

impl RepetitionPolicy {
    /// The paper's protocol.
    pub fn paper() -> Self {
        RepetitionPolicy::VarianceRule {
            min: 10,
            max: 15,
            threshold: 0.10,
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Repetition policy.
    pub repetitions: RepetitionPolicy,
    /// Root seed of the whole campaign.
    pub base_seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            repetitions: RepetitionPolicy::paper(),
            base_seed: 0xC1A5_7E01,
        }
    }
}

fn scenario_rng(cfg: &RunnerConfig, scenario: &Scenario) -> RngFactory {
    // Hash the scenario id into a child scope so adding scenarios never
    // perturbs the seeds of existing ones.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scenario.id().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    RngFactory::new(cfg.base_seed).child(h)
}

/// Run one scenario under the repetition policy.
pub fn run_scenario(scenario: &Scenario, cfg: &RunnerConfig) -> Vec<MigrationRecord> {
    let scope = scenario_rng(cfg, scenario);
    match cfg.repetitions {
        RepetitionPolicy::Fixed(n) => (0..n)
            .map(|rep| scenario.build(scope.child(rep as u64)).run())
            .collect(),
        RepetitionPolicy::VarianceRule { min, max, threshold } => {
            let mut stopper = VarianceStopper::new(min.max(2), max.max(min.max(2)), threshold);
            let mut records = Vec::new();
            let mut rep = 0u64;
            while !stopper.is_satisfied() {
                let record = scenario.build(scope.child(rep)).run();
                stopper.push(record.source_energy.total_j());
                records.push(record);
                rep += 1;
            }
            records
        }
    }
}

/// Run many scenarios in parallel; output order matches input order.
pub fn run_all(scenarios: &[Scenario], cfg: &RunnerConfig) -> Vec<Vec<MigrationRecord>> {
    scenarios
        .par_iter()
        .map(|s| run_scenario(s, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ExperimentFamily, Scenario};
    use wavm3_cluster::MachineSet;
    use wavm3_migration::MigrationKind;

    fn cheap_scenario() -> Scenario {
        Scenario {
            family: ExperimentFamily::CpuloadSource,
            kind: MigrationKind::NonLive,
            machine_set: MachineSet::M,
            source_load_vms: 0,
            target_load_vms: 0,
            migrant_mem_ratio: None,
            label: "0 VM".into(),
        }
    }

    #[test]
    fn fixed_policy_runs_exact_count() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(3),
            base_seed: 1,
        };
        let records = run_scenario(&cheap_scenario(), &cfg);
        assert_eq!(records.len(), 3);
        // Repetitions differ (noise seeds differ)…
        assert_ne!(records[0].source_trace, records[1].source_trace);
        // …but re-running the whole scenario reproduces everything.
        let again = run_scenario(&cheap_scenario(), &cfg);
        assert_eq!(records[0].source_trace, again[0].source_trace);
        assert_eq!(records[2].total_bytes, again[2].total_bytes);
    }

    #[test]
    fn variance_rule_reaches_min_runs() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::VarianceRule {
                min: 4,
                max: 8,
                threshold: 0.5,
            },
            base_seed: 2,
        };
        let records = run_scenario(&cheap_scenario(), &cfg);
        assert!(records.len() >= 4 && records.len() <= 8, "{}", records.len());
    }

    #[test]
    fn parallel_matches_sequential() {
        let scenarios = vec![cheap_scenario(), {
            let mut s = cheap_scenario();
            s.kind = MigrationKind::Live;
            s.label = "0 VM live".into();
            s
        }];
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: 3,
        };
        let par = run_all(&scenarios, &cfg);
        let seq: Vec<Vec<MigrationRecord>> = scenarios
            .iter()
            .map(|s| run_scenario(s, &cfg))
            .collect();
        assert_eq!(par, seq, "rayon fan-out must not change results");
    }

    #[test]
    fn seeds_differ_between_scenarios() {
        let a = cheap_scenario();
        let mut b = cheap_scenario();
        b.source_load_vms = 1;
        b.label = "1 VM".into();
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(1),
            base_seed: 4,
        };
        let ra = run_scenario(&a, &cfg);
        let rb = run_scenario(&b, &cfg);
        assert_ne!(ra[0].source_trace, rb[0].source_trace);
    }
}
