//! Experiment execution with the paper's repetition protocol.
//!
//! §V-B: *"we repeat each experiment until the difference in variance
//! between one run and the previous runs becomes less than 10 %, resulting
//! in at least ten runs for each experiment."* The repetition criterion is
//! applied to the run's total source-side migration energy.
//!
//! Scenarios are independent, so [`run_all`] fans them out over rayon —
//! and repetitions within a scenario shard over the same pool: every run
//! is seeded as `base.child(scenario-id hash).child(rep)`, a pure
//! function of the campaign structure, so results are identical
//! regardless of the thread count or execution order.
//!
//! ## The hot path
//!
//! On the analytic path (with no trace sink recording) a scenario builds
//! one prototype [`MigrationSimulation`] and re-runs it for every
//! repetition with that repetition's RNG root, threading a worker-local
//! [`RunSlot`] arena through
//! [`MigrationSimulation::run_analytic_reusing`] so the steady-state
//! loop performs no heap allocation. Run keys and panic contexts are
//! built lazily ([`wavm3_obs::run_scope_with`],
//! [`wavm3_harness::run_isolated_with`]), so with observability off a
//! repetition costs the simulation itself and nothing else.

use crate::scenario::Scenario;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use wavm3_faults::{FaultConfig, FaultPlan, RetryPolicy};
use wavm3_harness::{Budget, BudgetTracker, Wavm3Error};
use wavm3_migration::{
    MigrationConfig, MigrationRecord, MigrationSimulation, RunSlot, SimulationPath,
};
use wavm3_simkit::{RngFactory, SimDuration, SimTime};
use wavm3_stats::VarianceStopper;

thread_local! {
    /// Each rayon worker's recycled analytic-run buffers. Capacity is
    /// retained across every repetition the worker executes; results
    /// never depend on what the buffers held before.
    static RUN_SLOT: RefCell<RunSlot> = RefCell::new(RunSlot::default());
}

/// How many repetitions to run per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepetitionPolicy {
    /// Exactly `n` repetitions (fast paths, benches).
    Fixed(usize),
    /// The paper's rule: at least `min`, stop when the variance of the
    /// total migration energy changes by less than `threshold`, hard cap
    /// at `max`.
    VarianceRule {
        /// Minimum repetitions (paper: 10).
        min: usize,
        /// Hard cap.
        max: usize,
        /// Relative variance-change threshold (paper: 0.10).
        threshold: f64,
    },
}

impl RepetitionPolicy {
    /// The paper's protocol.
    pub fn paper() -> Self {
        RepetitionPolicy::VarianceRule {
            min: 10,
            max: 15,
            threshold: 0.10,
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Repetition policy.
    pub repetitions: RepetitionPolicy,
    /// Root seed of the whole campaign.
    pub base_seed: u64,
    /// Fault injection: `None` (the default) runs the engine exactly as it
    /// behaved before the fault subsystem existed.
    pub faults: Option<FaultConfig>,
    /// Retry policy for aborted runs (only consulted when faults are on).
    pub retry: RetryPolicy,
    /// Which integration engine every repetition runs on. The default
    /// ([`SimulationPath::Sampled`]) reproduces the pre-analytic campaign
    /// bit for bit; [`SimulationPath::Analytic`] trades the 2 Hz meter
    /// traces for closed-form per-phase energies (see
    /// `wavm3_migration::analytic`).
    pub path: SimulationPath,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            repetitions: RepetitionPolicy::paper(),
            base_seed: 0xC1A5_7E01,
            faults: None,
            retry: RetryPolicy::default(),
            path: SimulationPath::Sampled,
        }
    }
}

impl RunnerConfig {
    /// Reject impossible repetition policies (zero repetitions, inverted
    /// `min > max`, NaN / non-positive variance thresholds), invalid
    /// retry parameters, and any invalid fault configuration — before a
    /// campaign starts, not ten scenarios into it.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        match self.repetitions {
            RepetitionPolicy::Fixed(n) => {
                if n == 0 {
                    return Err(Wavm3Error::invalid_config(
                        "runner.repetitions",
                        "fixed policy needs at least one repetition",
                    ));
                }
            }
            RepetitionPolicy::VarianceRule {
                min,
                max,
                threshold,
            } => {
                if min == 0 {
                    return Err(Wavm3Error::invalid_config(
                        "runner.repetitions.min",
                        "variance rule needs at least one repetition",
                    ));
                }
                if min > max {
                    return Err(Wavm3Error::invalid_config(
                        "runner.repetitions.min",
                        format!("must not exceed max ({min} > {max})"),
                    ));
                }
                if !threshold.is_finite() || threshold <= 0.0 {
                    return Err(Wavm3Error::invalid_config(
                        "runner.repetitions.threshold",
                        format!("variance threshold must be finite and positive, got {threshold}"),
                    ));
                }
            }
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        self.retry.validate()
    }
}

/// One scenario's supervised outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The completed repetitions (in repetition order).
    pub records: Vec<MigrationRecord>,
    /// `true` when a wall-clock or sim-time budget cut the repetition
    /// policy short: the records are valid but fewer than the policy
    /// asked for, and the scenario should not be checkpointed as done.
    pub budget_truncated: bool,
}

/// A scenario that panicked under supervision, recorded with everything
/// needed to reproduce the panic deterministically: the scenario id, the
/// campaign seed, the poisoned repetition, and the fault plan that
/// repetition drew (when fault injection was on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioFailure {
    /// Scenario id (`family/kind/set/label`).
    pub scenario: String,
    /// Campaign base seed; `base.child(hash(scenario)).child(rep)` replays
    /// the poisoned repetition exactly.
    pub base_seed: u64,
    /// The repetition that panicked.
    pub rep: u64,
    /// The fault plan attempt 0 of that repetition drew, if it could be
    /// regenerated (a planner panic leaves it `None`).
    pub fault_plan: Option<FaultPlan>,
    /// The captured panic message.
    pub message: String,
}

impl ScenarioFailure {
    fn capture(
        scenario: &Scenario,
        cfg: &RunnerConfig,
        scope: &RngFactory,
        rep: u64,
        error: &Wavm3Error,
    ) -> Box<ScenarioFailure> {
        // Re-draw the poisoned repetition's fault plan for the report;
        // guarded, because a planner panic is one of the failure modes
        // being reported.
        let fault_plan = cfg.faults.filter(|f| f.is_enabled()).and_then(|faults| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                FaultPlan::generate(&faults, &scope.child(rep))
            }))
            .ok()
        });
        let message = match error {
            Wavm3Error::ScenarioPanicked { message, .. } => message.clone(),
            other => other.to_string(),
        };
        Box::new(ScenarioFailure {
            scenario: scenario.id(),
            base_seed: cfg.base_seed,
            rep,
            fault_plan,
            message,
        })
    }
}

fn scenario_rng(cfg: &RunnerConfig, id: &str) -> RngFactory {
    // Hash the scenario id into a child scope so adding scenarios never
    // perturbs the seeds of existing ones.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    RngFactory::new(cfg.base_seed).child(h)
}

/// Trace run key of one attempt: sorts by scenario, then repetition, then
/// attempt, giving the merged JSONL stream its deterministic order.
fn run_key(id: &str, rep: u64, attempt: u32) -> String {
    format!("{id}|rep{rep:03}|att{attempt}")
}

/// Everything a scenario's repetitions share, computed exactly once: the
/// id string, the RNG scope, the migration config, and — on the analytic
/// path with no trace sink recording — a prototype simulation that every
/// repetition re-runs with its own RNG root instead of rebuilding the
/// cluster, workloads and config from scratch.
struct ScenarioCtx<'a> {
    scenario: &'a Scenario,
    cfg: &'a RunnerConfig,
    id: String,
    scope: RngFactory,
    config: MigrationConfig,
    /// Fault config when injection is enabled (the retry protocol only
    /// engages on this path).
    faults: Option<FaultConfig>,
    prototype: Option<MigrationSimulation>,
}

impl<'a> ScenarioCtx<'a> {
    fn new(scenario: &'a Scenario, cfg: &'a RunnerConfig) -> Self {
        let id = scenario.id();
        let scope = scenario_rng(cfg, &id);
        let faults = cfg.faults.filter(|f| f.is_enabled());
        let mut config = match faults {
            Some(f) => MigrationConfig::with_faults(scenario.kind, f),
            None => MigrationConfig::new(scenario.kind),
        };
        config.path = cfg.path;
        // Mirror `MigrationSimulation::run`'s dispatch: the analytic path
        // only runs when no trace sink needs per-sample rows. The stored
        // RNG is a placeholder — `run_analytic_reusing` takes the real
        // per-repetition root as an argument. A panic during construction
        // falls back to the per-repetition build, where supervision
        // captures it as a structured rep-0 failure exactly as before.
        let prototype = if cfg.path == SimulationPath::Analytic && !wavm3_obs::tracing_active() {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                scenario.build_with_config(scope.child(0), config)
            }))
            .ok()
        } else {
            None
        };
        ScenarioCtx {
            scenario,
            cfg,
            id,
            scope,
            config,
            faults,
            prototype,
        }
    }

    /// One simulation run with the given RNG root — through the
    /// prototype and the worker's recycled [`RunSlot`] when eligible,
    /// otherwise the classic build-and-run (bit-identical either way).
    fn run_once(&self, rng: RngFactory) -> MigrationRecord {
        match &self.prototype {
            Some(sim) => {
                RUN_SLOT.with(|slot| sim.run_analytic_reusing(rng, &mut slot.borrow_mut()))
            }
            None => self.scenario.build_with_config(rng, self.config).run(),
        }
    }
}

/// One repetition, with the runner's retry-on-abort protocol.
///
/// Attempt 0 draws from `scope.child(rep)` — with faults off this is the
/// exact pre-fault seeding, so a `faults: None` campaign is bit-identical
/// to one produced before the subsystem existed. Attempt `k > 0` draws from
/// `scope.child(rep).child(k)`, an independent stream of the same rep.
///
/// The returned record is the last attempt's, annotated with the retry
/// history: the fault events of failed attempts are carried forward (in
/// attempt order), their whole measured energy is charged to the final
/// record's `rollback_j` (energy spent and rolled back), and
/// `retry_backoff` accumulates the exponential backoff simulated between
/// attempts.
fn run_repetition(ctx: &ScenarioCtx, rep: u64) -> MigrationRecord {
    let _timer = wavm3_obs::perf::scope("runner.repetition");
    if ctx.faults.is_none() {
        return wavm3_obs::run_scope_with(
            || run_key(&ctx.id, rep, 0),
            || ctx.run_once(ctx.scope.child(rep)),
        );
    }
    let max_attempts = ctx.cfg.retry.max_attempts.max(1);
    let mut carried_events = Vec::new();
    let mut wasted_source_j = 0.0;
    let mut wasted_target_j = 0.0;
    let mut backoff = SimDuration::ZERO;
    let mut attempt = 0u32;
    loop {
        let rng = if attempt == 0 {
            ctx.scope.child(rep)
        } else {
            ctx.scope.child(rep).child(attempt as u64)
        };
        // The whole attempt (including the retry decision) runs inside its
        // run scope so every event lands in the attempt's own buffer —
        // worker threads never write the shared root buffer.
        let (done, mut record) = wavm3_obs::run_scope_with(
            || run_key(&ctx.id, rep, attempt),
            || {
                let mut record = ctx.run_once(rng);
                record.attempt = attempt;
                record.retry_backoff = backoff;
                if !carried_events.is_empty() {
                    carried_events.append(&mut record.fault_events);
                    record.fault_events = std::mem::take(&mut carried_events);
                }
                let done = !record.is_aborted() || attempt + 1 >= max_attempts;
                if !done {
                    wavm3_obs::metrics::counter_add("runner.retries", 1);
                    wavm3_obs::event!(
                        wavm3_obs::Level::Warn, "wavm3_experiments", "runner.retry",
                        record.phases.me,
                        "attempt" => attempt,
                        "next_backoff_s" => ctx.cfg.retry.backoff_before(attempt + 1).as_secs_f64(),
                    );
                }
                (done, record)
            },
        );
        if done {
            record.source_energy.rollback_j += wasted_source_j;
            record.target_energy.rollback_j += wasted_target_j;
            return record;
        }
        wasted_source_j += record.source_energy.total_j();
        wasted_target_j += record.target_energy.total_j();
        carried_events = record.fault_events;
        attempt += 1;
        backoff += ctx.cfg.retry.backoff_before(attempt);
    }
}

/// Run one scenario under the repetition policy (panics propagate; see
/// [`run_scenario_supervised`] for the isolated variant).
pub fn run_scenario(scenario: &Scenario, cfg: &RunnerConfig) -> Vec<MigrationRecord> {
    match run_scenario_supervised(scenario, cfg, &Budget::UNLIMITED) {
        Ok(result) => result.records,
        Err(failure) => panic!(
            "scenario '{}' rep {} panicked: {}",
            failure.scenario, failure.rep, failure.message
        ),
    }
}

/// Run one scenario under the repetition policy with crash supervision:
///
/// * every repetition runs under `catch_unwind`, so a poisoned scenario
///   comes back as a structured [`ScenarioFailure`] instead of tearing
///   down the rayon pool;
/// * `budget` caps the scenario's wall-clock and accumulated sim time —
///   on exhaustion the repetition policy is cut short at the current
///   count (at least one repetition always runs) and the result is
///   flagged `budget_truncated` rather than dropped.
///
/// With [`Budget::UNLIMITED`] and no panic, the records — and the trace
/// events, run-scope keys and metrics they emit — are bit-identical to
/// the unsupervised path.
pub fn run_scenario_supervised(
    scenario: &Scenario,
    cfg: &RunnerConfig,
    budget: &Budget,
) -> Result<ScenarioResult, Box<ScenarioFailure>> {
    let _timer = wavm3_obs::perf::scope("runner.scenario");
    let ctx = ScenarioCtx::new(scenario, cfg);
    let mut tracker = BudgetTracker::start(*budget);
    let mut truncated = false;

    // One isolated repetition: panics become taxonomy errors, completed
    // runs charge their simulated span (start to end of measurement) to
    // the budget.
    let supervised_rep =
        |rep: u64, tracker: &mut BudgetTracker| -> Result<MigrationRecord, Box<ScenarioFailure>> {
            match wavm3_harness::run_isolated_with(
                || format!("{}|rep{rep:03}", ctx.id),
                || run_repetition(&ctx, rep),
            ) {
                Ok(record) => {
                    tracker.charge_sim(record.phases.me.saturating_since(SimTime::ZERO));
                    Ok(record)
                }
                Err(e) => Err(ScenarioFailure::capture(scenario, cfg, &ctx.scope, rep, &e)),
            }
        };

    // A block of repetitions sharded over the rayon pool. Seeds are a
    // pure function of `(scenario, rep)`, metrics are commutative atomics
    // and trace/ledger shards merge in run-key order at session finish,
    // so the outcome is byte-identical to running the block serially.
    // Panic isolation is per shard; when shards fail, the lowest failing
    // repetition is reported — the same one the serial loop stops at.
    let sharded_reps =
        |reps: std::ops::Range<u64>| -> Result<Vec<MigrationRecord>, Box<ScenarioFailure>> {
            let outcomes: Vec<Result<MigrationRecord, Box<ScenarioFailure>>> = {
                let _shard = wavm3_obs::perf::scope("runner.shard");
                let reps: Vec<u64> = reps.collect();
                reps.par_iter()
                    .map(|&rep| {
                        wavm3_harness::run_isolated_with(
                            || format!("{}|rep{rep:03}", ctx.id),
                            || run_repetition(&ctx, rep),
                        )
                        .map_err(|e| ScenarioFailure::capture(scenario, cfg, &ctx.scope, rep, &e))
                    })
                    .collect()
            };
            let _merge = wavm3_obs::perf::scope("runner.merge");
            let mut records = Vec::with_capacity(outcomes.len());
            for outcome in outcomes {
                records.push(outcome?);
            }
            Ok(records)
        };

    let records = match cfg.repetitions {
        // An armed budget serialises the repetitions: `exhausted()` must
        // observe every completed rep's sim-time charge before the next
        // rep starts for truncation to stay deterministic.
        RepetitionPolicy::Fixed(n) if budget.is_unlimited() => sharded_reps(0..n.max(1) as u64)?,
        RepetitionPolicy::Fixed(n) => {
            let mut records = Vec::new();
            for rep in 0..n.max(1) as u64 {
                if rep > 0 && tracker.exhausted().is_some() {
                    truncated = true;
                    break;
                }
                records.push(supervised_rep(rep, &mut tracker)?);
            }
            records
        }
        RepetitionPolicy::VarianceRule {
            min,
            max,
            threshold,
        } => {
            let min_reps = min.max(2);
            let max_reps = max.max(min_reps);
            // The stopper cannot be satisfied before `min_reps` runs, so
            // an unlimited-budget scenario shards that prefix and feeds
            // the stopper afterwards, in repetition order — its state
            // (and the progress events) are a pure function of the
            // records in order, not of when they were computed.
            let prefix = if budget.is_unlimited() {
                sharded_reps(0..min_reps as u64)?
            } else {
                Vec::new()
            };
            // Progress events collect under their own run key ("z-" sorts
            // after every "repNNN" buffer of the same scenario).
            wavm3_obs::run_scope_with(
                || format!("{}|z-progress", ctx.id),
                || {
                    let mut stopper = VarianceStopper::new(min_reps, max_reps, threshold);
                    let mut records = Vec::new();
                    let progress =
                        |record: &MigrationRecord, rep: u64, stopper: &mut VarianceStopper| {
                            stopper.push(record.source_energy.total_j());
                            wavm3_obs::event!(
                                wavm3_obs::Level::Debug, "wavm3_experiments", "runner.variance_progress",
                                record.phases.me,
                                "rep" => rep,
                                "runs" => stopper.runs() as u64,
                                "source_energy_j" => record.source_energy.total_j(),
                                "relative_change" => stopper.relative_change().unwrap_or(f64::NAN),
                                "satisfied" => stopper.is_satisfied(),
                            );
                        };
                    for record in prefix {
                        progress(&record, records.len() as u64, &mut stopper);
                        records.push(record);
                    }
                    let mut rep = records.len() as u64;
                    while !stopper.is_satisfied() {
                        if rep > 0 && tracker.exhausted().is_some() {
                            truncated = true;
                            break;
                        }
                        let record = supervised_rep(rep, &mut tracker)?;
                        progress(&record, rep, &mut stopper);
                        records.push(record);
                        rep += 1;
                    }
                    Ok::<_, Box<ScenarioFailure>>(records)
                },
            )?
        }
    };
    wavm3_obs::metrics::counter_add("runner.repetitions", records.len() as u64);
    if truncated {
        wavm3_obs::metrics::counter_add("runner.budget_truncated", 1);
    }
    Ok(ScenarioResult {
        records,
        budget_truncated: truncated,
    })
}

/// Name of the wall-clock campaign-throughput gauge, labelled with the
/// path the campaign actually executed: `--path analytic` campaigns that
/// fall back to the sampled engine (a trace sink needs per-sample rows)
/// report under the sampled name, so the figure always describes the
/// engine that produced it.
pub fn throughput_gauge(cfg: &RunnerConfig) -> &'static str {
    match cfg.path {
        SimulationPath::Analytic if !wavm3_obs::tracing_active() => {
            "runner.throughput_runs_per_s.analytic"
        }
        _ => "runner.throughput_runs_per_s.sampled",
    }
}

/// Run many scenarios in parallel; output order matches input order.
pub fn run_all(scenarios: &[Scenario], cfg: &RunnerConfig) -> Vec<Vec<MigrationRecord>> {
    let _timer = wavm3_obs::perf::scope("runner.campaign");
    let started = std::time::Instant::now();
    let results: Vec<Vec<MigrationRecord>> =
        scenarios.par_iter().map(|s| run_scenario(s, cfg)).collect();
    // Wall-clock campaign throughput: explicitly non-reproducible, which
    // is why it lives in a gauge and never in the trace.
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 {
        let runs: usize = results.iter().map(Vec::len).sum();
        wavm3_obs::metrics::gauge_set(throughput_gauge(cfg), runs as f64 / elapsed);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ExperimentFamily, Scenario};
    use wavm3_cluster::MachineSet;
    use wavm3_migration::MigrationKind;

    fn cheap_scenario() -> Scenario {
        Scenario {
            family: ExperimentFamily::CpuloadSource,
            kind: MigrationKind::NonLive,
            machine_set: MachineSet::M,
            source_load_vms: 0,
            target_load_vms: 0,
            migrant_mem_ratio: None,
            label: "0 VM".into(),
        }
    }

    #[test]
    fn fixed_policy_runs_exact_count() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(3),
            base_seed: 1,
            ..Default::default()
        };
        let records = run_scenario(&cheap_scenario(), &cfg);
        assert_eq!(records.len(), 3);
        // Repetitions differ (noise seeds differ)…
        assert_ne!(records[0].source_trace, records[1].source_trace);
        // …but re-running the whole scenario reproduces everything.
        let again = run_scenario(&cheap_scenario(), &cfg);
        assert_eq!(records[0].source_trace, again[0].source_trace);
        assert_eq!(records[2].total_bytes, again[2].total_bytes);
    }

    #[test]
    fn variance_rule_reaches_min_runs() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::VarianceRule {
                min: 4,
                max: 8,
                threshold: 0.5,
            },
            base_seed: 2,
            ..Default::default()
        };
        let records = run_scenario(&cheap_scenario(), &cfg);
        assert!(
            records.len() >= 4 && records.len() <= 8,
            "{}",
            records.len()
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let scenarios = vec![cheap_scenario(), {
            let mut s = cheap_scenario();
            s.kind = MigrationKind::Live;
            s.label = "0 VM live".into();
            s
        }];
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: 3,
            ..Default::default()
        };
        let par = run_all(&scenarios, &cfg);
        let seq: Vec<Vec<MigrationRecord>> =
            scenarios.iter().map(|s| run_scenario(s, &cfg)).collect();
        assert_eq!(par, seq, "rayon fan-out must not change results");
    }

    #[test]
    fn aborted_runs_retry_and_carry_their_history() {
        use wavm3_faults::{AbortFault, LinkFaultConfig};
        use wavm3_simkit::SimTime;

        let mut scenario = cheap_scenario();
        scenario.kind = MigrationKind::Live;
        scenario.label = "0 VM live".into();
        // Link degradation on every run plus a likely (but not certain)
        // abort: most repetitions fail at least once and then complete on a
        // retry drawn from an independent stream.
        let faults = FaultConfig {
            link: LinkFaultConfig {
                mean_windows: 2.0,
                ..LinkFaultConfig::default()
            },
            abort: AbortFault {
                probability: 0.7,
                earliest: SimTime::from_secs(16),
                latest: SimTime::from_secs(45),
            },
            ..FaultConfig::default()
        };
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(6),
            base_seed: 9,
            faults: Some(faults),
            ..Default::default()
        };
        let records = run_scenario(&scenario, &cfg);
        assert_eq!(records.len(), 6);
        let retried = records
            .iter()
            .find(|r| r.attempt > 0 && !r.is_aborted())
            .expect("some repetition should complete via retry");
        // The final record carries the failed attempts' events and charges
        // their whole spent energy as rollback.
        assert!(retried
            .fault_events
            .iter()
            .any(|e| matches!(e, wavm3_faults::FaultEvent::Aborted { .. })));
        assert!(retried.rollback_energy_j() > 0.0);
        assert!(retried.retry_backoff > SimDuration::ZERO);
        assert!(records.iter().all(|r| r.attempt < cfg.retry.max_attempts));
        // The retry protocol is as reproducible as everything else.
        let again = run_scenario(&scenario, &cfg);
        assert_eq!(records, again);
    }

    #[test]
    fn faults_off_reproduces_the_pre_fault_campaign_exactly() {
        // `faults: None` and `faults: Some(disabled)` must both take the
        // plain path: same seeds, same records.
        let base = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: 5,
            ..Default::default()
        };
        let with_disabled = RunnerConfig {
            faults: Some(FaultConfig::default()),
            ..base
        };
        assert_eq!(
            run_scenario(&cheap_scenario(), &base),
            run_scenario(&cheap_scenario(), &with_disabled)
        );
    }

    #[test]
    fn zero_sim_budget_truncates_to_one_rep() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(5),
            base_seed: 11,
            ..Default::default()
        };
        let budget = Budget {
            wall: None,
            sim: Some(wavm3_simkit::SimDuration::ZERO),
        };
        let result = run_scenario_supervised(&cheap_scenario(), &cfg, &budget).unwrap();
        assert!(result.budget_truncated, "zero budget must truncate");
        assert_eq!(result.records.len(), 1, "at least one repetition runs");
        // The surviving repetition is bit-identical to the full run's rep 0.
        let full = run_scenario(&cheap_scenario(), &cfg);
        assert_eq!(result.records[0], full[0]);
    }

    #[test]
    fn unlimited_budget_matches_the_unsupervised_path() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::VarianceRule {
                min: 3,
                max: 6,
                threshold: 0.5,
            },
            base_seed: 12,
            ..Default::default()
        };
        let supervised =
            run_scenario_supervised(&cheap_scenario(), &cfg, &Budget::UNLIMITED).unwrap();
        assert!(!supervised.budget_truncated);
        assert_eq!(supervised.records, run_scenario(&cheap_scenario(), &cfg));
    }

    #[test]
    fn a_panicking_scenario_becomes_a_structured_failure() {
        use wavm3_faults::LinkFaultConfig;
        // Enabled but invalid: `mean_windows > max_windows` passes the
        // planner's `is_enabled` gate and trips its validation panic.
        let poisoned = FaultConfig {
            link: LinkFaultConfig {
                mean_windows: 5.0,
                max_windows: 4,
                ..LinkFaultConfig::default()
            },
            ..FaultConfig::default()
        };
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: 13,
            faults: Some(poisoned),
            ..Default::default()
        };
        let failure = run_scenario_supervised(&cheap_scenario(), &cfg, &Budget::UNLIMITED)
            .expect_err("planner panic must be captured");
        assert_eq!(failure.scenario, cheap_scenario().id());
        assert_eq!(failure.base_seed, 13);
        assert_eq!(failure.rep, 0);
        assert!(
            failure.message.contains("mean_windows"),
            "{}",
            failure.message
        );
        // The config is also rejected up-front by validation.
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn runner_config_validation_rejects_inverted_policies() {
        let mut cfg = RunnerConfig::default();
        assert!(cfg.validate().is_ok(), "defaults validate");
        cfg.repetitions = RepetitionPolicy::Fixed(0);
        assert!(cfg.validate().is_err());
        cfg.repetitions = RepetitionPolicy::VarianceRule {
            min: 10,
            max: 5,
            threshold: 0.1,
        };
        assert!(cfg.validate().is_err());
        cfg.repetitions = RepetitionPolicy::VarianceRule {
            min: 2,
            max: 5,
            threshold: f64::NAN,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn seeds_differ_between_scenarios() {
        let a = cheap_scenario();
        let mut b = cheap_scenario();
        b.source_load_vms = 1;
        b.label = "1 VM".into();
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(1),
            base_seed: 4,
            ..Default::default()
        };
        let ra = run_scenario(&a, &cfg);
        let rb = run_scenario(&b, &cfg);
        assert_ne!(ra[0].source_trace, rb[0].source_trace);
    }
}
