//! Regression gate over the metrics pipeline.
//!
//! Compares a run's [`MetricsSnapshot`] against the committed
//! `BENCH_baseline.json` with per-metric *relative* tolerances and
//! classifies every metric as pass / warn / fail:
//!
//! * relative delta `<= tol/2` → **pass**,
//! * in `(tol/2, tol]` → **warn** (drifting towards the gate),
//! * `> tol` → **fail**;
//!
//! with a zero tolerance there is no warn band — any delta fails.
//! Counters and histograms are seed-deterministic, so their default
//! tolerance is `0`; gauges may carry wall-clock data (throughput) and
//! default to `0.25`. A metric present in the baseline but missing from
//! the current run fails for counters/histograms (the pipeline lost a
//! signal) and warns for gauges; metrics new in the current run warn so
//! the baseline gets regenerated deliberately.
//!
//! Histograms compare their total sample count (exact integer) and their
//! fixed-point sum, both against the histogram tolerance; a changed
//! bucket ladder is always a failure.
//!
//! The `wavm3-regress` binary wires this to files and exit codes:
//! `0` pass (warnings allowed), `1` at least one failure, `2` usage.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use wavm3_harness::Wavm3Error;
use wavm3_obs::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Relative tolerances for the three metric families plus per-metric
/// overrides (keyed by the full metric name, applied to every family).
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Relative tolerance for counters (seed-deterministic; default `0`).
    pub counters: f64,
    /// Relative tolerance for gauges (may be wall-clock; default `0.25`).
    pub gauges: f64,
    /// Relative tolerance for histogram count + sum (default `0`).
    pub histograms: f64,
    /// Per-metric overrides, consulted before the family default.
    pub per_metric: BTreeMap<String, f64>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            counters: 0.0,
            gauges: 0.25,
            histograms: 0.0,
            per_metric: BTreeMap::new(),
        }
    }
}

impl Tolerances {
    /// The tolerance applied to `metric` in `family`.
    pub fn for_metric(&self, metric: &str, family: Family) -> f64 {
        if let Some(t) = self.per_metric.get(metric) {
            return *t;
        }
        match family {
            Family::Counter => self.counters,
            Family::Gauge => self.gauges,
            Family::Histogram => self.histograms,
        }
    }

    /// Load per-metric overrides from a JSON object `{"name": tol, …}`.
    pub fn load_overrides(&mut self, path: &Path) -> Result<(), Wavm3Error> {
        let text = std::fs::read_to_string(path).map_err(|e| Wavm3Error::io_at(path, e))?;
        let overrides: BTreeMap<String, f64> = serde_json::from_str(&text)
            .map_err(|e| Wavm3Error::invalid_input(path.display().to_string(), e))?;
        for (name, tol) in &overrides {
            if !tol.is_finite() || *tol < 0.0 {
                return Err(Wavm3Error::invalid_input(
                    path.display().to_string(),
                    format!("tolerance for `{name}` must be finite and >= 0, got {tol}"),
                ));
            }
        }
        self.per_metric.extend(overrides);
        Ok(())
    }
}

/// Metric family a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Monotonic event count.
    Counter,
    /// Last-write-wins instantaneous value.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl Family {
    /// Lower-case label used in findings.
    pub fn label(self) -> &'static str {
        match self {
            Family::Counter => "counter",
            Family::Gauge => "gauge",
            Family::Histogram => "histogram",
        }
    }
}

/// Outcome of one metric comparison, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within half the tolerance.
    Pass,
    /// Within tolerance but past half of it, or a benign schema drift.
    Warn,
    /// Outside tolerance, or a lost deterministic signal.
    Fail,
}

impl Verdict {
    /// Upper-case label used in the rendered report.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Full metric name.
    pub metric: String,
    /// Which family it came from.
    pub family: Family,
    /// Severity.
    pub verdict: Verdict,
    /// Human-readable comparison (baseline vs current, delta vs tol).
    pub detail: String,
}

/// Every finding of one baseline/current comparison.
#[derive(Debug, Clone, Default)]
pub struct RegressionReport {
    /// All findings, baseline order (counters, gauges, histograms).
    pub findings: Vec<Finding>,
}

impl RegressionReport {
    /// The most severe verdict ([`Verdict::Pass`] when empty).
    pub fn worst(&self) -> Verdict {
        self.findings
            .iter()
            .map(|f| f.verdict)
            .max()
            .unwrap_or(Verdict::Pass)
    }

    /// Count findings with `verdict`.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.findings
            .iter()
            .filter(|f| f.verdict == verdict)
            .count()
    }
}

impl fmt::Display for RegressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            if finding.verdict != Verdict::Pass {
                writeln!(
                    f,
                    "{} {} {}: {}",
                    finding.verdict.label(),
                    finding.family.label(),
                    finding.metric,
                    finding.detail
                )?;
            }
        }
        writeln!(
            f,
            "regression gate: {} compared, {} pass, {} warn, {} fail -> {}",
            self.findings.len(),
            self.count(Verdict::Pass),
            self.count(Verdict::Warn),
            self.count(Verdict::Fail),
            self.worst().label()
        )
    }
}

/// Relative delta of `current` against `baseline` (`0` when both are
/// zero, `inf` when only the baseline is).
fn relative_delta(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline).abs() / baseline.abs()
    }
}

/// Pass/warn/fail for a relative delta under `tol` (see module docs).
fn classify(rel: f64, tol: f64) -> Verdict {
    if tol <= 0.0 {
        if rel == 0.0 {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    } else if rel <= tol / 2.0 {
        Verdict::Pass
    } else if rel <= tol {
        Verdict::Warn
    } else {
        Verdict::Fail
    }
}

fn numeric_finding(
    metric: &str,
    family: Family,
    baseline: f64,
    current: f64,
    tol: &Tolerances,
) -> Finding {
    let t = tol.for_metric(metric, family);
    let (verdict, detail) = if !baseline.is_finite() || !current.is_finite() {
        // Non-finite gauges can't be compared relatively; identical
        // spellings pass, anything else is schema drift worth a warning.
        if baseline.to_bits() == current.to_bits() || (baseline.is_nan() && current.is_nan()) {
            (
                Verdict::Pass,
                format!("non-finite on both sides ({baseline})"),
            )
        } else {
            (
                Verdict::Warn,
                format!("non-finite value (baseline {baseline}, current {current})"),
            )
        }
    } else {
        let rel = relative_delta(baseline, current);
        (
            classify(rel, t),
            format!(
                "baseline {baseline}, current {current} (delta {:.2}% vs tol {:.2}%)",
                rel * 100.0,
                t * 100.0
            ),
        )
    };
    Finding {
        metric: metric.to_string(),
        family,
        verdict,
        detail,
    }
}

fn missing_finding(metric: &str, family: Family) -> Finding {
    // Counters and histograms are deterministic: losing one means the
    // pipeline stopped recording a signal, which is exactly what the
    // gate exists to catch. A gauge may legitimately not be set.
    let verdict = match family {
        Family::Gauge => Verdict::Warn,
        _ => Verdict::Fail,
    };
    Finding {
        metric: metric.to_string(),
        family,
        verdict,
        detail: "present in baseline, missing from current run".to_string(),
    }
}

fn new_finding(metric: &str, family: Family) -> Finding {
    Finding {
        metric: metric.to_string(),
        family,
        verdict: Verdict::Warn,
        detail: "new metric, not in baseline (regenerate BENCH_baseline.json)".to_string(),
    }
}

fn histogram_findings(
    metric: &str,
    baseline: &HistogramSnapshot,
    current: &HistogramSnapshot,
    tol: &Tolerances,
    out: &mut Vec<Finding>,
) {
    if baseline.bounds != current.bounds {
        out.push(Finding {
            metric: metric.to_string(),
            family: Family::Histogram,
            verdict: Verdict::Fail,
            detail: format!(
                "bucket ladder changed ({} -> {} bounds)",
                baseline.bounds.len(),
                current.bounds.len()
            ),
        });
        return;
    }
    out.push(numeric_finding(
        &format!("{metric}.count"),
        Family::Histogram,
        baseline.count as f64,
        current.count as f64,
        tol,
    ));
    out.push(numeric_finding(
        &format!("{metric}.sum"),
        Family::Histogram,
        baseline.sum(),
        current.sum(),
        tol,
    ));
}

/// Diff `current` against `baseline` under `tol`.
pub fn compare(
    baseline: &MetricsSnapshot,
    current: &MetricsSnapshot,
    tol: &Tolerances,
) -> RegressionReport {
    let mut findings = Vec::new();
    for (name, b) in &baseline.counters {
        match current.counters.get(name) {
            Some(c) => findings.push(numeric_finding(
                name,
                Family::Counter,
                *b as f64,
                *c as f64,
                tol,
            )),
            None => findings.push(missing_finding(name, Family::Counter)),
        }
    }
    for name in current.counters.keys() {
        if !baseline.counters.contains_key(name) {
            findings.push(new_finding(name, Family::Counter));
        }
    }
    for (name, b) in &baseline.gauges {
        match current.gauges.get(name) {
            Some(c) => findings.push(numeric_finding(name, Family::Gauge, *b, *c, tol)),
            None => findings.push(missing_finding(name, Family::Gauge)),
        }
    }
    for name in current.gauges.keys() {
        if !baseline.gauges.contains_key(name) {
            findings.push(new_finding(name, Family::Gauge));
        }
    }
    for (name, b) in &baseline.histograms {
        match current.histograms.get(name) {
            Some(c) => histogram_findings(name, b, c, tol, &mut findings),
            None => findings.push(missing_finding(name, Family::Histogram)),
        }
    }
    for name in current.histograms.keys() {
        if !baseline.histograms.contains_key(name) {
            findings.push(new_finding(name, Family::Histogram));
        }
    }
    RegressionReport { findings }
}

/// Extract the metrics snapshot from a JSON document that is either a
/// `--metrics-out` file (snapshot fields at the root) or a
/// `BENCH_baseline.json` (snapshot nested under `"metrics"`). Unknown
/// sibling keys (`profiling`, stamps) are ignored.
pub fn snapshot_from_json(text: &str) -> Result<MetricsSnapshot, Wavm3Error> {
    use serde::{Deserialize as _, Value};
    struct Raw(Value);
    impl serde::Deserialize for Raw {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(Raw(v.clone()))
        }
    }
    let Raw(root) =
        serde_json::from_str(text).map_err(|e| Wavm3Error::invalid_input("metrics JSON", e))?;
    let node = match root.get("metrics") {
        Some(nested) if nested.as_object().is_some() => nested,
        _ => &root,
    };
    MetricsSnapshot::from_value(node).map_err(|e| Wavm3Error::invalid_input("metrics JSON", e))
}

/// Read the `"seed"` / `"reps"` stamps a regenerated baseline carries,
/// so the gate can re-run the identical campaign. Older baselines
/// without stamps yield `None`.
pub fn baseline_stamps(text: &str) -> (Option<u64>, Option<usize>) {
    use serde::Value;
    struct Raw(Value);
    impl serde::Deserialize for Raw {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(Raw(v.clone()))
        }
    }
    let Ok(Raw(root)) = serde_json::from_str::<Raw>(text) else {
        return (None, None);
    };
    let as_u64 = |v: &Value| match v {
        Value::U64(n) => Some(*n),
        _ => None,
    };
    let seed = root.get("seed").and_then(&as_u64);
    let reps = root.get("reps").and_then(&as_u64).map(|n| n as usize);
    (seed, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(counter: u64, gauge: f64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("migration.runs".into(), counter);
        s.gauges
            .insert("runner.throughput_runs_per_s".into(), gauge);
        s.histograms.insert(
            "migration.duration_s".into(),
            HistogramSnapshot {
                bounds: vec![1.0, 10.0],
                counts: vec![2, 3, 0],
                count: 5,
                sum_micro: 12_500_000,
            },
        );
        s
    }

    #[test]
    fn identical_snapshots_pass() {
        let base = snapshot(168, 40.0);
        let report = compare(&base, &base.clone(), &Tolerances::default());
        assert_eq!(report.worst(), Verdict::Pass);
        assert_eq!(report.count(Verdict::Pass), report.findings.len());
        assert!(report.to_string().contains("0 fail -> PASS"));
    }

    #[test]
    fn gauge_drift_inside_the_warn_band_warns() {
        let base = snapshot(168, 100.0);
        // 20% off a 25% tolerance: past tol/2, inside tol.
        let cur = snapshot(168, 80.0);
        let report = compare(&base, &cur, &Tolerances::default());
        assert_eq!(report.worst(), Verdict::Warn);
        let g = report
            .findings
            .iter()
            .find(|f| f.metric == "runner.throughput_runs_per_s")
            .unwrap();
        assert_eq!(g.verdict, Verdict::Warn);
    }

    #[test]
    fn perturbed_counter_fails_at_zero_tolerance() {
        let base = snapshot(168, 40.0);
        let cur = snapshot(167, 40.0);
        let report = compare(&base, &cur, &Tolerances::default());
        assert_eq!(report.worst(), Verdict::Fail);
        let text = report.to_string();
        assert!(text.contains("FAIL counter migration.runs"), "{text}");
    }

    #[test]
    fn missing_counter_fails_and_missing_gauge_warns() {
        let base = snapshot(168, 40.0);
        let mut cur = base.clone();
        cur.counters.clear();
        cur.gauges.clear();
        let report = compare(&base, &cur, &Tolerances::default());
        let counter = report
            .findings
            .iter()
            .find(|f| f.metric == "migration.runs")
            .unwrap();
        assert_eq!(counter.verdict, Verdict::Fail);
        let gauge = report
            .findings
            .iter()
            .find(|f| f.metric == "runner.throughput_runs_per_s")
            .unwrap();
        assert_eq!(gauge.verdict, Verdict::Warn);
    }

    #[test]
    fn new_metrics_warn() {
        let base = snapshot(168, 40.0);
        let mut cur = base.clone();
        cur.counters.insert("faults.injected".into(), 3);
        let report = compare(&base, &cur, &Tolerances::default());
        assert_eq!(report.worst(), Verdict::Warn);
    }

    #[test]
    fn per_metric_override_beats_the_family_default() {
        let base = snapshot(100, 40.0);
        let cur = snapshot(103, 40.0);
        let mut tol = Tolerances::default();
        tol.per_metric.insert("migration.runs".into(), 0.10);
        let report = compare(&base, &cur, &tol);
        // 3% <= 10%/2 -> pass despite the 0 counter default.
        assert_eq!(report.worst(), Verdict::Pass);
    }

    #[test]
    fn histogram_sum_and_ladder_changes_fail() {
        let base = snapshot(168, 40.0);
        let mut cur = base.clone();
        cur.histograms
            .get_mut("migration.duration_s")
            .unwrap()
            .sum_micro += 1;
        let report = compare(&base, &cur, &Tolerances::default());
        assert_eq!(report.worst(), Verdict::Fail);

        let mut cur = base.clone();
        cur.histograms
            .get_mut("migration.duration_s")
            .unwrap()
            .bounds = vec![1.0];
        let report = compare(&base, &cur, &Tolerances::default());
        let f = report
            .findings
            .iter()
            .find(|f| f.metric == "migration.duration_s")
            .unwrap();
        assert_eq!(f.verdict, Verdict::Fail);
        assert!(f.detail.contains("bucket ladder"));
    }

    #[test]
    fn zero_tolerance_has_no_warn_band() {
        assert_eq!(classify(0.0, 0.0), Verdict::Pass);
        assert_eq!(classify(1e-12, 0.0), Verdict::Fail);
        assert_eq!(classify(0.04, 0.1), Verdict::Pass);
        assert_eq!(classify(0.08, 0.1), Verdict::Warn);
        assert_eq!(classify(0.2, 0.1), Verdict::Fail);
        assert_eq!(relative_delta(0.0, 0.0), 0.0);
        assert_eq!(relative_delta(0.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn snapshot_parses_from_both_layouts() {
        let snap = snapshot(7, 1.5);
        let flat = serde_json::to_string(&snap).unwrap();
        let parsed = snapshot_from_json(&flat).unwrap();
        assert_eq!(parsed.counters, snap.counters);

        let nested = format!("{{\"benchmark\":\"x\",\"seed\":7,\"reps\":2,\"metrics\":{flat}}}");
        let parsed = snapshot_from_json(&nested).unwrap();
        assert_eq!(parsed.histograms, snap.histograms);
        assert_eq!(baseline_stamps(&nested), (Some(7), Some(2)));
        assert_eq!(baseline_stamps(&flat), (None, None));
    }
}
