//! Regenerate paper Table VII (model comparison).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts| {
        let dataset = tables::run_campaign(MachineSet::M, &opts.runner);
        let table = tables::table7(&dataset).ok_or("training failed: too few readings")?;
        print!("{table}");
        Ok(())
    })
}
