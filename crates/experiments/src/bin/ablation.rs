//! Ablation study: retrain WAVM3 with each ingredient removed.

use wavm3_cluster::MachineSet;
use wavm3_experiments::{ablation, tables};

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let dataset = tables::run_campaign(MachineSet::M, &opts.runner);
    let rows = ablation::run_ablation(&dataset).expect("training failed");
    print!("{}", ablation::render(&rows));
}
