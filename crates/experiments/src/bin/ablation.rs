//! Ablation study: retrain WAVM3 with each ingredient removed.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::{ablation, tables};

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts| {
        let dataset = tables::run_campaign(MachineSet::M, &opts.runner);
        let rows = ablation::run_ablation(&dataset).ok_or("training failed: too few readings")?;
        print!("{}", ablation::render(&rows));
        Ok(())
    })
}
