//! Ablation study: retrain WAVM3 with each ingredient removed.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::{ablation, tables};
use wavm3_harness::Wavm3Error;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, campaign| {
        let dataset = tables::run_campaign(MachineSet::M, campaign);
        let rows = ablation::run_ablation(&dataset)
            .ok_or_else(|| Wavm3Error::training(env!("CARGO_BIN_NAME")))?;
        print!("{}", ablation::render(&rows));
        Ok(())
    })
}
