//! Regenerate paper Fig. 4. See crate docs for flags.

use std::process::ExitCode;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts, campaign| {
        let fig = wavm3_experiments::figures::fig4(campaign);
        wavm3_experiments::cli::emit_figure(opts, &fig)
    })
}
