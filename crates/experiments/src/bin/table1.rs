//! Regenerate paper Table I (workload impact, with measured evidence).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts| {
        let dataset = tables::run_campaign(MachineSet::M, &opts.runner);
        print!("{}", tables::table1(&dataset));
        Ok(())
    })
}
