//! Regenerate paper Table I (workload impact, with measured evidence).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, campaign| {
        let dataset = tables::run_campaign(MachineSet::M, campaign);
        print!("{}", tables::table1(&dataset));
        Ok(())
    })
}
