//! Per-phase prediction fidelity (extension): WAVM3's predicted initiation
//! / transfer / activation energies against the measured ones, per host
//! role — the phase-resolved view behind the paper's aggregate NRMSE.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_experiments::tables::{RUN_SPLIT_SEED, RUN_TRAIN_FRACTION};
use wavm3_harness::Wavm3Error;
use wavm3_migration::MigrationKind;
use wavm3_models::{train_wavm3, HostRole, ReadingSplit};
use wavm3_power::MigrationPhase;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, campaign| {
        let dataset = tables::run_campaign(MachineSet::M, campaign);
        let (train, test) = dataset.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);
        let model = train_wavm3(&train, MigrationKind::Live, &ReadingSplit::default())
            .ok_or_else(|| Wavm3Error::training(env!("CARGO_BIN_NAME")))?;

        println!("PER-PHASE FIDELITY: WAVM3 predicted vs measured energy (live, test runs)");
        println!(
            "{:<7} {:<11} {:>14} {:>14} {:>9}",
            "host", "phase", "predicted", "measured", "error"
        );
        let live_test: Vec<_> = test
            .iter()
            .filter(|r| r.kind == MigrationKind::Live)
            .collect();
        for role in HostRole::ALL {
            for phase in [
                MigrationPhase::Initiation,
                MigrationPhase::Transfer,
                MigrationPhase::Activation,
            ] {
                let mut pred = 0.0;
                let mut obs = 0.0;
                for r in &live_test {
                    pred += model.predict_phase_energy(role, r, phase);
                    let e = match role {
                        HostRole::Source => &r.source_energy,
                        HostRole::Target => &r.target_energy,
                    };
                    obs += match phase {
                        MigrationPhase::Initiation => e.initiation_j,
                        MigrationPhase::Transfer => e.transfer_j,
                        MigrationPhase::Activation => e.activation_j,
                        MigrationPhase::NormalExecution => 0.0,
                    };
                }
                let n = live_test.len() as f64;
                println!(
                    "{:<7} {:<11} {:>11.2} kJ {:>11.2} kJ {:>8.1}%",
                    role.label(),
                    phase.label(),
                    pred / n / 1e3,
                    obs / n / 1e3,
                    100.0 * (pred - obs).abs() / obs.max(1.0)
                );
            }
        }
        Ok(())
    })
}
