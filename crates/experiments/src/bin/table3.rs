//! Regenerate paper Table III (WAVM3 coefficients, non-live).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_migration::MigrationKind;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts| {
        let dataset = tables::run_campaign(MachineSet::M, &opts.runner);
        let table = tables::table3_4(&dataset, MigrationKind::NonLive)
            .ok_or("training failed: too few readings")?;
        print!("{table}");
        Ok(())
    })
}
