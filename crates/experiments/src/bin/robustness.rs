//! Seed-robustness check (extension): do the paper's comparison orderings
//! hold regardless of the campaign seed? Runs the full pipeline under
//! several independent seeds and reports which of Table VII's claims
//! survive each time.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables::{train_all, RUN_SPLIT_SEED, RUN_TRAIN_FRACTION};
use wavm3_experiments::{tables, RunnerConfig};
use wavm3_harness::Wavm3Error;
use wavm3_migration::MigrationKind;
use wavm3_models::evaluation::score_model;
use wavm3_models::HostRole;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts, campaign| {
        let seeds = [opts.runner.base_seed, 0xA11CE, 0xB0B5, 0xCAFE];
        println!(
            "ROBUSTNESS: Table VII orderings across {} campaign seeds",
            seeds.len()
        );
        println!(
            "{:>12} {:>18} {:>18} {:>20} {:>16}",
            "seed", "WAVM3<=HUANG(l)", "LIU>>WAVM3(l)", "STRUNK degrades l", "HUANG ok (nl)"
        );
        let mut all_hold = true;
        for seed in seeds {
            let seeded = campaign.with_runner(RunnerConfig {
                base_seed: seed,
                ..opts.runner
            });
            let dataset = tables::run_campaign(MachineSet::M, &seeded);
            let (train, test) = dataset.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);
            let Some(bundle) = train_all(&train) else {
                println!("{seed:>12x}  training failed");
                all_hold = false;
                continue;
            };
            let nrmse = |m: &dyn wavm3_models::EnergyModel, role, kind| {
                score_model(m, role, kind, &test)
                    .map(|r| r.nrmse_pct())
                    .unwrap_or(f64::NAN)
            };
            let w_l = nrmse(&bundle.wavm3_live, HostRole::Source, MigrationKind::Live);
            let h_l = nrmse(&bundle.huang_live, HostRole::Source, MigrationKind::Live);
            let l_l = nrmse(&bundle.liu_live, HostRole::Source, MigrationKind::Live);
            let s_l = nrmse(&bundle.strunk_live, HostRole::Source, MigrationKind::Live);
            let s_nl = nrmse(
                &bundle.strunk_non_live,
                HostRole::Source,
                MigrationKind::NonLive,
            );
            let w_nl = nrmse(
                &bundle.wavm3_non_live,
                HostRole::Source,
                MigrationKind::NonLive,
            );
            let h_nl = nrmse(
                &bundle.huang_non_live,
                HostRole::Source,
                MigrationKind::NonLive,
            );

            let c1 = w_l <= h_l * 1.10;
            let c2 = l_l > 2.0 * w_l;
            let c3 = s_l > s_nl;
            let c4 = h_nl < w_nl * 1.8;
            all_hold &= c1 && c2 && c3 && c4;
            let mark = |b: bool| if b { "yes" } else { "NO" };
            println!(
                "{seed:>12x} {:>18} {:>18} {:>20} {:>16}",
                mark(c1),
                mark(c2),
                mark(c3),
                mark(c4)
            );
        }
        println!();
        if !all_hold {
            println!("WARNING: at least one ordering failed under some seed");
            return Err(Wavm3Error::check_failed(
                "at least one Table VII ordering failed under some seed",
            ));
        }
        println!("all orderings hold under every seed");
        Ok(())
    })
}
