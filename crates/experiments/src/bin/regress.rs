//! `wavm3-regress` — the regression gate over the metrics pipeline.
//!
//! Diffs a run's metrics snapshot against the committed
//! `BENCH_baseline.json` with per-metric relative tolerances:
//!
//! ```text
//! wavm3-regress --baseline BENCH_baseline.json \
//!     [--current metrics.json] \
//!     [--tolerance-counters T] [--tolerance-gauges T] \
//!     [--tolerance-histograms T] [--tolerances overrides.json] \
//!     [--reps N] [--seed S]
//! ```
//!
//! Without `--current`, the gate re-runs the baseline campaign itself
//! (machine sets M + O, fixed repetitions, metrics-only observability
//! session) using the `seed` / `reps` stamps the baseline carries, so
//! CI needs exactly one command. Exit codes: `0` pass (warnings
//! allowed, printed to stderr), `1` at least one metric failed the
//! gate, `2` usage / unreadable inputs.

use std::path::PathBuf;
use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::campaign::{Campaign, SupervisorOptions};
use wavm3_experiments::cli::EXIT_USAGE;
use wavm3_experiments::regress::{self, Tolerances, Verdict};
use wavm3_experiments::runner::{RepetitionPolicy, RunnerConfig};
use wavm3_experiments::tables;
use wavm3_migration::SimulationPath;
use wavm3_obs::{metrics::MetricsSnapshot, Level, ObsConfig, Session};

struct Options {
    baseline: PathBuf,
    current: Option<PathBuf>,
    tolerances: Tolerances,
    overrides: Option<PathBuf>,
    reps: Option<usize>,
    seed: Option<u64>,
    path: SimulationPath,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: wavm3-regress --baseline BENCH_baseline.json [--current METRICS.json] \
         [--tolerance-counters T] [--tolerance-gauges T] [--tolerance-histograms T] \
         [--tolerances OVERRIDES.json] [--reps N] [--seed S] [--path sampled|analytic]"
    );
    eprintln!("  --baseline: committed baseline produced by scripts/bench_baseline.sh");
    eprintln!("  --current: metrics JSON from a --metrics-out run; omitted, the gate");
    eprintln!("      re-runs the baseline campaign itself (seed/reps from the baseline stamps)");
    eprintln!("  --tolerance-*: relative tolerance per metric family");
    eprintln!("      (defaults: counters 0, gauges 0.25, histograms 0)");
    eprintln!("  --tolerances: JSON object of per-metric overrides {{\"name\": tol}}");
    eprintln!("  --path: engine for the re-run; 'sampled' (default, byte-identical gate)");
    eprintln!("      or 'analytic' (closed-form energies; pair with per-metric tolerances)");
    eprintln!("  exit codes: 0 pass/warn, 1 regression, 2 usage");
    std::process::exit(if err.is_empty() { 0 } else { EXIT_USAGE as i32 });
}

fn parse_tol(flag: &str, value: Option<String>) -> f64 {
    value
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .unwrap_or_else(|| usage(&format!("{flag} needs a non-negative number")))
}

fn parse_args() -> Options {
    let mut baseline = None;
    let mut current = None;
    let mut tolerances = Tolerances::default();
    let mut overrides = None;
    let mut reps = None;
    let mut seed = None;
    let mut path = SimulationPath::Sampled;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--baseline needs a path"));
                baseline = Some(PathBuf::from(v));
            }
            "--current" => {
                let v = it.next().unwrap_or_else(|| usage("--current needs a path"));
                current = Some(PathBuf::from(v));
            }
            "--tolerance-counters" => tolerances.counters = parse_tol(&arg, it.next()),
            "--tolerance-gauges" => tolerances.gauges = parse_tol(&arg, it.next()),
            "--tolerance-histograms" => tolerances.histograms = parse_tol(&arg, it.next()),
            "--tolerances" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--tolerances needs a path"));
                overrides = Some(PathBuf::from(v));
            }
            "--reps" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|v| *v >= 1)
                    .unwrap_or_else(|| usage("--reps needs a positive integer"));
                reps = Some(v);
            }
            "--seed" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
                seed = Some(v);
            }
            "--path" => {
                let v = it.next().unwrap_or_else(|| usage("--path needs a value"));
                path = match v.as_str() {
                    "sampled" => SimulationPath::Sampled,
                    "analytic" => SimulationPath::Analytic,
                    other => usage(&format!(
                        "--path needs 'sampled' or 'analytic', got '{other}'"
                    )),
                };
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    Options {
        baseline: baseline.unwrap_or_else(|| usage("--baseline is required")),
        current,
        tolerances,
        overrides,
        reps,
        seed,
        path,
    }
}

/// Re-run the baseline campaign (machine sets M + O, fixed reps) under a
/// metrics-only observability session and return the snapshot.
fn rerun_campaign(reps: usize, seed: u64, path: SimulationPath) -> Result<MetricsSnapshot, String> {
    eprintln!(
        "wavm3-regress: re-running campaign (--reps {reps} --seed {seed} --path {}, sets M+O)",
        path.label()
    );
    let runner = RunnerConfig {
        repetitions: RepetitionPolicy::Fixed(reps),
        base_seed: seed,
        path,
        ..RunnerConfig::default()
    };
    let campaign =
        Campaign::new(runner, SupervisorOptions::default()).map_err(|e| e.to_string())?;
    let session = Session::install(ObsConfig {
        trace: false,
        collect_level: Level::Debug,
        console: None,
        metrics: true,
        profiling: false,
        ledger: false,
    });
    for set in [MachineSet::M, MachineSet::O] {
        tables::run_campaign(set, &campaign);
    }
    let report = session.finish();
    let failures = campaign.report().failures;
    if !failures.is_empty() {
        return Err(format!(
            "{} scenarios failed during the gate's campaign re-run",
            failures.len()
        ));
    }
    Ok(report.metrics)
}

fn main() -> ExitCode {
    let mut opts = parse_args();
    if let Some(path) = &opts.overrides {
        if let Err(e) = opts.tolerances.load_overrides(path) {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    }

    let baseline_text = match std::fs::read_to_string(&opts.baseline) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.baseline.display());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let baseline = match regress::snapshot_from_json(&baseline_text) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.baseline.display());
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let current = match &opts.current {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            match regress::snapshot_from_json(&text) {
                Ok(snap) => snap,
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        }
        None => {
            let (stamp_seed, stamp_reps) = regress::baseline_stamps(&baseline_text);
            let reps = opts.reps.or(stamp_reps).unwrap_or(2);
            let seed = opts.seed.or(stamp_seed).unwrap_or(7);
            match rerun_campaign(reps, seed, opts.path) {
                Ok(snap) => snap,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = regress::compare(&baseline, &current, &opts.tolerances);
    eprint!("{report}");
    match report.worst() {
        Verdict::Fail => ExitCode::FAILURE,
        Verdict::Pass | Verdict::Warn => ExitCode::SUCCESS,
    }
}
