//! Mechanism comparison (extension): non-live vs live pre-copy vs
//! post-copy, across workload types — downtime, bytes, energy, and the
//! guest-visible SLA impact.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use wavm3_cluster::{hardware, vm_instances, Cluster, Link, MachineSet, VmId};
use wavm3_migration::{
    MigrationConfig, MigrationKind, MigrationRecord, MigrationSimulation, SlaReport,
};
use wavm3_simkit::RngFactory;
use wavm3_workloads::{MatMulWorkload, PageDirtierWorkload, Workload};

fn run(kind: MigrationKind, mem_ratio: Option<f64>, seed: u64) -> MigrationRecord {
    let (s_spec, t_spec) = hardware::pair(MachineSet::M);
    let mut cluster = Cluster::new(Link::gigabit());
    let src = cluster.add_host(s_spec);
    let dst = cluster.add_host(t_spec);
    let mut workloads: BTreeMap<VmId, Arc<dyn Workload>> = BTreeMap::new();
    let migrant = match mem_ratio {
        Some(r) => {
            let id = cluster.boot_vm(src, vm_instances::migrating_mem());
            workloads.insert(id, Arc::new(PageDirtierWorkload::with_ratio(r)));
            id
        }
        None => {
            let id = cluster.boot_vm(src, vm_instances::migrating_cpu());
            workloads.insert(id, Arc::new(MatMulWorkload::full(4)));
            id
        }
    };
    MigrationSimulation::new(
        cluster,
        workloads,
        migrant,
        src,
        dst,
        MigrationConfig::new(kind),
        RngFactory::new(seed),
    )
    .run()
}

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts, _campaign| {
        let reps = match opts.runner.repetitions {
            wavm3_experiments::RepetitionPolicy::Fixed(n) => n,
            _ => 5,
        };
        println!("MECHANISMS (extension): non-live vs live pre-copy vs post-copy");
        println!(
            "{:<12} {:<10} {:>9} {:>10} {:>9} {:>10} {:>11} {:>9}",
            "workload",
            "mechanism",
            "transfer",
            "downtime",
            "bytes",
            "E_total",
            "lost CPU-s",
            "rel perf"
        );
        for (wl_label, ratio) in [("cpu-bound", None), ("mem 95%", Some(0.95))] {
            for kind in [
                MigrationKind::NonLive,
                MigrationKind::Live,
                MigrationKind::PostCopy,
            ] {
                let mut acc: Vec<MigrationRecord> = Vec::new();
                for r in 0..reps {
                    acc.push(run(kind, ratio, opts.runner.base_seed ^ r as u64));
                }
                let n = acc.len() as f64;
                let mean = |f: &dyn Fn(&MigrationRecord) -> f64| acc.iter().map(f).sum::<f64>() / n;
                let sla_mean = |f: &dyn Fn(&SlaReport) -> f64| {
                    acc.iter()
                        .map(|x| f(&SlaReport::from_record(x)))
                        .sum::<f64>()
                        / n
                };
                println!(
                    "{:<12} {:<10} {:>8.1}s {:>9.2}s {:>7.2}G {:>8.1}kJ {:>10.1}s {:>8.0}%",
                    wl_label,
                    kind.label(),
                    mean(&|x| x.phases.transfer().as_secs_f64()),
                    mean(&|x| x.downtime.as_secs_f64()),
                    mean(&|x| x.total_bytes as f64 / 1e9),
                    mean(&|x| x.total_energy_j() / 1e3),
                    sla_mean(&|s| s.lost_cpu_seconds),
                    sla_mean(&|s| s.relative_performance) * 100.0,
                );
            }
        }
        println!();
        println!("(post-copy: fixed sub-second downtime and single-pass bytes even for");
        println!(" hot memory, paid for with degraded guest performance during transfer)");
        Ok(())
    })
}
