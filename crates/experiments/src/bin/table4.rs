//! Regenerate paper Table IV (WAVM3 coefficients, live).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_harness::Wavm3Error;
use wavm3_migration::MigrationKind;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, campaign| {
        let dataset = tables::run_campaign(MachineSet::M, campaign);
        let table = tables::table3_4(&dataset, MigrationKind::Live)
            .ok_or_else(|| Wavm3Error::training(env!("CARGO_BIN_NAME")))?;
        print!("{table}");
        Ok(())
    })
}
