//! Regenerate paper Table IV (WAVM3 coefficients, live).

use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_migration::MigrationKind;

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let dataset = tables::run_campaign(MachineSet::M, &opts.runner);
    print!(
        "{}",
        tables::table3_4(&dataset, MigrationKind::Live).expect("training failed")
    );
}
