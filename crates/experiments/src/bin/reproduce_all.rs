//! Regenerate every table and figure of the paper in one go, writing
//! summaries and CSV series under the output directory.

use wavm3_cluster::MachineSet;
use wavm3_experiments::{figures, tables};
use wavm3_migration::MigrationKind;

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let out = &opts.out_dir;
    std::fs::create_dir_all(out.join("summaries")).expect("create output directory");
    let save = |name: &str, content: &str| {
        std::fs::write(out.join("summaries").join(format!("{name}.txt")), content)
            .expect("write summary");
        println!("=== {name} ===\n{content}");
    };

    eprintln!("running the m01-m02 campaign ...");
    let m = tables::run_campaign(MachineSet::M, &opts.runner);
    eprintln!("running the o1-o2 campaign ...");
    let o = tables::run_campaign(MachineSet::O, &opts.runner);

    save("table1", &tables::table1(&m));
    save("table2", &tables::table2());
    save(
        "table3",
        &tables::table3_4(&m, MigrationKind::NonLive).expect("table3"),
    );
    save(
        "table4",
        &tables::table3_4(&m, MigrationKind::Live).expect("table4"),
    );
    save("table5", &tables::table5(&m, &o).expect("table5"));
    save("table6", &tables::table6(&m).expect("table6"));
    save("table7", &tables::table7(&m).expect("table7"));

    for fig in [
        figures::fig2(&opts.runner),
        figures::fig3(&opts.runner),
        figures::fig4(&opts.runner),
        figures::fig5(&opts.runner),
        figures::fig6(&opts.runner),
        figures::fig7(&opts.runner),
    ] {
        std::fs::write(out.join(format!("{}.csv", fig.id)), &fig.csv).expect("write csv");
        save(fig.id, &fig.summary);
    }
    eprintln!("all artefacts under {}", out.display());
}
