//! Regenerate every table and figure of the paper in one go, writing
//! summaries and CSV series under the output directory.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::{export, figures, tables};
use wavm3_migration::MigrationKind;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts| {
        let out = &opts.out_dir;
        let save = |name: &str, content: &str| -> std::io::Result<()> {
            export::write_file(&out.join("summaries").join(format!("{name}.txt")), content)?;
            println!("=== {name} ===\n{content}");
            Ok(())
        };

        eprintln!("running the m01-m02 campaign ...");
        let m = tables::run_campaign(MachineSet::M, &opts.runner);
        eprintln!("running the o1-o2 campaign ...");
        let o = tables::run_campaign(MachineSet::O, &opts.runner);

        let trained = "training failed: too few readings";
        save("table1", &tables::table1(&m))?;
        save("table2", &tables::table2())?;
        save(
            "table3",
            &tables::table3_4(&m, MigrationKind::NonLive).ok_or(trained)?,
        )?;
        save(
            "table4",
            &tables::table3_4(&m, MigrationKind::Live).ok_or(trained)?,
        )?;
        save("table5", &tables::table5(&m, &o).ok_or(trained)?)?;
        save("table6", &tables::table6(&m).ok_or(trained)?)?;
        save("table7", &tables::table7(&m).ok_or(trained)?)?;

        for fig in [
            figures::fig2(&opts.runner),
            figures::fig3(&opts.runner),
            figures::fig4(&opts.runner),
            figures::fig5(&opts.runner),
            figures::fig6(&opts.runner),
            figures::fig7(&opts.runner),
        ] {
            export::write_file(&out.join(format!("{}.csv", fig.id)), &fig.csv)?;
            save(fig.id, &fig.summary)?;
        }
        eprintln!("all artefacts under {}", out.display());
        Ok(())
    })
}
