//! Regenerate every table and figure of the paper in one go, writing
//! summaries and CSV series under the output directory. With
//! `--checkpoint-dir DIR` each scenario's results are journaled as they
//! complete, and `--resume` restarts an interrupted reproduction from the
//! verified checkpoints instead of recomputing the finished scenarios.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::{export, figures, tables};
use wavm3_harness::Wavm3Error;
use wavm3_migration::MigrationKind;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts, campaign| {
        let out = &opts.out_dir;
        let save = |name: &str, content: &str| -> Result<(), Wavm3Error> {
            export::write_file(&out.join("summaries").join(format!("{name}.txt")), content)?;
            println!("=== {name} ===\n{content}");
            Ok(())
        };

        eprintln!("running the m01-m02 campaign ...");
        let m = tables::run_campaign(MachineSet::M, campaign);
        eprintln!("running the o1-o2 campaign ...");
        let o = tables::run_campaign(MachineSet::O, campaign);

        let trained = || Wavm3Error::training("reproduce_all");
        save("table1", &tables::table1(&m))?;
        save("table2", &tables::table2())?;
        save(
            "table3",
            &tables::table3_4(&m, MigrationKind::NonLive).ok_or_else(trained)?,
        )?;
        save(
            "table4",
            &tables::table3_4(&m, MigrationKind::Live).ok_or_else(trained)?,
        )?;
        save("table5", &tables::table5(&m, &o).ok_or_else(trained)?)?;
        save("table6", &tables::table6(&m).ok_or_else(trained)?)?;
        save("table7", &tables::table7(&m).ok_or_else(trained)?)?;

        for fig in [
            figures::fig2(campaign),
            figures::fig3(campaign),
            figures::fig4(campaign),
            figures::fig5(campaign),
            figures::fig6(campaign),
            figures::fig7(campaign),
        ] {
            export::write_file(&out.join(format!("{}.csv", fig.id)), &fig.csv)?;
            save(fig.id, &fig.summary)?;
        }
        eprintln!("all artefacts under {}", out.display());
        Ok(())
    })
}
