//! Paper Fig. 1 — the actors of the migration process (descriptive
//! diagram; printed here with each actor's role as implemented by this
//! reproduction, §III-B).

use std::process::ExitCode;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, _campaign| {
        println!(
            r#"Fig 1: Summary of the migration process (actors and implementation map)

  +------------------------+        selects VM + target, issues migration
  | Consolidation Manager  | -----------------------------------------------+
  +------------------------+   (wavm3-consolidation::ConsolidationManager)  |
                                                                            v
  +------------------+   1. connect / ack    +------------------+
  |   SOURCE host    | <-------------------> |   TARGET host    |
  |  (wavm3-cluster  |   2. VM state over    |  runs the VM     |
  |   ::Host)        |      the network      |   after 'me'     |
  |                  | ====================> |                  |
  |  +------------+  |   (wavm3-migration)   |  +- - - - - -+   |
  |  | Migrating  |  |                       |  : Migrating :   |
  |  |    VM      |  |                       |  :    VM     :   |
  |  +------------+  |                       |  +- - - - - -+   |
  +------------------+                       +------------------+
        |                    NETWORK                 |
        +------------- (wavm3-cluster::Link) --------+
                 single gigabit switch; constant switch power (§III-B)

Actors modelled for energy (paper §III-B): migrating VM, source host,
target host. The consolidation manager only initiates (not metered); the
network's switch draw is constant and excluded. Per-actor workload impact
is Table I (`cargo run -p wavm3-experiments --bin table1`)."#
        );
        Ok(())
    })
}
