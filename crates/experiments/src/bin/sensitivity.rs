//! Training-fraction sensitivity (extension): how much of the 2 Hz
//! readings does WAVM3 actually need? The paper uses 20 %.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_experiments::tables::{RUN_SPLIT_SEED, RUN_TRAIN_FRACTION};
use wavm3_migration::MigrationKind;
use wavm3_models::evaluation::score_model;
use wavm3_models::{train_wavm3, HostRole, ReadingSplit};

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, campaign| {
        let dataset = tables::run_campaign(MachineSet::M, campaign);
        let (train, test) = dataset.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);

        println!("TRAINING-FRACTION SENSITIVITY: WAVM3 live NRMSE vs reading share");
        println!(
            "{:>9} {:>14} {:>14}",
            "fraction", "source live", "target live"
        );
        for pct in [2, 5, 10, 20, 40, 80] {
            let split = ReadingSplit {
                train_fraction: pct as f64 / 100.0,
                ..ReadingSplit::default()
            };
            match train_wavm3(&train, MigrationKind::Live, &split) {
                Some(model) => {
                    let s = score_model(&model, HostRole::Source, MigrationKind::Live, &test)
                        .map(|r| r.nrmse_pct())
                        .unwrap_or(f64::NAN);
                    let t = score_model(&model, HostRole::Target, MigrationKind::Live, &test)
                        .map(|r| r.nrmse_pct())
                        .unwrap_or(f64::NAN);
                    println!("{pct:>8}% {s:>13.1}% {t:>13.1}%");
                }
                None => println!("{pct:>8}% {:>13} {:>13}", "too few", "readings"),
            }
        }
        println!("\n(the paper's 20% is comfortably past the knee)");
        Ok(())
    })
}
