//! NETLOAD extension: live migration next to a network-intensive guest.

use std::process::ExitCode;
use wavm3_experiments::netload;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts, _campaign| {
        let points = netload::run_netload_sweep(&opts.runner)?;
        print!("{}", netload::render(&points));
        Ok(())
    })
}
