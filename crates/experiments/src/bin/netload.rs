//! NETLOAD extension: live migration next to a network-intensive guest.

use wavm3_experiments::netload;

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let points = netload::run_netload_sweep(&opts.runner);
    print!("{}", netload::render(&points));
}
