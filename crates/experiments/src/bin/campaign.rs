//! Run the full Table IIa campaign on both machine sets and export the
//! datasets as JSON for external analysis.

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::{export, tables};

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts, campaign| {
        for set in [MachineSet::M, MachineSet::O] {
            let dataset = tables::run_campaign(set, campaign);
            let slug = set.label().replace('-', "_");
            let path = opts.out_dir.join(format!("dataset_{slug}.json"));
            export::write_file(&path, &serde_json::to_string(&dataset)?)?;
            let runs_path = opts.out_dir.join(format!("runs_{slug}.csv"));
            export::write_file(&runs_path, &export::runs_csv(&dataset))?;
            let readings_path = opts.out_dir.join(format!("readings_{slug}.csv"));
            export::write_file(&readings_path, &export::readings_csv(&dataset))?;
            println!(
                "{}: {} scenarios, {} migrations -> {}, {}, {}",
                set.label(),
                dataset.runs.len(),
                dataset.record_count(),
                path.display(),
                runs_path.display(),
                readings_path.display()
            );
        }
        Ok(())
    })
}
