//! Run the full Table IIa campaign on both machine sets and export the
//! datasets as JSON for external analysis.

use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    std::fs::create_dir_all(&opts.out_dir).expect("create output directory");
    for set in [MachineSet::M, MachineSet::O] {
        let dataset = tables::run_campaign(set, &opts.runner);
        let path = opts
            .out_dir
            .join(format!("dataset_{}.json", set.label().replace('-', "_")));
        let json = serde_json::to_string(&dataset).expect("serialise dataset");
        std::fs::write(&path, json).expect("write dataset");
        let runs_path = opts
            .out_dir
            .join(format!("runs_{}.csv", set.label().replace('-', "_")));
        std::fs::write(&runs_path, wavm3_experiments::export::runs_csv(&dataset))
            .expect("write runs CSV");
        let readings_path = opts
            .out_dir
            .join(format!("readings_{}.csv", set.label().replace('-', "_")));
        std::fs::write(
            &readings_path,
            wavm3_experiments::export::readings_csv(&dataset),
        )
        .expect("write readings CSV");
        println!(
            "{}: {} scenarios, {} migrations -> {}, {}, {}",
            set.label(),
            dataset.runs.len(),
            dataset.record_count(),
            path.display(),
            runs_path.display(),
            readings_path.display()
        );
    }
}
