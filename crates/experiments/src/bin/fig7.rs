//! Regenerate paper Fig. 7. See crate docs for flags.

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let fig = wavm3_experiments::figures::fig7(&opts.runner);
    wavm3_experiments::cli::emit_figure(&opts, &fig);
}
