//! Regenerate paper Table II (experimental setup).

use std::process::ExitCode;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, _campaign| {
        print!("{}", wavm3_experiments::tables::table2());
        Ok(())
    })
}
