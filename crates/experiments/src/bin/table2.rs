//! Regenerate paper Table II (experimental setup).

fn main() {
    print!("{}", wavm3_experiments::tables::table2());
}
