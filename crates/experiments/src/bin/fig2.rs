//! Regenerate paper Fig. 2. See crate docs for flags.

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let fig = wavm3_experiments::figures::fig2(&opts.runner);
    wavm3_experiments::cli::emit_figure(&opts, &fig);
}
