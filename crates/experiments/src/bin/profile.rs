//! Profile the baseline Table IIa campaign with the hierarchical
//! self-profiler and report where the wall time goes.
//!
//! The campaign runs on a single rayon thread so the call tree's
//! self-times are directly comparable to the process wall clock (on N
//! threads the tree sums CPU time across workers and can exceed wall).
//! Output:
//!
//! * a top-N hotspot table on stdout (self time, µs per migration run,
//!   cumulative time, worst single timing),
//! * `profile.json` / `trace.json` / `flame.folded` in the profile
//!   directory (`--profile-out DIR`, default `OUT/profile`),
//! * `summary.json` next to them with the wall/self-coverage numbers the
//!   CI budget gate reads.
//!
//! Shares the common experiment flags; `--reps 2 --seed 7` reproduces
//! the CI profile run.

use std::process::ExitCode;
use std::time::Instant;
use wavm3_cluster::MachineSet;
use wavm3_experiments::campaign::Campaign;
use wavm3_experiments::cli::{self, EXIT_USAGE};
use wavm3_experiments::{export, tables};
use wavm3_harness::Wavm3Error;
use wavm3_obs::{ObsConfig, Session};

/// Hotspot rows printed to stdout.
const TOP_N: usize = 14;

#[derive(serde::Serialize)]
struct ProfileSummary {
    /// Process wall time of the campaign body, milliseconds.
    wall_ms: f64,
    /// Sum of self time over the whole call tree, milliseconds.
    self_sum_ms: f64,
    /// `self_sum_ms / wall_ms` as a percentage — how much of the wall
    /// clock the profiler accounted for.
    coverage_pct: f64,
    /// Profiled migration runs (`migration.run.*` node counts).
    runs: u64,
}

fn main() -> ExitCode {
    let opts = cli::parse_args();
    let campaign = match Campaign::new(opts.runner, opts.supervisor.clone()) {
        Ok(campaign) => campaign,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    // Arm the profiler regardless of --profile-out; keep whatever other
    // sinks the shared flags requested.
    let mut cfg: ObsConfig = opts.obs.session_config();
    cfg.profiling = true;
    let session = Session::install(cfg);

    let started = Instant::now();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");
    let dataset = pool.install(|| tables::run_campaign(MachineSet::M, &campaign));
    let wall = started.elapsed();

    let report = session.finish();
    let perf = &report.perf;
    let runs = perf.count_of("migration.run.analytic") + perf.count_of("migration.run.sampled");
    let wall_ms = wall.as_secs_f64() * 1e3;
    let self_sum_ms = perf.self_total_ns() as f64 / 1e6;
    let coverage_pct = if wall_ms > 0.0 {
        100.0 * self_sum_ms / wall_ms
    } else {
        0.0
    };

    println!(
        "campaign: {} scenarios, {} migrations, {} profiled runs, {:.1} ms wall",
        dataset.runs.len(),
        dataset.record_count(),
        runs,
        wall_ms
    );
    println!(
        "profiler coverage: {:.1} ms self time = {:.1}% of wall",
        self_sum_ms, coverage_pct
    );
    println!();
    println!(
        "{:<52} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "hotspot (self-time order)", "count", "self_ms", "us/run", "total_ms", "max_ms"
    );
    for h in perf.hotspots().into_iter().take(TOP_N) {
        let per_run_us = if runs > 0 {
            h.self_ns as f64 / 1e3 / runs as f64
        } else {
            0.0
        };
        println!(
            "{:<52} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>9.3}",
            h.path,
            h.count,
            h.self_ns as f64 / 1e6,
            per_run_us,
            h.total_ns as f64 / 1e6,
            h.max_ns as f64 / 1e6,
        );
    }
    if !perf.counters.is_empty() {
        println!();
        println!("{:<52} {:>8}", "counter", "value");
        for (name, value) in &perf.counters {
            println!("{name:<52} {value:>8}");
        }
    }

    let dir = opts
        .obs
        .profile_out
        .clone()
        .unwrap_or_else(|| opts.out_dir.join("profile"));
    let written: Result<(), Wavm3Error> = (|| {
        cli::write_profile_exports(&dir, &report)?;
        let summary = ProfileSummary {
            wall_ms,
            self_sum_ms,
            coverage_pct,
            runs,
        };
        let json = serde_json::to_string_pretty(&summary)
            .map_err(|e| Wavm3Error::serde("profile summary", e))?;
        export::write_file(&dir.join("summary.json"), &json)?;
        Ok(())
    })();
    match written {
        Ok(()) => {
            println!();
            println!(
                "wrote {p}/profile.json, {p}/trace.json, {p}/flame.folded, {p}/summary.json",
                p = dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
