//! Regenerate paper Table V (WAVM3 NRMSE on both machine sets).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|opts| {
        let m = tables::run_campaign(MachineSet::M, &opts.runner);
        let o = tables::run_campaign(MachineSet::O, &opts.runner);
        let table = tables::table5(&m, &o).ok_or("training failed: too few readings")?;
        print!("{table}");
        Ok(())
    })
}
