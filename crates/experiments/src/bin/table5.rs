//! Regenerate paper Table V (WAVM3 NRMSE on both machine sets).

use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let m = tables::run_campaign(MachineSet::M, &opts.runner);
    let o = tables::run_campaign(MachineSet::O, &opts.runner);
    print!("{}", tables::table5(&m, &o).expect("training failed"));
}
