//! Regenerate paper Table V (WAVM3 NRMSE on both machine sets).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_harness::Wavm3Error;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, campaign| {
        let m = tables::run_campaign(MachineSet::M, campaign);
        let o = tables::run_campaign(MachineSet::O, campaign);
        let table =
            tables::table5(&m, &o).ok_or_else(|| Wavm3Error::training(env!("CARGO_BIN_NAME")))?;
        print!("{table}");
        Ok(())
    })
}
