//! Regenerate paper Table VI (baseline training coefficients).

use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;

fn main() {
    let opts = wavm3_experiments::cli::parse_args();
    let dataset = tables::run_campaign(MachineSet::M, &opts.runner);
    print!("{}", tables::table6(&dataset).expect("training failed"));
}
