//! Regenerate paper Table VI (baseline training coefficients).

use std::process::ExitCode;
use wavm3_cluster::MachineSet;
use wavm3_experiments::tables;
use wavm3_harness::Wavm3Error;

fn main() -> ExitCode {
    wavm3_experiments::cli::run(|_opts, campaign| {
        let dataset = tables::run_campaign(MachineSet::M, campaign);
        let table =
            tables::table6(&dataset).ok_or_else(|| Wavm3Error::training(env!("CARGO_BIN_NAME")))?;
        print!("{table}");
        Ok(())
    })
}
