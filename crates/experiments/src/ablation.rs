//! Ablation study: which of WAVM3's ingredients buys how much accuracy?
//!
//! DESIGN.md calls out the model's design choices — per-phase structure
//! and the four workload features. Each variant below *retrains* the model
//! with one ingredient removed (see
//! [`FeatureMask`](wavm3_models::FeatureMask)) and scores it on the same
//! test runs, quantifying the paper's implicit claims:
//!
//! * dropping `DR` / `CPU(v)` recreates HUANG's blind spot on live
//!   migrations of memory-hot guests;
//! * dropping `BW` loses the multiplexing cases (paper §VII-A);
//! * collapsing the phases loses the service constants that differ per
//!   phase and host role.

use crate::dataset::ExperimentDataset;
use crate::tables::{RUN_SPLIT_SEED, RUN_TRAIN_FRACTION};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use wavm3_migration::MigrationKind;
use wavm3_models::evaluation::score_model;
use wavm3_models::{train_wavm3_masked, FeatureMask, HostRole, ReadingSplit};

/// The ablation grid, in presentation order.
pub fn variants() -> Vec<FeatureMask> {
    let full = FeatureMask::default();
    vec![
        full,
        FeatureMask {
            dirty_ratio: false,
            ..full
        },
        FeatureMask {
            cpu_vm: false,
            ..full
        },
        FeatureMask {
            bandwidth: false,
            ..full
        },
        FeatureMask {
            cpu_host: false,
            ..full
        },
        FeatureMask {
            per_phase: false,
            ..full
        },
        // The HUANG shape, re-derived: host CPU only, no phase structure.
        FeatureMask {
            cpu_vm: false,
            bandwidth: false,
            dirty_ratio: false,
            per_phase: false,
            ..full
        },
    ]
}

/// One scored ablation variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label ("full", "-DR", …).
    pub label: String,
    /// Live-migration NRMSE on the source host, percent.
    pub source_live_pct: f64,
    /// Live-migration NRMSE on the target host, percent.
    pub target_live_pct: f64,
}

/// Run the ablation on a campaign dataset (live migrations).
pub fn run_ablation(dataset: &ExperimentDataset) -> Option<Vec<AblationRow>> {
    let (train, test) = dataset.split_runs(RUN_TRAIN_FRACTION, RUN_SPLIT_SEED);
    let split = ReadingSplit::default();
    let mut rows = Vec::new();
    for mask in variants() {
        let model = train_wavm3_masked(&train, MigrationKind::Live, &split, &mask)?;
        let score = |role| {
            score_model(&model, role, MigrationKind::Live, &test)
                .map(|r| r.nrmse_pct())
                .unwrap_or(f64::NAN)
        };
        rows.push(AblationRow {
            label: mask.label(),
            source_live_pct: score(HostRole::Source),
            target_live_pct: score(HostRole::Target),
        });
    }
    Some(rows)
}

/// Render the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ABLATION: WAVM3 ingredients vs live-migration NRMSE");
    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>14}",
        "variant", "source live", "target live"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>13.1}% {:>13.1}%",
            r.label, r.source_live_pct, r.target_live_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RepetitionPolicy, RunnerConfig};
    use crate::scenario::{ExperimentFamily, Scenario};
    use wavm3_cluster::MachineSet;

    fn dataset() -> ExperimentDataset {
        let mut scenarios = Vec::new();
        for fam in [
            ExperimentFamily::CpuloadSource,
            ExperimentFamily::MemloadVm,
            ExperimentFamily::MemloadSource,
        ] {
            let mut all = Scenario::family_scenarios(fam, MachineSet::M);
            all.retain(|s| matches!(s.label.as_str(), "0 VM" | "8 VM" | "5%" | "95%"));
            scenarios.extend(all);
        }
        ExperimentDataset::collect(
            scenarios,
            &RunnerConfig {
                repetitions: RepetitionPolicy::Fixed(3),
                base_seed: 17,
                ..Default::default()
            },
        )
    }

    #[test]
    fn ablation_orders_ingredients_sensibly() {
        let ds = dataset();
        let rows = run_ablation(&ds).expect("training succeeds");
        assert_eq!(rows.len(), variants().len());
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing variant {label}"))
        };
        let full = get("full");
        // Removing the host-CPU term must hurt the most on this CPU-heavy
        // campaign.
        assert!(
            get("-CPU(h)").source_live_pct > full.source_live_pct * 1.5,
            "-CPU(h) {:.1}% vs full {:.1}%",
            get("-CPU(h)").source_live_pct,
            full.source_live_pct
        );
        // The HUANG-shaped variant is not meaningfully better than the
        // full model. On this reduced 3-rep campaign the variants sit
        // within sampling noise of each other (a simpler model can edge
        // out the full one by a few tenths of a percent on a lucky
        // draw), so allow that noise band rather than strict dominance.
        let huang_shape = get("-CPU(v) -BW -DR -phases");
        assert!(
            huang_shape.source_live_pct >= full.source_live_pct * 0.85,
            "huang-shape {:.3}% vs full {:.3}%",
            huang_shape.source_live_pct,
            full.source_live_pct
        );
        // Every variant produced finite scores.
        for r in &rows {
            assert!(r.source_live_pct.is_finite(), "{}", r.label);
            assert!(r.target_live_pct.is_finite(), "{}", r.label);
        }
        let table = render(&rows);
        assert!(table.contains("ABLATION"));
        assert!(table.contains("-DR"));
    }
}
