//! The experiment design of paper Table IIa.
//!
//! Five experiment families sweep one knob each while the rest of the
//! testbed is pinned:
//!
//! | family | migrant | swept knob | mechanism |
//! |---|---|---|---|
//! | CPULOAD-SOURCE | migrating-cpu | load-cpu VMs on source (0→8) | live + non-live |
//! | CPULOAD-TARGET | migrating-cpu | load-cpu VMs on target (0→8) | live + non-live |
//! | MEMLOAD-VM | migrating-mem | dirtying ratio 5–95 % | live |
//! | MEMLOAD-SOURCE | migrating-mem @95 % | load-cpu VMs on source | live |
//! | MEMLOAD-TARGET | migrating-mem @95 % | load-cpu VMs on target | live |
//!
//! The load levels follow the figures' legends (0/1/3/5/7/8 VMs — with a
//! 4-vCPU migrant on a 32-thread host, 8 load VMs oversubscribe the CPUs,
//! the paper's "multiplexing" case) and the MEMLOAD ratios follow Fig. 5
//! (5/15/35/55/75/95 %).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wavm3_cluster::{hardware, vm_instances, Cluster, Link, MachineSet, VmId};
use wavm3_migration::{MigrationConfig, MigrationKind, MigrationSimulation};
use wavm3_simkit::RngFactory;
use wavm3_workloads::{MatMulWorkload, PageDirtierWorkload, Workload};

/// Load levels (number of `load-cpu` VMs) of the figures' legends.
pub const LOAD_VM_LEVELS: [usize; 6] = [0, 1, 3, 5, 7, 8];

/// Dirtying-ratio levels of Fig. 5, percent.
pub const DR_LEVELS_PCT: [u32; 6] = [5, 15, 35, 55, 75, 95];

/// The five experiment families of Table IIa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentFamily {
    /// CPU-intensive load swept on the source host.
    CpuloadSource,
    /// CPU-intensive load swept on the target host.
    CpuloadTarget,
    /// Dirtying ratio swept on the migrating VM.
    MemloadVm,
    /// Memory-hot migrant + CPU load swept on the source.
    MemloadSource,
    /// Memory-hot migrant + CPU load swept on the target.
    MemloadTarget,
}

impl ExperimentFamily {
    /// Paper-style family name.
    pub fn label(&self) -> &'static str {
        match self {
            ExperimentFamily::CpuloadSource => "CPULOAD-SOURCE",
            ExperimentFamily::CpuloadTarget => "CPULOAD-TARGET",
            ExperimentFamily::MemloadVm => "MEMLOAD-VM",
            ExperimentFamily::MemloadSource => "MEMLOAD-SOURCE",
            ExperimentFamily::MemloadTarget => "MEMLOAD-TARGET",
        }
    }
}

/// One fully pinned experimental configuration (one curve of one figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Family this scenario belongs to.
    pub family: ExperimentFamily,
    /// Migration mechanism.
    pub kind: MigrationKind,
    /// Machine pair to run on.
    pub machine_set: MachineSet,
    /// `load-cpu` VMs on the source host.
    pub source_load_vms: usize,
    /// `load-cpu` VMs on the target host.
    pub target_load_vms: usize,
    /// `Some(ratio)` → migrating-mem with that working-set fraction;
    /// `None` → migrating-cpu at full CPU load.
    pub migrant_mem_ratio: Option<f64>,
    /// Legend label ("3 VM", "55%", …).
    pub label: String,
}

impl Scenario {
    /// All scenarios of a family on one machine set, in sweep order.
    pub fn family_scenarios(family: ExperimentFamily, set: MachineSet) -> Vec<Scenario> {
        let mut out = Vec::new();
        match family {
            ExperimentFamily::CpuloadSource | ExperimentFamily::CpuloadTarget => {
                for kind in [MigrationKind::NonLive, MigrationKind::Live] {
                    for &n in &LOAD_VM_LEVELS {
                        let (src, dst) = if family == ExperimentFamily::CpuloadSource {
                            (n, 0)
                        } else {
                            (0, n)
                        };
                        out.push(Scenario {
                            family,
                            kind,
                            machine_set: set,
                            source_load_vms: src,
                            target_load_vms: dst,
                            migrant_mem_ratio: None,
                            label: format!("{n} VM"),
                        });
                    }
                }
            }
            ExperimentFamily::MemloadVm => {
                for &pct in &DR_LEVELS_PCT {
                    out.push(Scenario {
                        family,
                        kind: MigrationKind::Live,
                        machine_set: set,
                        source_load_vms: 0,
                        target_load_vms: 0,
                        migrant_mem_ratio: Some(pct as f64 / 100.0),
                        label: format!("{pct}%"),
                    });
                }
            }
            ExperimentFamily::MemloadSource | ExperimentFamily::MemloadTarget => {
                for &n in &LOAD_VM_LEVELS {
                    let (src, dst) = if family == ExperimentFamily::MemloadSource {
                        (n, 0)
                    } else {
                        (0, n)
                    };
                    out.push(Scenario {
                        family,
                        kind: MigrationKind::Live,
                        machine_set: set,
                        source_load_vms: src,
                        target_load_vms: dst,
                        migrant_mem_ratio: Some(0.95),
                        label: format!("{n} VM"),
                    });
                }
            }
        }
        out
    }

    /// The complete campaign of Table IIa on one machine set.
    pub fn full_campaign(set: MachineSet) -> Vec<Scenario> {
        [
            ExperimentFamily::CpuloadSource,
            ExperimentFamily::CpuloadTarget,
            ExperimentFamily::MemloadVm,
            ExperimentFamily::MemloadSource,
            ExperimentFamily::MemloadTarget,
        ]
        .into_iter()
        .flat_map(|f| Scenario::family_scenarios(f, set))
        .collect()
    }

    /// Instantiate the simulator for this scenario with a given RNG scope.
    pub fn build(&self, rng: RngFactory) -> MigrationSimulation {
        self.build_with_config(rng, MigrationConfig::new(self.kind))
    }

    /// Like [`Scenario::build`], but with an explicit engine configuration
    /// (the runner uses this to thread a fault-injection config through).
    /// `config.kind` must agree with the scenario's mechanism.
    pub fn build_with_config(
        &self,
        rng: RngFactory,
        config: MigrationConfig,
    ) -> MigrationSimulation {
        assert_eq!(
            config.kind, self.kind,
            "engine config disagrees with the scenario's mechanism"
        );
        let (src_spec, dst_spec) = hardware::pair(self.machine_set);
        let mut cluster = Cluster::new(Link::gigabit());
        let source = cluster.add_host(src_spec);
        let target = cluster.add_host(dst_spec);
        let mut workloads: BTreeMap<VmId, Arc<dyn Workload>> = BTreeMap::new();

        let migrant = match self.migrant_mem_ratio {
            Some(ratio) => {
                let id = cluster.boot_vm(source, vm_instances::migrating_mem());
                workloads.insert(id, Arc::new(PageDirtierWorkload::with_ratio(ratio)));
                id
            }
            None => {
                let id = cluster.boot_vm(source, vm_instances::migrating_cpu());
                workloads.insert(id, Arc::new(MatMulWorkload::full(4)));
                id
            }
        };
        for i in 0..self.source_load_vms {
            let id = cluster.boot_vm(source, vm_instances::load_cpu());
            workloads.insert(
                id,
                Arc::new(MatMulWorkload::full(4).with_phase(i as f64 * 0.137)),
            );
        }
        for i in 0..self.target_load_vms {
            let id = cluster.boot_vm(target, vm_instances::load_cpu());
            workloads.insert(
                id,
                Arc::new(MatMulWorkload::full(4).with_phase(0.41 + i as f64 * 0.137)),
            );
        }

        MigrationSimulation::new(cluster, workloads, migrant, source, target, config, rng)
    }

    /// A stable identifier for seeding and file names, e.g.
    /// `cpuload-source/live/m01-m02/3 VM`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.family.label().to_lowercase(),
            self.kind.label(),
            self.machine_set.label(),
            self.label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuload_families_cover_both_kinds_and_levels() {
        let s = Scenario::family_scenarios(ExperimentFamily::CpuloadSource, MachineSet::M);
        assert_eq!(s.len(), 12); // 2 kinds × 6 levels
        assert!(s.iter().all(|x| x.migrant_mem_ratio.is_none()));
        assert!(s.iter().all(|x| x.target_load_vms == 0));
        assert_eq!(
            s.iter().filter(|x| x.kind == MigrationKind::Live).count(),
            6
        );
    }

    #[test]
    fn memload_vm_is_live_only_with_ratio_sweep() {
        let s = Scenario::family_scenarios(ExperimentFamily::MemloadVm, MachineSet::M);
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|x| x.kind == MigrationKind::Live));
        assert_eq!(s[0].migrant_mem_ratio, Some(0.05));
        assert_eq!(s[5].migrant_mem_ratio, Some(0.95));
    }

    #[test]
    fn memload_load_families_pin_ratio_at_95() {
        for fam in [
            ExperimentFamily::MemloadSource,
            ExperimentFamily::MemloadTarget,
        ] {
            let s = Scenario::family_scenarios(fam, MachineSet::O);
            assert_eq!(s.len(), 6);
            assert!(s.iter().all(|x| x.migrant_mem_ratio == Some(0.95)));
            assert!(s.iter().all(|x| x.machine_set == MachineSet::O));
        }
    }

    #[test]
    fn full_campaign_size_matches_design() {
        // 12 + 12 + 6 + 6 + 6 = 42 scenarios per machine set.
        assert_eq!(Scenario::full_campaign(MachineSet::M).len(), 42);
    }

    #[test]
    fn ids_are_unique() {
        let all = Scenario::full_campaign(MachineSet::M);
        let mut ids: Vec<String> = all.iter().map(|s| s.id()).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn scenarios_build_and_run() {
        // Smoke-run the cheapest scenario end to end.
        let s = Scenario {
            family: ExperimentFamily::CpuloadSource,
            kind: MigrationKind::NonLive,
            machine_set: MachineSet::M,
            source_load_vms: 1,
            target_load_vms: 0,
            migrant_mem_ratio: None,
            label: "1 VM".into(),
        };
        let record = s.build(RngFactory::new(1)).run();
        assert!(record.total_bytes > 0);
        assert_eq!(record.kind, MigrationKind::NonLive);
    }
}
