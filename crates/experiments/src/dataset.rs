//! Dataset assembly: campaign results, averaging, and train/test splits.

use crate::runner::{run_all, RunnerConfig};
use crate::scenario::Scenario;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wavm3_cluster::MachineSet;
use wavm3_migration::{MigrationKind, MigrationRecord};
use wavm3_simkit::{SimDuration, TimeSeries};

/// One scenario's repetitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRuns {
    /// The configuration that was run.
    pub scenario: Scenario,
    /// Its repetitions.
    pub records: Vec<MigrationRecord>,
}

/// A complete campaign result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentDataset {
    /// All scenarios with their repetitions.
    pub runs: Vec<ScenarioRuns>,
}

impl ExperimentDataset {
    /// Execute a list of scenarios (rayon-parallel) and collect results.
    pub fn collect(scenarios: Vec<Scenario>, cfg: &RunnerConfig) -> Self {
        let results = run_all(&scenarios, cfg);
        ExperimentDataset {
            runs: scenarios
                .into_iter()
                .zip(results)
                .map(|(scenario, records)| ScenarioRuns { scenario, records })
                .collect(),
        }
    }

    /// Every record, flattened in campaign order.
    pub fn all_records(&self) -> Vec<&MigrationRecord> {
        self.runs.iter().flat_map(|r| r.records.iter()).collect()
    }

    /// Records from one machine set.
    pub fn records_of_set(&self, set: MachineSet) -> Vec<&MigrationRecord> {
        self.all_records()
            .into_iter()
            .filter(|r| r.machine_set == set)
            .collect()
    }

    /// Records of one mechanism.
    pub fn records_of_kind(&self, kind: MigrationKind) -> Vec<&MigrationRecord> {
        self.all_records()
            .into_iter()
            .filter(|r| r.kind == kind)
            .collect()
    }

    /// Total number of simulated migrations.
    pub fn record_count(&self) -> usize {
        self.runs.iter().map(|r| r.records.len()).sum()
    }

    /// Stratified run-level split: from each scenario's repetitions take
    /// `train_fraction` (at least one) for training, rest for testing.
    /// Used by the run-level models (LIU/STRUNK); WAVM3/HUANG use the
    /// reading-level split inside `wavm3-models`.
    pub fn split_runs(
        &self,
        train_fraction: f64,
        seed: u64,
    ) -> (Vec<&MigrationRecord>, Vec<&MigrationRecord>) {
        assert!((0.0..1.0).contains(&train_fraction), "fraction in [0,1)");
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (si, runs) in self.runs.iter().enumerate() {
            let n = runs.records.len();
            if n == 0 {
                continue;
            }
            // At least one training run, and (when possible) at least one
            // test run per scenario.
            let take = ((n as f64 * train_fraction).floor() as usize).max(1);
            let take = if n > 1 { take.min(n - 1) } else { take.min(n) };
            let mut idx: Vec<usize> = (0..n).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (si as u64) << 17);
            idx.shuffle(&mut rng);
            for (pos, &i) in idx.iter().enumerate() {
                if pos < take {
                    train.push(&runs.records[i]);
                } else {
                    test.push(&runs.records[i]);
                }
            }
        }
        (train, test)
    }
}

/// Point-wise mean of several power traces on a common 2 Hz grid,
/// truncated to the shortest trace — the "average of ten runs" the paper
/// plots in Figs. 2–7.
pub fn mean_trace(traces: &[&TimeSeries]) -> TimeSeries {
    let mut out = TimeSeries::new();
    if traces.is_empty() {
        return out;
    }
    let n_min = traces.iter().map(|t| t.len()).min().unwrap_or(0);
    if n_min == 0 {
        return out;
    }
    let grid = SimDuration::from_millis(500);
    let _ = grid; // traces already share the meter grid; average by index
    for i in 0..n_min {
        let t = traces[0].times()[i];
        let mean = traces.iter().map(|tr| tr.values()[i]).sum::<f64>() / traces.len() as f64;
        out.push(t, mean);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RepetitionPolicy;
    use crate::scenario::ExperimentFamily;
    use wavm3_simkit::SimTime;

    fn mini_dataset() -> ExperimentDataset {
        let scenarios = vec![
            Scenario {
                family: ExperimentFamily::CpuloadSource,
                kind: MigrationKind::NonLive,
                machine_set: MachineSet::M,
                source_load_vms: 0,
                target_load_vms: 0,
                migrant_mem_ratio: None,
                label: "0 VM".into(),
            },
            Scenario {
                family: ExperimentFamily::CpuloadSource,
                kind: MigrationKind::Live,
                machine_set: MachineSet::M,
                source_load_vms: 0,
                target_load_vms: 0,
                migrant_mem_ratio: None,
                label: "0 VM".into(),
            },
        ];
        ExperimentDataset::collect(
            scenarios,
            &RunnerConfig {
                repetitions: RepetitionPolicy::Fixed(3),
                base_seed: 11,
                ..Default::default()
            },
        )
    }

    #[test]
    fn collect_preserves_structure() {
        let ds = mini_dataset();
        assert_eq!(ds.runs.len(), 2);
        assert_eq!(ds.record_count(), 6);
        assert_eq!(ds.records_of_kind(MigrationKind::Live).len(), 3);
        assert_eq!(ds.records_of_set(MachineSet::M).len(), 6);
        assert_eq!(ds.records_of_set(MachineSet::O).len(), 0);
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let ds = mini_dataset();
        let (train, test) = ds.split_runs(0.34, 5);
        assert_eq!(train.len() + test.len(), 6);
        // One train record per scenario at 34% of 3 runs.
        assert_eq!(train.len(), 2);
        // Determinism.
        let (train2, _) = ds.split_runs(0.34, 5);
        assert_eq!(
            train.iter().map(|r| r.total_bytes).collect::<Vec<_>>(),
            train2.iter().map(|r| r.total_bytes).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mean_trace_averages_pointwise() {
        let mut a = TimeSeries::new();
        let mut b = TimeSeries::new();
        for i in 0..4u64 {
            a.push(SimTime::from_millis(i * 500), 100.0);
            b.push(SimTime::from_millis(i * 500), 200.0);
        }
        // b longer than a is truncated.
        b.push(SimTime::from_millis(2000), 999.0);
        let m = mean_trace(&[&a, &b]);
        assert_eq!(m.len(), 4);
        assert!(m.values().iter().all(|&v| v == 150.0));
    }

    #[test]
    fn mean_trace_empty_inputs() {
        assert!(mean_trace(&[]).is_empty());
        let empty = TimeSeries::new();
        assert!(mean_trace(&[&empty]).is_empty());
    }
}
