//! NETLOAD — the network-intensive extension experiment (paper §VIII
//! future work, motivated by the §I/§III-B observations).
//!
//! A `netserve` guest on the source keeps a swept fraction of the gigabit
//! line busy while a CPU-loaded VM live-migrates. The paper's two claims
//! become measurable:
//!
//! 1. *"negligible energy impacts caused by network-intensive workloads
//!    during migration"* — the instantaneous power during transfer moves
//!    only a few percent at moderate line shares (total energy grows
//!    purely through the longer transfer);
//! 2. *"a VM migration will never be issued when the bandwidth between two
//!    hosts is fully utilised"* — as the share approaches 1 the transfer
//!    time diverges, which is exactly why a consolidation manager avoids
//!    it.

use crate::runner::RunnerConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wavm3_cluster::{hardware, vm_instances, Cluster, Link, MachineSet, VmId};
use wavm3_harness::Wavm3Error;
use wavm3_migration::{MigrationConfig, MigrationKind, MigrationRecord, MigrationSimulation};
use wavm3_simkit::RngFactory;
use wavm3_workloads::{MatMulWorkload, NetworkWorkload, Workload};

/// Line shares swept by the NETLOAD experiment.
pub const LINE_SHARES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.9];

/// One sweep point's averaged outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetloadPoint {
    /// Background line share of the co-located network service.
    pub line_share: f64,
    /// Mean transfer duration, seconds.
    pub transfer_s: f64,
    /// Mean total migration energy (source + target), joules.
    pub energy_j: f64,
    /// Mean effective migration bandwidth, bytes/s.
    pub bandwidth_bps: f64,
    /// Mean source power during the transfer phase, watts.
    pub transfer_power_w: f64,
    /// Repetitions averaged.
    pub reps: usize,
}

/// Mean source power over a record's transfer phase, as a taxonomy error
/// when the trace has no samples in that window (a record so broken the
/// whole sweep result would be meaningless).
pub fn mean_transfer_power(record: &MigrationRecord) -> Result<f64, Wavm3Error> {
    record
        .source_trace
        .mean_power_between(record.phases.ts, record.phases.te)
        .ok_or_else(|| {
            Wavm3Error::invalid_input(
                "netload",
                format!(
                    "no power samples in the transfer window [{:.1}s, {:.1}s]",
                    record.phases.ts.as_secs_f64(),
                    record.phases.te.as_secs_f64()
                ),
            )
        })
}

/// Run one NETLOAD configuration.
pub fn run_netload_once(line_share: f64, seed: u64) -> MigrationRecord {
    let (src_spec, dst_spec) = hardware::pair(MachineSet::M);
    let mut cluster = Cluster::new(Link::gigabit());
    let source = cluster.add_host(src_spec);
    let target = cluster.add_host(dst_spec);
    let mut workloads: BTreeMap<VmId, Arc<dyn Workload>> = BTreeMap::new();

    let migrant = cluster.boot_vm(source, vm_instances::migrating_cpu());
    workloads.insert(migrant, Arc::new(MatMulWorkload::full(4)));
    if line_share > 0.0 {
        let net = cluster.boot_vm(source, vm_instances::load_cpu());
        workloads.insert(net, Arc::new(NetworkWorkload::with_line_share(line_share)));
    }

    MigrationSimulation::new(
        cluster,
        workloads,
        migrant,
        source,
        target,
        MigrationConfig::new(MigrationKind::Live),
        RngFactory::new(seed),
    )
    .run()
}

/// Run the full sweep under `cfg`'s repetition count. A record without
/// transfer-phase power samples aborts the sweep with a taxonomy error
/// (propagated through `cli::run`) instead of panicking mid-campaign.
pub fn run_netload_sweep(cfg: &RunnerConfig) -> Result<Vec<NetloadPoint>, Wavm3Error> {
    let reps = match cfg.repetitions {
        crate::runner::RepetitionPolicy::Fixed(n) => n.max(1),
        crate::runner::RepetitionPolicy::VarianceRule { min, .. } => min,
    };
    LINE_SHARES
        .iter()
        .map(|&share| {
            let records: Vec<MigrationRecord> = (0..reps)
                .map(|r| {
                    run_netload_once(
                        share,
                        cfg.base_seed ^ ((share * 100.0) as u64) << 8 | r as u64,
                    )
                })
                .collect();
            let n = records.len() as f64;
            let mut transfer_power_w = 0.0;
            for record in &records {
                transfer_power_w += mean_transfer_power(record)?;
            }
            Ok(NetloadPoint {
                line_share: share,
                transfer_s: records
                    .iter()
                    .map(|x| x.phases.transfer().as_secs_f64())
                    .sum::<f64>()
                    / n,
                energy_j: records.iter().map(|x| x.total_energy_j()).sum::<f64>() / n,
                bandwidth_bps: records
                    .iter()
                    .map(|x| x.mean_transfer_bandwidth())
                    .sum::<f64>()
                    / n,
                transfer_power_w: transfer_power_w / n,
                reps: records.len(),
            })
        })
        .collect()
}

/// Render the sweep as a table.
pub fn render(points: &[NetloadPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "NETLOAD (extension): live migration next to a network-intensive guest"
    );
    let _ = writeln!(
        out,
        "{:>11} {:>12} {:>14} {:>12} {:>14} {:>6}",
        "line share", "transfer", "bandwidth", "P_transfer", "E_total", "reps"
    );
    let base = points.first().map(|p| p.energy_j).unwrap_or(1.0);
    for p in points {
        let _ = writeln!(
            out,
            "{:>10.0}% {:>11.1}s {:>11.1}MB/s {:>10.1}W {:>10.1}kJ ({:+.1}%) {:>4}",
            p.line_share * 100.0,
            p.transfer_s,
            p.bandwidth_bps / 1e6,
            p.transfer_power_w,
            p.energy_j / 1e3,
            100.0 * (p.energy_j - base) / base,
            p.reps
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(instantaneous power barely moves — the energy growth is a pure"
    );
    let _ = writeln!(
        out,
        " duration effect of sharing the link, and it diverges toward"
    );
    let _ = writeln!(
        out,
        " saturation: the paper's §III-B rule to never migrate there)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RepetitionPolicy;

    #[test]
    fn moderate_share_has_small_power_impact() {
        // The paper's "negligible energy impact" is a statement about
        // instantaneous draw: background traffic changes the *power*
        // during transfer only marginally. Total energy does grow — but
        // almost purely through the longer transfer (a duration effect),
        // which is the §III-B argument for not migrating on busy links.
        let quiet = run_netload_once(0.0, 1);
        let busy = run_netload_once(0.25, 1);
        let mean_power =
            |r: &MigrationRecord| mean_transfer_power(r).expect("transfer window has samples");
        let rel_power = (mean_power(&busy) - mean_power(&quiet)).abs() / mean_power(&quiet);
        assert!(
            rel_power < 0.10,
            "25% background traffic changed transfer power by {:.0}%",
            rel_power * 100.0
        );
        // The energy growth is explained by the duration growth.
        let e_ratio = busy.total_energy_j() / quiet.total_energy_j();
        let t_ratio = busy.phases.total().as_secs_f64() / quiet.phases.total().as_secs_f64();
        assert!(
            (e_ratio - t_ratio).abs() < 0.15,
            "energy x{e_ratio:.2} should track duration x{t_ratio:.2}"
        );
    }

    #[test]
    fn near_saturation_stretches_transfer_sharply() {
        let quiet = run_netload_once(0.0, 2);
        let saturated = run_netload_once(0.9, 2);
        assert!(
            saturated.phases.transfer().as_secs_f64() > 3.0 * quiet.phases.transfer().as_secs_f64(),
            "90% background share must slash migration bandwidth: {:.0}s vs {:.0}s",
            quiet.phases.transfer().as_secs_f64(),
            saturated.phases.transfer().as_secs_f64()
        );
    }

    #[test]
    fn sweep_is_monotone_in_transfer_time() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: 5,
            ..Default::default()
        };
        let points = run_netload_sweep(&cfg).expect("sweep records have transfer samples");
        assert_eq!(points.len(), LINE_SHARES.len());
        for w in points.windows(2) {
            assert!(
                w[1].transfer_s >= w[0].transfer_s,
                "transfer must not shrink with more background traffic"
            );
            assert!(w[1].bandwidth_bps <= w[0].bandwidth_bps + 1.0);
        }
        assert!(points.iter().all(|p| p.transfer_power_w > 0.0));
        let table = render(&points);
        assert!(table.contains("NETLOAD"));
        assert!(table.contains("90%"));
        assert!(table.contains("P_transfer"));
    }

    #[test]
    fn broken_record_yields_a_taxonomy_error() {
        let mut record = run_netload_once(0.0, 3);
        // An inverted transfer window has no samples: the helper must
        // report it instead of panicking.
        record.phases.te = record.phases.ms;
        let err = mean_transfer_power(&record).expect_err("empty window");
        assert!(err.to_string().contains("netload"), "{err}");
    }
}
