//! Crash-safe campaign execution: the experiments-side glue over
//! `wavm3-harness`.
//!
//! A [`Campaign`] wraps a [`RunnerConfig`] with the supervision the
//! harness provides — per-scenario checkpoint/resume, panic isolation,
//! and deadline budgets — while keeping the unsupervised fast path
//! bit-identical: [`Campaign::plain`] with no checkpoint directory and
//! no budget produces exactly the records (and trace events) of
//! [`ExperimentDataset::collect`].
//!
//! ## Checkpoint identity
//!
//! Every scenario checkpoint is fingerprinted over the serialized
//! [`RunnerConfig`] (seed, repetition policy, fault mix, retry policy),
//! the scenario id, and the checkpoint format version. Because results
//! are a pure function of `(runner config, scenario)` — the runner seeds
//! every repetition as `base.child(hash(scenario)).child(rep)` — a
//! fingerprint match proves the journaled records are byte-identical to
//! what a re-run would produce, which is what makes resumed campaigns
//! safe to merge into golden outputs.

use crate::dataset::{ExperimentDataset, ScenarioRuns};
use crate::runner::{run_scenario_supervised, RunnerConfig, ScenarioFailure};
use crate::scenario::Scenario;
use rayon::prelude::*;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use wavm3_harness::{
    fingerprint_of, Budget, CheckpointLoad, CheckpointStore, Wavm3Error, CHECKPOINT_VERSION,
};
use wavm3_migration::MigrationRecord;

/// Supervision knobs, typically parsed from the shared CLI flags.
#[derive(Debug, Clone, Default)]
pub struct SupervisorOptions {
    /// Journal per-scenario results into this directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load (and verify) existing checkpoints instead of recomputing.
    pub resume: bool,
    /// Per-scenario wall-clock / sim-time budget.
    pub budget: Budget,
}

/// Aggregate supervision counters for the end-of-campaign report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CampaignStats {
    /// Scenarios computed to completion this run.
    pub completed: usize,
    /// Scenarios served from verified checkpoints.
    pub resumed: usize,
    /// Checkpoints that failed verification and were quarantined.
    pub quarantined: usize,
    /// Scenarios whose repetition policy was cut short by a budget.
    pub budget_truncated: usize,
    /// Scenarios that panicked and were recorded as failures.
    pub failed: usize,
}

#[derive(Debug, Default)]
struct CampaignState {
    stats: CampaignStats,
    failures: Vec<ScenarioFailure>,
}

/// The partial-results report of a supervised campaign.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Aggregate counters.
    pub stats: CampaignStats,
    /// Every scenario failure, sorted by scenario id.
    pub failures: Vec<ScenarioFailure>,
    /// Flat wall-clock profile (scope path → stage stats), filled by the
    /// CLI layer from the observability session when the self-profiler is
    /// armed; empty otherwise. Wall-clock data — excluded from all
    /// determinism comparisons.
    pub profiling: wavm3_obs::perf::ProfileSnapshot,
}

/// A supervised experiment campaign: a [`RunnerConfig`] plus checkpoint
/// store, budget, and failure ledger. Shared immutably across rayon
/// workers; the ledger sits behind a mutex and is sorted on read so the
/// report is deterministic regardless of completion order.
pub struct Campaign {
    runner: RunnerConfig,
    store: Option<CheckpointStore>,
    budget: Budget,
    state: Arc<Mutex<CampaignState>>,
}

impl Campaign {
    /// An unsupervised campaign: no checkpoints, no budget, panics
    /// propagate only as recorded failures. Never fails to construct and
    /// performs no validation — this is the drop-in stand-in for a bare
    /// [`RunnerConfig`] in tests and goldens.
    pub fn plain(runner: RunnerConfig) -> Self {
        Campaign {
            runner,
            store: None,
            budget: Budget::UNLIMITED,
            state: Arc::default(),
        }
    }

    /// A supervised campaign. Validates `runner` (rejecting NaN,
    /// inverted-interval and impossible-policy configs up-front) and
    /// opens the checkpoint directory when one was requested.
    pub fn new(runner: RunnerConfig, options: SupervisorOptions) -> Result<Self, Wavm3Error> {
        runner.validate()?;
        let store = options
            .checkpoint_dir
            .map(|dir| CheckpointStore::open(dir, options.resume))
            .transpose()?;
        Ok(Campaign {
            runner,
            store,
            budget: options.budget,
            state: Arc::default(),
        })
    }

    /// The wrapped runner configuration.
    pub fn runner(&self) -> &RunnerConfig {
        &self.runner
    }

    /// The checkpoint directory, when journaling is on.
    pub fn checkpoint_dir(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(|s| s.dir())
    }

    /// The same supervision (shared store, budget, and failure ledger)
    /// over a different runner configuration — used by sweeps that vary
    /// the seed. Checkpoints cannot collide: the fingerprint covers the
    /// whole runner config.
    pub fn with_runner(&self, runner: RunnerConfig) -> Campaign {
        Campaign {
            runner,
            store: self.store.clone(),
            budget: self.budget,
            state: Arc::clone(&self.state),
        }
    }

    /// Execute `scenarios` (rayon-parallel, output order = input order)
    /// under full supervision and collect the dataset. Failed scenarios
    /// contribute an empty record list and are recorded in the report;
    /// the campaign always completes.
    pub fn collect(&self, scenarios: Vec<Scenario>) -> ExperimentDataset {
        let _timer = wavm3_obs::perf::scope("runner.campaign");
        let started = std::time::Instant::now();
        let results: Vec<Vec<MigrationRecord>> = scenarios
            .par_iter()
            .map(|scenario| self.run_one(scenario))
            .collect();
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            let runs: usize = results.iter().map(Vec::len).sum();
            wavm3_obs::metrics::gauge_set(
                crate::runner::throughput_gauge(&self.runner),
                runs as f64 / elapsed,
            );
        }
        ExperimentDataset {
            runs: scenarios
                .into_iter()
                .zip(results)
                .map(|(scenario, records)| ScenarioRuns { scenario, records })
                .collect(),
        }
    }

    /// The campaign's fingerprint for `scenario`: runner config JSON +
    /// scenario id + checkpoint format version.
    fn fingerprint(&self, scenario: &Scenario) -> String {
        let runner_json = serde_json::to_string(&self.runner)
            .expect("RunnerConfig is a plain data struct and always serialises");
        fingerprint_of(&[
            &runner_json,
            &scenario.id(),
            &CHECKPOINT_VERSION.to_string(),
        ])
    }

    fn run_one(&self, scenario: &Scenario) -> Vec<MigrationRecord> {
        let id = scenario.id();
        // An interrupt (SIGINT/SIGTERM caught by the CLI layer) drains the
        // campaign instead of killing it: scenarios already running finish
        // and checkpoint normally, the rest are skipped here and recorded
        // as failures, and `cli::run` maps the whole run to exit code 3.
        if let Some(signal) = wavm3_harness::signal::interrupted_by() {
            self.trace_lifecycle(&id, "scenario.interrupted", 0);
            let mut state = self.lock();
            state.stats.failed += 1;
            state.failures.push(ScenarioFailure {
                scenario: id,
                base_seed: self.runner.base_seed,
                rep: 0,
                fault_plan: None,
                message: format!("interrupted by {signal}: scenario skipped during drain"),
            });
            return Vec::new();
        }
        if let Some(records) = self.try_restore(scenario, &id) {
            return records;
        }
        match run_scenario_supervised(scenario, &self.runner, &self.budget) {
            Ok(result) => {
                if result.budget_truncated {
                    self.lock().stats.budget_truncated += 1;
                    self.trace_lifecycle(&id, "checkpoint.skipped_truncated", result.records.len());
                    // Deliberately NOT checkpointed: a truncated scenario
                    // must be recomputed in full on resume, otherwise the
                    // merged campaign would differ from an uninterrupted one.
                } else {
                    self.save_checkpoint(scenario, &id, &result.records);
                    self.lock().stats.completed += 1;
                }
                result.records
            }
            Err(failure) => {
                eprintln!(
                    "warning: scenario '{}' failed at rep {} (seed {:#x}): {}",
                    failure.scenario, failure.rep, failure.base_seed, failure.message
                );
                self.trace_lifecycle(&id, "scenario.failed", failure.rep as usize);
                let mut state = self.lock();
                state.stats.failed += 1;
                state.failures.push(*failure);
                Vec::new()
            }
        }
    }

    /// Load + verify + deserialize a checkpoint; payloads that fail to
    /// deserialize (format drift the header version missed) are
    /// quarantined through the same path as corrupt files.
    fn try_restore(&self, scenario: &Scenario, id: &str) -> Option<Vec<MigrationRecord>> {
        let store = self.store.as_ref()?;
        match store.load(id, &self.fingerprint(scenario)) {
            Ok(CheckpointLoad::Valid(payload)) => {
                match serde_json::from_str::<Vec<MigrationRecord>>(&payload) {
                    Ok(records) => {
                        self.lock().stats.resumed += 1;
                        self.trace_lifecycle(id, "checkpoint.loaded", records.len());
                        Some(records)
                    }
                    Err(e) => {
                        let path = store.path_for(id);
                        if let Err(q) = store.quarantine(&path, &format!("payload: {e}")) {
                            eprintln!("warning: could not quarantine {}: {q}", path.display());
                        }
                        self.lock().stats.quarantined += 1;
                        self.trace_lifecycle(id, "checkpoint.quarantined", 0);
                        None
                    }
                }
            }
            Ok(CheckpointLoad::Quarantined { .. }) => {
                self.lock().stats.quarantined += 1;
                self.trace_lifecycle(id, "checkpoint.quarantined", 0);
                None
            }
            Ok(CheckpointLoad::Missing) => None,
            Err(e) => {
                eprintln!("warning: checkpoint load for '{id}' failed: {e}");
                None
            }
        }
    }

    fn save_checkpoint(&self, scenario: &Scenario, id: &str, records: &Vec<MigrationRecord>) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let payload = match serde_json::to_string(records) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("warning: could not serialise checkpoint for '{id}': {e}");
                return;
            }
        };
        match store.save(id, &self.fingerprint(scenario), &payload) {
            Ok(()) => self.trace_lifecycle(id, "checkpoint.saved", records.len()),
            Err(e) => eprintln!("warning: could not save checkpoint for '{id}': {e}"),
        }
    }

    /// Checkpoint lifecycle events ride the deterministic trace. They are
    /// emitted from rayon workers, so they must live in their own run
    /// scope; the "z-harness" key sorts after every repetition buffer of
    /// the same scenario, like the variance-rule progress events.
    fn trace_lifecycle(&self, id: &str, name: &'static str, records: usize) {
        if !wavm3_obs::active() {
            return;
        }
        wavm3_obs::run_scope(format!("{id}|z-harness"), || {
            wavm3_obs::event!(
                wavm3_obs::Level::Info, "wavm3_harness", name,
                wavm3_simkit::SimTime::ZERO,
                "scenario" => id.to_string(),
                "records" => records as u64,
            );
        });
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CampaignState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// `true` when at least one scenario failed.
    pub fn has_failures(&self) -> bool {
        !self.lock().failures.is_empty()
    }

    /// Snapshot the partial-results report (stats + failures, sorted by
    /// scenario id for determinism).
    pub fn report(&self) -> CampaignReport {
        let state = self.lock();
        let mut failures = state.failures.clone();
        failures.sort_by(|a, b| a.scenario.cmp(&b.scenario).then(a.rep.cmp(&b.rep)));
        CampaignReport {
            stats: state.stats,
            failures,
            profiling: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RepetitionPolicy;
    use crate::scenario::ExperimentFamily;
    use wavm3_cluster::MachineSet;
    use wavm3_migration::MigrationKind;

    fn cheap_scenarios() -> Vec<Scenario> {
        vec![
            Scenario {
                family: ExperimentFamily::CpuloadSource,
                kind: MigrationKind::NonLive,
                machine_set: MachineSet::M,
                source_load_vms: 0,
                target_load_vms: 0,
                migrant_mem_ratio: None,
                label: "0 VM".into(),
            },
            Scenario {
                family: ExperimentFamily::CpuloadSource,
                kind: MigrationKind::Live,
                machine_set: MachineSet::M,
                source_load_vms: 0,
                target_load_vms: 0,
                migrant_mem_ratio: None,
                label: "0 VM live".into(),
            },
        ]
    }

    fn fixed_cfg(seed: u64) -> RunnerConfig {
        RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(2),
            base_seed: seed,
            ..Default::default()
        }
    }

    #[test]
    fn plain_campaign_matches_unsupervised_collect() {
        let cfg = fixed_cfg(21);
        let supervised = Campaign::plain(cfg).collect(cheap_scenarios());
        let bare = ExperimentDataset::collect(cheap_scenarios(), &cfg);
        assert_eq!(supervised, bare, "supervision must not perturb results");
    }

    #[test]
    fn invalid_runner_config_is_rejected_at_construction() {
        let cfg = RunnerConfig {
            repetitions: RepetitionPolicy::Fixed(0),
            ..Default::default()
        };
        let err = Campaign::new(cfg, SupervisorOptions::default())
            .err()
            .expect("zero repetitions must be rejected");
        assert!(err.is_config_error(), "{err}");
    }

    #[test]
    fn fingerprints_separate_seeds_and_scenarios() {
        let a = Campaign::plain(fixed_cfg(1));
        let b = Campaign::plain(fixed_cfg(2));
        let scenarios = cheap_scenarios();
        assert_ne!(a.fingerprint(&scenarios[0]), b.fingerprint(&scenarios[0]));
        assert_ne!(a.fingerprint(&scenarios[0]), a.fingerprint(&scenarios[1]));
        assert_eq!(a.fingerprint(&scenarios[0]), a.fingerprint(&scenarios[0]));
    }

    #[test]
    fn with_runner_shares_the_failure_ledger() {
        let base = Campaign::plain(fixed_cfg(1));
        let forked = base.with_runner(fixed_cfg(2));
        forked.lock().stats.completed += 1;
        assert_eq!(base.report().stats.completed, 1);
    }
}
