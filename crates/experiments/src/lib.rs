//! # wavm3-experiments — the paper's experimental campaign
//!
//! Encodes the experiment design of Table IIa (the CPULOAD and MEMLOAD
//! families), runs it against the simulator with the paper's repetition
//! protocol (≥10 runs, stop when run-variance change < 10 %), assembles
//! datasets, and regenerates **every table and figure** of the evaluation:
//!
//! | target | binary |
//! |---|---|
//! | Fig. 1 (actors diagram + implementation map) | `--bin fig1` |
//! | Fig. 2 (phase-annotated traces) | `cargo run -p wavm3-experiments --bin fig2` |
//! | Fig. 3 (CPULOAD-SOURCE) | `--bin fig3` |
//! | Fig. 4 (CPULOAD-TARGET) | `--bin fig4` |
//! | Fig. 5 (MEMLOAD-VM) | `--bin fig5` |
//! | Fig. 6 (MEMLOAD-SOURCE) | `--bin fig6` |
//! | Fig. 7 (MEMLOAD-TARGET) | `--bin fig7` |
//! | Table I (workload impact) | `--bin table1` |
//! | Table II (setup) | `--bin table2` |
//! | Tables III/IV (WAVM3 coefficients) | `--bin table3`, `--bin table4` |
//! | Table V (cross-set NRMSE) | `--bin table5` |
//! | Table VI (baseline coefficients) | `--bin table6` |
//! | Table VII (model comparison) | `--bin table7` |
//! | everything at once | `--bin reproduce_all` |
//! | NETLOAD extension (network-intensive guests) | `--bin netload` |
//! | WAVM3 ablation study | `--bin ablation` |
//! | mechanism comparison incl. post-copy | `--bin mechanisms` |
//! | per-phase prediction fidelity | `--bin phases` |
//! | training-fraction sensitivity | `--bin sensitivity` |
//! | seed-robustness of the orderings | `--bin robustness` |
//! | JSON/CSV dataset export | `--bin campaign` |
//! | metrics regression gate | `--bin wavm3-regress` |
//!
//! Every binary accepts `--reps N` (fixed repetitions) and `--seed S`; the
//! default follows the paper's variance-rule protocol. The crash-safety
//! flags `--checkpoint-dir DIR` and `--resume` journal per-scenario
//! results through `wavm3-harness` and reload them on restart, and
//! `--wall-budget-s` / `--sim-budget-s` bound each scenario's runtime.

pub mod ablation;
pub mod campaign;
pub mod cli;
pub mod dataset;
pub mod export;
pub mod figures;
pub mod netload;
pub mod regress;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod tables;

pub use campaign::{Campaign, CampaignReport, CampaignStats, SupervisorOptions};
pub use dataset::{mean_trace, ExperimentDataset, ScenarioRuns};
pub use regress::{compare, RegressionReport, Tolerances, Verdict};
pub use report::render_campaign_html;
pub use runner::{
    run_all, run_scenario, run_scenario_supervised, throughput_gauge, RepetitionPolicy,
    RunnerConfig, ScenarioFailure, ScenarioResult,
};
pub use scenario::{ExperimentFamily, Scenario, DR_LEVELS_PCT, LOAD_VM_LEVELS};
