//! Self-contained HTML campaign report.
//!
//! [`render_campaign_html`] folds the observability session's output —
//! the metrics snapshot, the energy-attribution ledger and the campaign
//! supervision report — into one dependency-free HTML document (inline
//! CSS, no scripts, no external assets), so a CI artifact can be opened
//! straight from the build page. Sections:
//!
//! 1. campaign supervision (completed / resumed / quarantined /
//!    budget-truncated / failed, plus the per-scenario failure table),
//! 2. phase × term energy breakdown aggregated from the ledger, split
//!    by host role, with per-kind/outcome migration counts,
//! 3. model-residual summaries (the `residual.energy.*` gauges pivoted
//!    into a model × role × kind table),
//! 4. fault / retry / run counters and the distribution histograms.

use crate::campaign::CampaignReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use wavm3_obs::{ObsReport, RoleLedger, TermEnergy};

/// Escape `&`, `<`, `>` and `"` for safe embedding in HTML text/attrs.
fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

/// Fixed-width number for table cells (3 decimals, `n/a` for NaN).
fn cell(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "n/a".to_string()
    }
}

fn term_row(out: &mut String, label: &str, source: &TermEnergy, target: &TermEnergy) {
    let total = source.total_j() + target.total_j();
    let _ = writeln!(
        out,
        "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{}</td></tr>",
        escape_html(label),
        cell(source.total_j()),
        cell(target.total_j()),
        cell(total),
    );
}

fn energy_section(out: &mut String, ledger: &[(String, wavm3_obs::LedgerEntry)]) {
    let _ = writeln!(out, "<h2>Energy attribution</h2>");
    if ledger.is_empty() {
        let _ = writeln!(
            out,
            "<p>No ledger entries were collected (run with <code>--ledger-out</code> \
             or <code>--html-report</code> to arm the ledger).</p>"
        );
        return;
    }
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut source = RoleLedger::default();
    let mut target = RoleLedger::default();
    for (_, entry) in ledger {
        *counts
            .entry((entry.kind.to_string(), entry.outcome.to_string()))
            .or_insert(0) += 1;
        source.initiation = source.initiation.plus(&entry.source.initiation);
        source.transfer = source.transfer.plus(&entry.source.transfer);
        source.activation = source.activation.plus(&entry.source.activation);
        source.rollback = source.rollback.plus(&entry.source.rollback);
        target.initiation = target.initiation.plus(&entry.target.initiation);
        target.transfer = target.transfer.plus(&entry.target.transfer);
        target.activation = target.activation.plus(&entry.target.activation);
        target.rollback = target.rollback.plus(&entry.target.rollback);
    }

    let _ = writeln!(
        out,
        "<p>{} migrations in the ledger, {:.3} kJ total.</p>",
        ledger.len(),
        (source.total_j() + target.total_j()) / 1e3
    );
    let _ = writeln!(
        out,
        "<table><tr><th>kind</th><th>outcome</th><th class=\"num\">migrations</th></tr>"
    );
    for ((kind, outcome), n) in &counts {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td class=\"num\">{n}</td></tr>",
            escape_html(kind),
            escape_html(outcome)
        );
    }
    let _ = writeln!(out, "</table>");

    let _ = writeln!(
        out,
        "<h3>Per phase (J)</h3>\
         <table><tr><th>phase</th><th class=\"num\">source</th>\
         <th class=\"num\">target</th><th class=\"num\">total</th></tr>"
    );
    for ((label, src), (_, dst)) in source.phases().iter().zip(target.phases().iter()) {
        term_row(out, label, src, dst);
    }
    let _ = writeln!(out, "</table>");

    let src_terms = source
        .phases()
        .iter()
        .fold(TermEnergy::default(), |acc, (_, t)| acc.plus(t));
    let dst_terms = target
        .phases()
        .iter()
        .fold(TermEnergy::default(), |acc, (_, t)| acc.plus(t));
    let _ = writeln!(
        out,
        "<h3>Per term (J)</h3>\
         <table><tr><th>term</th><th class=\"num\">source</th>\
         <th class=\"num\">target</th><th class=\"num\">total</th></tr>"
    );
    for (label, s, d) in [
        ("idle", src_terms.idle_j, dst_terms.idle_j),
        ("cpu", src_terms.cpu_j, dst_terms.cpu_j),
        ("mem-dirty", src_terms.mem_dirty_j, dst_terms.mem_dirty_j),
        ("network", src_terms.network_j, dst_terms.network_j),
        ("service", src_terms.service_j, dst_terms.service_j),
    ] {
        let _ = writeln!(
            out,
            "<tr><td>{label}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td></tr>",
            cell(s),
            cell(d),
            cell(s + d)
        );
    }
    let _ = writeln!(out, "</table>");
}

fn residual_section(out: &mut String, gauges: &BTreeMap<String, f64>) {
    // Pivot `residual.energy.{model}.{role}.{kind}.{stat}` gauges into a
    // model × role × kind table of MAE / RMSE / NRMSE.
    let mut rows: BTreeMap<(String, String, String), [Option<f64>; 3]> = BTreeMap::new();
    for (name, value) in gauges {
        let Some(rest) = name.strip_prefix("residual.energy.") else {
            continue;
        };
        let parts: Vec<&str> = rest.split('.').collect();
        if parts.len() != 4 {
            continue;
        }
        let slot = match parts[3] {
            "mae_j" => 0,
            "rmse_j" => 1,
            "nrmse_pct" => 2,
            _ => continue,
        };
        rows.entry((parts[0].into(), parts[1].into(), parts[2].into()))
            .or_default()[slot] = Some(*value);
    }
    let _ = writeln!(out, "<h2>Model residuals (per-migration energy)</h2>");
    if rows.is_empty() {
        let _ = writeln!(
            out,
            "<p>No residual diagnostics in this run (they stream from the \
             model-evaluation tables, not the raw campaign).</p>"
        );
        return;
    }
    let _ = writeln!(
        out,
        "<table><tr><th>model</th><th>role</th><th>kind</th>\
         <th class=\"num\">MAE (J)</th><th class=\"num\">RMSE (J)</th>\
         <th class=\"num\">NRMSE (%)</th></tr>"
    );
    for ((model, role, kind), stats) in &rows {
        let fmt = |v: Option<f64>| v.map(cell).unwrap_or_else(|| "n/a".to_string());
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
            escape_html(model),
            escape_html(role),
            escape_html(kind),
            fmt(stats[0]),
            fmt(stats[1]),
            fmt(stats[2]),
        );
    }
    let _ = writeln!(out, "</table>");
}

fn supervision_section(out: &mut String, campaign: &CampaignReport) {
    let _ = writeln!(out, "<h2>Campaign supervision</h2>");
    let s = &campaign.stats;
    let _ = writeln!(
        out,
        "<table><tr><th class=\"num\">completed</th><th class=\"num\">resumed</th>\
         <th class=\"num\">quarantined</th><th class=\"num\">budget-truncated</th>\
         <th class=\"num\">failed</th></tr>\
         <tr><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{}</td><td class=\"num\">{}</td></tr></table>",
        s.completed, s.resumed, s.quarantined, s.budget_truncated, s.failed
    );
    if !campaign.failures.is_empty() {
        let _ = writeln!(
            out,
            "<h3>Failures</h3><table><tr><th>scenario</th><th class=\"num\">rep</th>\
             <th class=\"num\">seed</th><th>message</th></tr>"
        );
        for f in &campaign.failures {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{:#x}</td>\
                 <td>{}</td></tr>",
                escape_html(&f.scenario),
                f.rep,
                f.base_seed,
                escape_html(&f.message)
            );
        }
        let _ = writeln!(out, "</table>");
    }
}

fn profiling_section(out: &mut String, campaign: &CampaignReport) {
    if campaign.profiling.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "<h2>Wall-clock profile</h2>\
         <p>Self-profiler call tree, flattened (wall-clock data — not \
         reproducible across machines).</p>\
         <table><tr><th>scope path</th><th class=\"num\">count</th>\
         <th class=\"num\">total (ms)</th><th class=\"num\">self (ms)</th>\
         <th class=\"num\">max (ms)</th></tr>"
    );
    for (path, s) in &campaign.profiling {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
            escape_html(path),
            s.count,
            cell(s.total_ms),
            cell(s.self_ms),
            cell(s.max_ms),
        );
    }
    let _ = writeln!(out, "</table>");
}

fn metrics_section(out: &mut String, obs: &ObsReport) {
    let snap = &obs.metrics;
    let _ = writeln!(out, "<h2>Counters</h2>");
    if snap.counters.is_empty() {
        let _ = writeln!(out, "<p>No counters recorded.</p>");
    } else {
        let _ = writeln!(
            out,
            "<table><tr><th>counter</th><th class=\"num\">value</th></tr>"
        );
        for (name, value) in &snap.counters {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td class=\"num\">{value}</td></tr>",
                escape_html(name)
            );
        }
        let _ = writeln!(out, "</table>");
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "<h2>Distributions</h2>\
             <table><tr><th>histogram</th><th class=\"num\">samples</th>\
             <th class=\"num\">mean</th><th class=\"num\">p50</th>\
             <th class=\"num\">p95</th><th class=\"num\">p99</th>\
             <th class=\"num\">sum</th></tr>"
        );
        let quant = |h: &wavm3_obs::metrics::HistogramSnapshot, q: f64| {
            h.quantile(q).map(cell).unwrap_or_else(|| "n/a".to_string())
        };
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td></tr>",
                escape_html(name),
                h.count,
                h.mean().map(cell).unwrap_or_else(|| "n/a".to_string()),
                quant(h, 0.5),
                quant(h, 0.95),
                quant(h, 0.99),
                cell(h.sum())
            );
        }
        let _ = writeln!(out, "</table>");
    }
}

/// Render the whole campaign report as one self-contained HTML page.
pub fn render_campaign_html(obs: &ObsReport, campaign: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>WAVM3 campaign report</title>\n<style>\n\
         body {{ font-family: sans-serif; margin: 2rem auto; max-width: 60rem; \
         color: #222; }}\n\
         table {{ border-collapse: collapse; margin: 0.5rem 0 1rem; }}\n\
         th, td {{ border: 1px solid #bbb; padding: 0.25rem 0.6rem; }}\n\
         th {{ background: #eee; text-align: left; }}\n\
         td.num, th.num {{ text-align: right; font-variant-numeric: tabular-nums; }}\n\
         h1 {{ border-bottom: 2px solid #444; padding-bottom: 0.3rem; }}\n\
         code {{ background: #f4f4f4; padding: 0 0.2rem; }}\n\
         </style>\n</head>\n<body>\n<h1>WAVM3 campaign report</h1>"
    );
    supervision_section(&mut out, campaign);
    energy_section(&mut out, &obs.ledger);
    residual_section(&mut out, &obs.metrics.gauges);
    metrics_section(&mut out, obs);
    profiling_section(&mut out, campaign);
    let _ = writeln!(out, "</body>\n</html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_obs::metrics::MetricsSnapshot;
    use wavm3_obs::LedgerEntry;

    fn empty_campaign() -> CampaignReport {
        CampaignReport {
            stats: Default::default(),
            failures: Vec::new(),
            profiling: Default::default(),
        }
    }

    fn entry(j: f64) -> LedgerEntry {
        let term = TermEnergy {
            idle_j: j,
            cpu_j: j / 2.0,
            mem_dirty_j: 0.0,
            network_j: j / 4.0,
            service_j: 0.0,
        };
        let role = RoleLedger {
            initiation: term,
            transfer: term,
            activation: term,
            rollback: TermEnergy::default(),
        };
        LedgerEntry {
            kind: "live",
            outcome: "completed",
            source: role,
            target: role,
        }
    }

    fn report_with(ledger: Vec<(String, LedgerEntry)>, snap: MetricsSnapshot) -> ObsReport {
        ObsReport {
            events: Vec::new(),
            ledger,
            metrics: snap,
            profiling: Default::default(),
            perf: Default::default(),
        }
    }

    #[test]
    fn report_is_self_contained_and_covers_all_sections() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("faults.injected".into(), 3);
        snap.gauges
            .insert("residual.energy.wavm3.source.live.mae_j".into(), 12.0);
        snap.gauges
            .insert("residual.energy.wavm3.source.live.rmse_j".into(), 15.0);
        snap.gauges
            .insert("residual.energy.wavm3.source.live.nrmse_pct".into(), 4.5);
        let obs = report_with(vec![("s|rep000|att0".into(), entry(100.0))], snap);
        let html = render_campaign_html(&obs, &empty_campaign());

        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Campaign supervision"));
        assert!(html.contains("Energy attribution"));
        assert!(html.contains("1 migrations in the ledger"));
        assert!(html.contains("Model residuals"));
        assert!(html.contains("wavm3"));
        assert!(html.contains("faults.injected"));
        // Self-contained: no external links, scripts or images.
        for forbidden in ["<script", "src=", "href=", "http://", "https://"] {
            assert!(!html.contains(forbidden), "found {forbidden}");
        }
    }

    #[test]
    fn html_escapes_metric_names_and_failure_messages() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a<b>&\"c\"".into(), 1);
        let obs = report_with(Vec::new(), snap);
        let mut campaign = empty_campaign();
        campaign.failures.push(crate::runner::ScenarioFailure {
            scenario: "<evil>".into(),
            base_seed: 7,
            rep: 0,
            fault_plan: None,
            message: "panic <at> \"x\"".into(),
        });
        let html = render_campaign_html(&obs, &campaign);
        assert!(html.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(html.contains("&lt;evil&gt;"));
        assert!(!html.contains("<evil>"));
    }

    #[test]
    fn empty_ledger_points_at_the_flag() {
        let obs = report_with(Vec::new(), MetricsSnapshot::default());
        let html = render_campaign_html(&obs, &empty_campaign());
        assert!(html.contains("--ledger-out"));
    }
}
