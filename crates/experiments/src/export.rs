//! Dataset exporters: flatten campaign results into analysis-friendly
//! formats (CSV rows per reading, CSV rows per run) for external tooling —
//! the counterpart of the paper's spreadsheet stage.

use crate::dataset::ExperimentDataset;
use std::fmt::Write as _;
use std::path::Path;
use wavm3_harness::Wavm3Error;
use wavm3_power::MigrationPhase;

/// Write `contents` to `path` via the harness's atomic tmp-then-rename
/// protocol, creating missing parent directories and annotating any I/O
/// error with the offending path. The regeneration binaries route every
/// artefact through this, so an interrupted run never leaves a truncated
/// CSV behind (a half-written artefact would poison a later `--resume`
/// diff), and a read-only or missing output directory is reported with
/// context rather than crashing the campaign after the compute finished.
pub fn write_file(path: &Path, contents: &str) -> Result<(), Wavm3Error> {
    wavm3_harness::write_atomic_str(path, contents)
}

/// One CSV line per 2 Hz reading across every record: the regression view
/// (features + measured powers).
///
/// Columns: `scenario,kind,rep,time_s,phase,cpu_source,cpu_target,cpu_vm,
/// dirty_ratio,bandwidth_bps,power_source_w,power_target_w`.
pub fn readings_csv(dataset: &ExperimentDataset) -> String {
    let mut out = String::from(
        "scenario,kind,rep,time_s,phase,cpu_source,cpu_target,cpu_vm,dirty_ratio,bandwidth_bps,power_source_w,power_target_w\n",
    );
    for runs in &dataset.runs {
        for (rep, record) in runs.records.iter().enumerate() {
            for s in &record.samples {
                let _ = writeln!(
                    out,
                    "{},{},{},{:.1},{},{:.4},{:.4},{:.4},{:.4},{:.0},{:.1},{:.1}",
                    runs.scenario.id(),
                    record.kind.label(),
                    rep,
                    s.t.as_secs_f64(),
                    s.phase.label(),
                    s.cpu_source,
                    s.cpu_target,
                    s.cpu_vm,
                    s.dirty_ratio,
                    s.bandwidth_bps,
                    s.power_source_w,
                    s.power_target_w,
                );
            }
        }
    }
    out
}

/// One CSV line per migration run: the energy view.
///
/// Columns: `scenario,kind,rep,transfer_s,downtime_s,total_bytes,
/// precopy_rounds,e_source_j,e_target_j`.
pub fn runs_csv(dataset: &ExperimentDataset) -> String {
    let mut out = String::from(
        "scenario,kind,rep,transfer_s,downtime_s,total_bytes,precopy_rounds,e_source_j,e_target_j\n",
    );
    for runs in &dataset.runs {
        for (rep, record) in runs.records.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{:.1},{:.2},{},{},{:.1},{:.1}",
                runs.scenario.id(),
                record.kind.label(),
                rep,
                record.phases.transfer().as_secs_f64(),
                record.downtime.as_secs_f64(),
                record.total_bytes,
                record.precopy_rounds(),
                record.source_energy.total_j(),
                record.target_energy.total_j(),
            );
        }
    }
    out
}

/// Terminal-friendly multi-row plot of one power trace with phase markers
/// (one glyph per sample, rows from max to min) — quick visual inspection
/// without leaving the shell.
pub fn ascii_trace(
    series: &wavm3_simkit::TimeSeries,
    phases: &wavm3_power::PhaseTimes,
    rows: usize,
) -> String {
    let rows = rows.max(2);
    let Some((lo, hi)) = series.min_max() else {
        return String::from("(empty trace)\n");
    };
    let span = (hi - lo).max(1e-9);
    let n = series.len();
    let mut grid = vec![vec![' '; n]; rows];
    for (i, (_, v)) in series.iter().enumerate() {
        let level = (((v - lo) / span) * (rows - 1) as f64).round() as usize;
        for (r, row) in grid.iter_mut().enumerate() {
            let from_bottom = rows - 1 - r;
            if from_bottom == level {
                row[i] = '*';
            } else if from_bottom < level {
                row[i] = '·';
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{hi:>8.0} W");
    for row in grid {
        let _ = writeln!(out, "  {}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{lo:>8.0} W");
    // Phase marker line.
    let marker: String = series
        .times()
        .iter()
        .map(|&t| match phases.phase_at(t) {
            MigrationPhase::NormalExecution => ' ',
            MigrationPhase::Initiation => 'I',
            MigrationPhase::Transfer => 'T',
            MigrationPhase::Activation => 'A',
        })
        .collect();
    let _ = writeln!(out, "  {marker}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RepetitionPolicy, RunnerConfig};
    use crate::scenario::{ExperimentFamily, Scenario};
    use wavm3_cluster::MachineSet;
    use wavm3_migration::MigrationKind;

    fn mini() -> ExperimentDataset {
        ExperimentDataset::collect(
            vec![Scenario {
                family: ExperimentFamily::CpuloadSource,
                kind: MigrationKind::Live,
                machine_set: MachineSet::M,
                source_load_vms: 0,
                target_load_vms: 0,
                migrant_mem_ratio: None,
                label: "0 VM".into(),
            }],
            &RunnerConfig {
                repetitions: RepetitionPolicy::Fixed(2),
                base_seed: 8,
                ..Default::default()
            },
        )
    }

    #[test]
    fn readings_csv_shape() {
        let ds = mini();
        let csv = readings_csv(&ds);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("scenario,kind,rep,"));
        let body: Vec<&str> = lines.collect();
        // Two reps × >100 samples each.
        assert!(body.len() > 200, "{} rows", body.len());
        // Every row has the full column count.
        let cols = header.split(',').count();
        for row in body.iter().take(20) {
            assert_eq!(row.split(',').count(), cols, "bad row: {row}");
        }
        assert!(body.iter().any(|r| r.contains(",transfer,")));
        assert!(body
            .iter()
            .any(|r| r.contains(",rep") || r.contains(",0,") || r.contains(",1,")));
    }

    #[test]
    fn runs_csv_shape() {
        let ds = mini();
        let csv = runs_csv(&ds);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 runs");
        assert!(lines[1].contains("cpuload-source/live"));
        // Energy columns parse as positive floats.
        let cols: Vec<&str> = lines[1].split(',').collect();
        let e_src: f64 = cols[cols.len() - 2].parse().unwrap();
        assert!(e_src > 1000.0);
    }

    #[test]
    fn ascii_trace_renders_grid_and_phases() {
        let ds = mini();
        let r = &ds.runs[0].records[0];
        let art = ascii_trace(&r.source_trace.series, &r.phases, 8);
        assert!(art.contains('*'));
        assert!(art.contains('T'), "transfer marker missing:\n{art}");
        assert!(art.contains('I'));
        // 8 grid rows + 2 axis rows + marker row.
        assert_eq!(art.lines().count(), 11);
    }

    #[test]
    fn write_file_creates_parents_and_annotates_errors() {
        let dir = std::env::temp_dir().join(format!("wavm3-export-test-{}", std::process::id()));
        let path = dir.join("nested/deep/fig.csv");
        write_file(&path, "a,b\n1,2\n").expect("write with parent creation");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();

        let err = write_file(Path::new("/dev/null/not-a-dir/fig.csv"), "x")
            .expect_err("cannot create a directory under /dev/null");
        assert!(err.to_string().contains("not-a-dir"), "{err}");
    }

    #[test]
    fn ascii_trace_empty_is_graceful() {
        let empty = wavm3_simkit::TimeSeries::new();
        let phases = wavm3_power::PhaseTimes::new(
            wavm3_simkit::SimTime::ZERO,
            wavm3_simkit::SimTime::ZERO,
            wavm3_simkit::SimTime::ZERO,
            wavm3_simkit::SimTime::ZERO,
        );
        assert!(ascii_trace(&empty, &phases, 5).contains("empty"));
    }
}
