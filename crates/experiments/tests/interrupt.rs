//! Interrupt-drain acceptance: a campaign that observes the interrupt
//! flag (set by the SIGINT/SIGTERM handler `cli::run` installs) skips the
//! remaining scenarios, records each skip as a structured failure — the
//! shape `cli::run` maps to the partial-success exit code 3 — and keeps
//! every record produced before the signal.
//!
//! The flag is process-global, so these tests live in their own
//! integration-test binary and run serially against each other via the
//! usual cargo test-name ordering plus explicit clear/raise pairs inside
//! a single test.

use wavm3_cluster::MachineSet;
use wavm3_experiments::{Campaign, ExperimentFamily, RepetitionPolicy, RunnerConfig, Scenario};
use wavm3_harness::signal;

fn cheap_scenarios() -> Vec<Scenario> {
    let mut all = Scenario::family_scenarios(ExperimentFamily::CpuloadSource, MachineSet::M);
    all.retain(|s| s.label == "0 VM" || s.label == "1 VM");
    assert_eq!(all.len(), 4, "fixture expects 2 kinds x 2 levels");
    all
}

fn cfg() -> RunnerConfig {
    RunnerConfig {
        repetitions: RepetitionPolicy::Fixed(1),
        base_seed: 0x51C,
        ..Default::default()
    }
}

#[test]
fn interrupted_campaign_drains_to_recorded_failures() {
    signal::clear_for_tests();

    // Uninterrupted reference: every scenario yields records, no failures.
    let clean = Campaign::plain(cfg());
    let reference = clean.collect(cheap_scenarios());
    assert!(reference.runs.iter().all(|r| !r.records.is_empty()));
    assert!(clean.report().failures.is_empty());

    // Raise the flag as SIGTERM would, then run the same campaign: every
    // scenario is skipped during the drain and recorded as a failure
    // carrying the signal name — the campaign completes instead of dying.
    signal::raise_for_tests(true);
    let interrupted = Campaign::plain(cfg());
    let drained = interrupted.collect(cheap_scenarios());
    let report = interrupted.report();
    signal::clear_for_tests();

    assert!(
        drained.runs.iter().all(|r| r.records.is_empty()),
        "no scenario may start once the interrupt flag is up"
    );
    assert_eq!(report.failures.len(), cheap_scenarios().len());
    assert_eq!(report.stats.failed, cheap_scenarios().len());
    for failure in &report.failures {
        assert!(
            failure.message.contains("interrupted by SIGTERM"),
            "failure message names the signal: {}",
            failure.message
        );
    }

    // The report serialises — this is what lands in campaign-report.json.
    let json = serde_json::to_string(&report).expect("report serialises");
    assert!(json.contains("interrupted by SIGTERM"), "{json}");
}

#[test]
fn signal_flag_reports_the_signal_name() {
    // Runs in the same process as the test above; the clear/raise pairs
    // inside each test keep them independent regardless of order.
    signal::clear_for_tests();
    assert!(!signal::interrupted());
    signal::raise_for_tests(false);
    assert_eq!(signal::interrupted_by(), Some("SIGINT"));
    signal::clear_for_tests();
}
