//! Property-based tests of the simulation kernel.

use proptest::prelude::*;
use wavm3_simkit::{EventQueue, RngFactory, SimDuration, SimTime, TimeSeries};

proptest! {
    #[test]
    fn event_queue_pops_sorted_stable(events in prop::collection::vec((0u64..1_000, 0u32..100), 0..128)) {
        let mut q = EventQueue::new();
        for (i, &(t, tag)) in events.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (tag, i));
        }
        let mut popped = Vec::new();
        while let Some((t, payload)) = q.pop() {
            popped.push((t, payload));
        }
        prop_assert_eq!(popped.len(), events.len());
        // Sorted by time; FIFO (insertion index) within equal times.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 .1 < w[1].1 .1, "FIFO violated at {:?}", w);
            }
        }
    }

    #[test]
    fn integration_is_additive(
        samples in prop::collection::vec((0u64..10_000, 0.0f64..1_000.0), 2..64),
        cut in 0.0f64..1.0,
    ) {
        // ∫[a,c] = ∫[a,b] + ∫[b,c] for any interior b.
        let mut times: Vec<u64> = samples.iter().map(|&(t, _)| t).collect();
        times.sort_unstable();
        let mut s = TimeSeries::new();
        for (t, &(_, v)) in times.iter().zip(samples.iter()) {
            s.push(SimTime::from_millis(*t), v);
        }
        let a = s.start().unwrap();
        let c = s.end().unwrap();
        let span = c.as_micros() - a.as_micros();
        let b = SimTime::from_micros(a.as_micros() + (span as f64 * cut) as u64);
        let whole = s.integrate_between(a, c);
        let parts = s.integrate_between(a, b) + s.integrate_between(b, c);
        prop_assert!((whole - parts).abs() <= 1e-6 * (1.0 + whole.abs()),
            "whole {whole} vs parts {parts}");
    }

    #[test]
    fn integral_bounded_by_extremes(
        samples in prop::collection::vec((0u64..10_000, 0.0f64..1_000.0), 2..64),
    ) {
        let mut times: Vec<u64> = samples.iter().map(|&(t, _)| t).collect();
        times.sort_unstable();
        let mut s = TimeSeries::new();
        for (t, &(_, v)) in times.iter().zip(samples.iter()) {
            s.push(SimTime::from_millis(*t), v);
        }
        let (lo, hi) = s.min_max().unwrap();
        let dur = (s.end().unwrap() - s.start().unwrap()).as_secs_f64();
        let e = s.integrate();
        prop_assert!(e >= lo * dur - 1e-9);
        prop_assert!(e <= hi * dur + 1e-9);
    }

    #[test]
    fn interpolation_is_within_neighbours(
        t0 in 0u64..1_000,
        dt in 1u64..1_000,
        v0 in -100.0f64..100.0,
        v1 in -100.0f64..100.0,
        frac in 0.0f64..1.0,
    ) {
        let t1 = t0 + dt;
        let s = TimeSeries::from_parts(
            vec![SimTime::from_millis(t0), SimTime::from_millis(t1)],
            vec![v0, v1],
        );
        let q = SimTime::from_micros(
            SimTime::from_millis(t0).as_micros()
                + (frac * (dt * 1_000) as f64) as u64,
        );
        let v = s.sample_at(q).unwrap();
        let (lo, hi) = (v0.min(v1), v0.max(v1));
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn rng_streams_are_stable_and_independent(seed in 0u64..10_000, label in "[a-z]{1,12}") {
        use rand::RngCore;
        let f = RngFactory::new(seed);
        let mut a = f.stream(&label);
        let mut b = f.stream(&label);
        prop_assert_eq!(a.next_u64(), b.next_u64());
        // A different label diverges (astronomically likely).
        let mut c = f.stream(&format!("{label}!"));
        let mut d = f.stream(&label);
        prop_assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let (da, db) = (SimDuration::from_micros(a), SimDuration::from_micros(b));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) - db, da);
        let t = SimTime::from_micros(a);
        prop_assert_eq!((t + db) - db, t);
        prop_assert_eq!((t + db).saturating_since(t), db);
    }
}
