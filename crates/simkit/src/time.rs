//! Simulation time.
//!
//! Time is an integral number of **microseconds** since simulation start.
//! Integer ticks keep event ordering exact (no float comparison hazards)
//! while one microsecond is far below every physical time constant in the
//! paper (the power meter samples at 2 Hz, migrations last tens of seconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Microseconds per second, as the common conversion base.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock (µs since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span between two [`SimTime`] instants (µs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "event horizon".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest µs.
    ///
    /// Negative or non-finite inputs saturate to zero — simulation time
    /// never precedes the epoch.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span from `earlier` to `self`, saturating at zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest µs;
    /// saturates to zero for negative/non-finite inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// `true` when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the span by a non-negative factor (rounds to nearest µs).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_between_units() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn negative_and_nan_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, SimDuration::from_secs(8));
        assert_eq!(d - SimDuration::from_secs(1), SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn duration_scaling_rounds() {
        let d = SimDuration::from_secs(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(1500));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
