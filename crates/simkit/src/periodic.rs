//! Periodic schedules — grid-aligned instants for samplers and monitors.
//!
//! The power meters (2 Hz), the telemetry sampler, and the figure
//! resamplers all walk fixed time grids; [`PeriodicSchedule`] is that grid
//! as an iterator, with helpers for "how many instants fall inside this
//! window" bookkeeping.

use crate::time::{SimDuration, SimTime};

/// An unbounded sequence of instants `start, start+p, start+2p, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicSchedule {
    start: SimTime,
    period: SimDuration,
}

impl PeriodicSchedule {
    /// A grid starting at `start` with spacing `period` (must be > 0).
    pub fn new(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        PeriodicSchedule { start, period }
    }

    /// The paper's meter grid: 2 Hz from `t = 0`.
    pub fn two_hz() -> Self {
        PeriodicSchedule::new(SimTime::ZERO, SimDuration::from_millis(500))
    }

    /// Grid spacing.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The `n`-th instant (0-based).
    pub fn instant(&self, n: u64) -> SimTime {
        SimTime::from_micros(
            self.start
                .as_micros()
                .saturating_add(n.saturating_mul(self.period.as_micros())),
        )
    }

    /// The first grid instant at or after `t`.
    pub fn next_at_or_after(&self, t: SimTime) -> SimTime {
        if t <= self.start {
            return self.start;
        }
        let offset = t.as_micros() - self.start.as_micros();
        let p = self.period.as_micros();
        let n = offset.div_ceil(p);
        self.instant(n)
    }

    /// Number of grid instants in the closed interval `[from, to]`.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> u64 {
        if to < from {
            return 0;
        }
        let first = self.next_at_or_after(from);
        if first > to {
            return 0;
        }
        (to.as_micros() - first.as_micros()) / self.period.as_micros() + 1
    }

    /// Iterate the instants inside `[from, to]`.
    pub fn iter_between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = SimTime> + '_ {
        let first = self.next_at_or_after(from);
        let n = self.count_between(from, to);
        let p = self.period;
        (0..n).map(move |k| first + SimDuration::from_micros(k * p.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PeriodicSchedule {
        PeriodicSchedule::two_hz()
    }

    #[test]
    fn instants_are_evenly_spaced() {
        let g = grid();
        assert_eq!(g.instant(0), SimTime::ZERO);
        assert_eq!(g.instant(3), SimTime::from_millis(1500));
        assert_eq!(g.period(), SimDuration::from_millis(500));
    }

    #[test]
    fn next_at_or_after_lands_on_grid() {
        let g = grid();
        assert_eq!(g.next_at_or_after(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(
            g.next_at_or_after(SimTime::from_millis(1)),
            SimTime::from_millis(500)
        );
        assert_eq!(
            g.next_at_or_after(SimTime::from_millis(500)),
            SimTime::from_millis(500)
        );
        assert_eq!(
            g.next_at_or_after(SimTime::from_millis(501)),
            SimTime::from_millis(1000)
        );
    }

    #[test]
    fn count_matches_iteration() {
        let g = grid();
        let from = SimTime::from_millis(700);
        let to = SimTime::from_millis(3200);
        let instants: Vec<SimTime> = g.iter_between(from, to).collect();
        assert_eq!(instants.len() as u64, g.count_between(from, to));
        // 1000, 1500, 2000, 2500, 3000.
        assert_eq!(instants.len(), 5);
        assert_eq!(instants[0], SimTime::from_millis(1000));
        assert_eq!(instants[4], SimTime::from_millis(3000));
    }

    #[test]
    fn inverted_and_empty_windows() {
        let g = grid();
        assert_eq!(
            g.count_between(SimTime::from_secs(5), SimTime::from_secs(1)),
            0
        );
        assert_eq!(
            g.count_between(SimTime::from_millis(501), SimTime::from_millis(999)),
            0
        );
        assert_eq!(
            g.iter_between(SimTime::from_secs(5), SimTime::from_secs(1))
                .count(),
            0
        );
    }

    #[test]
    fn offset_grids() {
        let g = PeriodicSchedule::new(SimTime::from_millis(250), SimDuration::from_millis(100));
        assert_eq!(g.instant(1), SimTime::from_millis(350));
        assert_eq!(g.next_at_or_after(SimTime::ZERO), SimTime::from_millis(250));
        assert_eq!(
            g.count_between(SimTime::from_millis(250), SimTime::from_millis(550)),
            4
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        PeriodicSchedule::new(SimTime::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn meter_grid_matches_sim_expectations() {
        // A 60-second trace at 2 Hz holds 121 samples (inclusive ends).
        let g = PeriodicSchedule::two_hz();
        assert_eq!(g.count_between(SimTime::ZERO, SimTime::from_secs(60)), 121);
    }
}
