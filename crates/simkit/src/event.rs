//! Deterministic event queue.
//!
//! A thin priority queue keyed by `(SimTime, insertion sequence)`: events at
//! the same instant pop in the order they were scheduled (FIFO), which makes
//! every simulation trace reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Queue entry: min-heap on `(time, seq)` via reversed `Ord`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A future-event list ordered by time with FIFO tie-breaking.
///
/// `E` is the simulation-specific event payload; this crate imposes no
/// structure on it.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; in debug builds it panics,
    /// in release builds the event is clamped to `now` (it will fire next).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(at >= self.now, "scheduling event in the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        let (t1, _) = q.pop().unwrap();
        // Schedule relative to the popped time.
        q.schedule(t1 + SimDuration::from_secs(1), 2u32);
        q.schedule(t1 + SimDuration::from_millis(500), 3u32);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![3, 2]);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_events_clamp_to_now_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "future");
        q.pop();
        q.schedule(SimTime::from_secs(1), "past");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
    }
}
