//! Sampled time series.
//!
//! The workhorse container for power traces and telemetry: a sequence of
//! `(SimTime, f64)` samples with non-decreasing timestamps, plus the
//! numerical operations the paper's methodology needs — trapezoidal
//! integration (power → energy), windowed statistics, resampling, and the
//! Voltech-style stabilisation test.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A time-ordered sequence of scalar samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// An empty series with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries {
            times: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Build from parallel vectors. Panics if lengths differ or times are
    /// not non-decreasing.
    pub fn from_parts(times: Vec<SimTime>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be non-decreasing"
        );
        TimeSeries { times, values }
    }

    /// Append a sample. Panics if `t` precedes the last timestamp.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "timestamps must be non-decreasing");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Timestamps slice.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Values slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// First timestamp, if any.
    pub fn start(&self) -> Option<SimTime> {
        self.times.first().copied()
    }

    /// Last timestamp, if any.
    pub fn end(&self) -> Option<SimTime> {
        self.times.last().copied()
    }

    /// Linear interpolation of the series at `t`.
    ///
    /// Outside the sampled range the series is held constant at its first /
    /// last value (zero-order extrapolation). Returns `None` for an empty
    /// series.
    pub fn sample_at(&self, t: SimTime) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        if t <= self.times[0] {
            return Some(self.values[0]);
        }
        let n = self.len();
        if t >= self.times[n - 1] {
            return Some(self.values[n - 1]);
        }
        // partition_point: first index with time > t, so idx-1 is the left
        // neighbour; idx is in [1, n-1] here.
        let idx = self.times.partition_point(|&x| x <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        if t0 == t1 {
            return Some(v1);
        }
        let frac = (t.as_secs_f64() - t0.as_secs_f64()) / (t1.as_secs_f64() - t0.as_secs_f64());
        Some(v0 + frac * (v1 - v0))
    }

    /// Trapezoidal integral over the full series.
    ///
    /// For a power trace in watts this yields energy in joules.
    pub fn integrate(&self) -> f64 {
        self.integrate_between(
            self.start().unwrap_or(SimTime::ZERO),
            self.end().unwrap_or(SimTime::ZERO),
        )
    }

    /// Trapezoidal integral restricted to `[from, to]`, interpolating the
    /// boundary values. Returns 0 for empty series or inverted ranges.
    pub fn integrate_between(&self, from: SimTime, to: SimTime) -> f64 {
        if self.is_empty() || to <= from {
            return 0.0;
        }
        let a = from.max(self.times[0]);
        let b = to.min(self.times[self.len() - 1]);
        if b <= a {
            // Entire window falls outside the samples: constant extrapolation.
            let v = self.sample_at(from).unwrap_or(0.0);
            return v * (to - from).as_secs_f64();
        }
        let va = self.sample_at(a).expect("non-empty");
        let vb = self.sample_at(b).expect("non-empty");
        let mut acc = 0.0;
        let mut prev_t = a;
        let mut prev_v = va;
        let lo = self.times.partition_point(|&x| x <= a);
        let hi = self.times.partition_point(|&x| x < b);
        for i in lo..hi {
            let (t, v) = (self.times[i], self.values[i]);
            acc += 0.5 * (prev_v + v) * (t - prev_t).as_secs_f64();
            prev_t = t;
            prev_v = v;
        }
        acc += 0.5 * (prev_v + vb) * (b - prev_t).as_secs_f64();
        // Extrapolated flat tails when the window exceeds the sampled range.
        if from < a {
            acc += self.values[0] * (a - from).as_secs_f64();
        }
        if to > b {
            acc += self.values[self.len() - 1] * (to - b).as_secs_f64();
        }
        acc
    }

    /// Arithmetic mean of the sample values (unweighted). `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.len() as f64)
        }
    }

    /// Mean of samples whose timestamps fall in `[from, to]`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.iter() {
            if t >= from && t <= to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Minimum and maximum values. `None` if empty.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Resample onto a uniform grid of `period` starting at the first
    /// timestamp, by linear interpolation. Empty input gives empty output.
    pub fn resample(&self, period: SimDuration) -> TimeSeries {
        assert!(!period.is_zero(), "resample period must be positive");
        let mut out = TimeSeries::new();
        let (Some(start), Some(end)) = (self.start(), self.end()) else {
            return out;
        };
        let mut t = start;
        while t <= end {
            out.push(t, self.sample_at(t).expect("non-empty"));
            t += period;
        }
        out
    }

    /// The paper's measurement-stabilisation rule: `true` when the last
    /// `window` samples all lie within `tolerance` *relative* spread, i.e.
    /// `(max - min) / |mean| <= tolerance`.
    ///
    /// The paper uses `window = 20`, `tolerance = 0.003` (0.3 %).
    pub fn is_stable(&self, window: usize, tolerance: f64) -> bool {
        if window == 0 || self.len() < window {
            return false;
        }
        let tail = &self.values[self.len() - window..];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in tail {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
        }
        let mean = sum / window as f64;
        if mean == 0.0 {
            return hi - lo == 0.0;
        }
        (hi - lo) / mean.abs() <= tolerance
    }

    /// Restrict the series to samples within `[from, to]` (inclusive).
    pub fn slice(&self, from: SimTime, to: SimTime) -> TimeSeries {
        let mut out = TimeSeries::new();
        for (t, v) in self.iter() {
            if t >= from && t <= to {
                out.push(t, v);
            }
        }
        out
    }

    /// Centred moving average over `window` samples (odd windows are
    /// symmetric; even windows lean one sample into the past). Timestamps
    /// are preserved. A window of 0 or 1 returns a clone.
    pub fn smooth(&self, window: usize) -> TimeSeries {
        if window <= 1 || self.is_empty() {
            return self.clone();
        }
        let half = window / 2;
        let n = self.len();
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + window - half).min(n);
            let slice = &self.values[lo..hi];
            values.push(slice.iter().sum::<f64>() / slice.len() as f64);
        }
        TimeSeries {
            times: self.times.clone(),
            values,
        }
    }

    /// Shift every timestamp so the series starts at `t = 0`.
    pub fn rebase(&self) -> TimeSeries {
        let Some(start) = self.start() else {
            return TimeSeries::new();
        };
        let times = self
            .times
            .iter()
            .map(|&t| SimTime::from_micros(t.as_micros() - start.as_micros()))
            .collect();
        TimeSeries {
            times,
            values: self.values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_iterate() {
        let mut s = TimeSeries::new();
        s.push(secs(0), 1.0);
        s.push(secs(1), 2.0);
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(secs(0), 1.0), (secs(1), 2.0)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.push(secs(2), 1.0);
        s.push(secs(1), 2.0);
    }

    #[test]
    fn interpolation_midpoint_and_extrapolation() {
        let s = TimeSeries::from_parts(vec![secs(0), secs(2)], vec![0.0, 10.0]);
        assert_eq!(s.sample_at(secs(1)), Some(5.0));
        assert_eq!(s.sample_at(secs(0)), Some(0.0));
        // Flat extrapolation beyond the ends.
        assert_eq!(s.sample_at(secs(5)), Some(10.0));
        assert_eq!(s.sample_at(SimTime::ZERO), Some(0.0));
    }

    #[test]
    fn integrate_constant_power() {
        // 100 W for 10 s = 1000 J.
        let s = TimeSeries::from_parts(vec![secs(0), secs(10)], vec![100.0, 100.0]);
        assert!((s.integrate() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_ramp() {
        // Power ramps 0→100 W over 10 s: energy = 500 J.
        let s = TimeSeries::from_parts(vec![secs(0), secs(10)], vec![0.0, 100.0]);
        assert!((s.integrate() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_between_interpolates_boundaries() {
        let s = TimeSeries::from_parts(vec![secs(0), secs(10)], vec![0.0, 100.0]);
        // Between t=5 (50 W) and t=10 (100 W): 0.5*(50+100)*5 = 375 J.
        assert!((s.integrate_between(secs(5), secs(10)) - 375.0).abs() < 1e-9);
        // Inverted range → 0.
        assert_eq!(s.integrate_between(secs(10), secs(5)), 0.0);
    }

    #[test]
    fn integrate_window_past_samples_extrapolates() {
        let s = TimeSeries::from_parts(vec![secs(0), secs(10)], vec![100.0, 100.0]);
        // Window [0, 20]: 10 s sampled + 10 s flat tail = 2000 J.
        assert!((s.integrate_between(secs(0), secs(20)) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_mean() {
        let s = TimeSeries::from_parts(
            vec![secs(0), secs(1), secs(2), secs(3)],
            vec![1.0, 2.0, 3.0, 4.0],
        );
        assert_eq!(s.mean_between(secs(1), secs(2)), Some(2.5));
        assert_eq!(s.mean_between(secs(8), secs(9)), None);
        assert_eq!(s.mean(), Some(2.5));
    }

    #[test]
    fn stabilisation_rule() {
        let mut s = TimeSeries::new();
        for i in 0..19 {
            s.push(SimTime::from_millis(i * 500), 500.0);
        }
        // 19 samples: not enough for a window of 20.
        assert!(!s.is_stable(20, 0.003));
        s.push(SimTime::from_millis(19 * 500), 500.5);
        // Spread 0.5/500.25 ≈ 0.1% < 0.3%.
        assert!(s.is_stable(20, 0.003));
        s.push(SimTime::from_millis(20 * 500), 510.0);
        // Last 20 now include a 10 W jump (~2%): unstable.
        assert!(!s.is_stable(20, 0.003));
    }

    #[test]
    fn resample_grid() {
        let s = TimeSeries::from_parts(vec![secs(0), secs(4)], vec![0.0, 4.0]);
        let r = s.resample(SimDuration::from_secs(1));
        assert_eq!(r.len(), 5);
        assert_eq!(r.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_and_rebase() {
        let s = TimeSeries::from_parts(vec![secs(5), secs(6), secs(7)], vec![1.0, 2.0, 3.0]);
        let cut = s.slice(secs(6), secs(7));
        assert_eq!(cut.len(), 2);
        let rb = cut.rebase();
        assert_eq!(rb.start(), Some(SimTime::ZERO));
        assert_eq!(rb.end(), Some(secs(1)));
    }

    #[test]
    fn smoothing_preserves_constants_and_flattens_noise() {
        let mut s = TimeSeries::new();
        for i in 0..40u64 {
            s.push(
                SimTime::from_millis(i * 500),
                if i % 2 == 0 { 90.0 } else { 110.0 },
            );
        }
        let sm = s.smooth(4);
        assert_eq!(sm.len(), s.len());
        assert_eq!(sm.times(), s.times());
        // Interior points average to ~100.
        for &v in &sm.values()[4..36] {
            assert!((v - 100.0).abs() < 6.0, "{v}");
        }
        // Degenerate windows are identity.
        assert_eq!(s.smooth(0), s);
        assert_eq!(s.smooth(1), s);
        let c = TimeSeries::from_parts(vec![secs(0), secs(1)], vec![5.0, 5.0]);
        assert_eq!(c.smooth(3).values(), &[5.0, 5.0]);
    }

    #[test]
    fn min_max_and_empty_behaviour() {
        let s = TimeSeries::from_parts(vec![secs(0), secs(1)], vec![-3.0, 8.0]);
        assert_eq!(s.min_max(), Some((-3.0, 8.0)));
        let e = TimeSeries::new();
        assert_eq!(e.min_max(), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.sample_at(secs(0)), None);
        assert_eq!(e.integrate(), 0.0);
    }
}
