//! Half-open time intervals `[start, end)`.
//!
//! The fault-injection layer schedules transient conditions (link
//! degradation windows, abort instants) as intervals on the simulation
//! clock; the simulator asks "is `t` inside any active window?" every tick.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A half-open interval `[start, end)` on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// First instant inside the interval.
    pub start: SimTime,
    /// First instant after the interval.
    pub end: SimTime,
}

impl Interval {
    /// Construct, validating `start <= end`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "interval end precedes start");
        Interval { start, end }
    }

    /// Construct from a start instant and a span.
    pub fn starting_at(start: SimTime, span: SimDuration) -> Self {
        Interval {
            start,
            end: start + span,
        }
    }

    /// `true` when `t ∈ [start, end)`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// `true` when the interval contains no instant.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// `true` when the two intervals share at least one instant.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(SimTime::from_secs(a), SimTime::from_secs(b))
    }

    #[test]
    fn containment_is_half_open() {
        let i = iv(2, 5);
        assert!(!i.contains(SimTime::from_secs(1)));
        assert!(i.contains(SimTime::from_secs(2)));
        assert!(i.contains(SimTime::from_secs(4)));
        assert!(!i.contains(SimTime::from_secs(5)));
    }

    #[test]
    fn duration_and_emptiness() {
        assert_eq!(iv(2, 5).duration(), SimDuration::from_secs(3));
        assert!(iv(3, 3).is_empty());
        assert!(!iv(3, 3).contains(SimTime::from_secs(3)));
    }

    #[test]
    fn overlap_cases() {
        assert!(iv(0, 4).overlaps(&iv(3, 6)));
        assert!(!iv(0, 3).overlaps(&iv(3, 6)), "touching is not overlapping");
        assert!(iv(1, 9).overlaps(&iv(4, 5)), "containment overlaps");
    }

    #[test]
    fn starting_at_builds_the_span() {
        let i = Interval::starting_at(SimTime::from_secs(7), SimDuration::from_secs(2));
        assert_eq!(i, iv(7, 9));
    }

    #[test]
    #[should_panic(expected = "end precedes start")]
    fn inverted_interval_panics() {
        iv(5, 2);
    }
}
