//! Dependency-inverted performance counters.
//!
//! simkit sits below the observability crate, so it cannot call the
//! profiler directly. Instead it keeps a handful of process-wide atomic
//! event counters that `wavm3-obs` arms when a profiling session
//! installs and folds into its [`PerfSnapshot`] counters at snapshot
//! time. Disarmed (the default), every probe is one relaxed atomic load.
//!
//! The counts are wall-clock-free and deterministic for a fixed
//! workload, but they still live strictly on the profiling side of the
//! determinism firewall: nothing here feeds traces or golden outputs.
//!
//! [`PerfSnapshot`]: https://docs.rs/wavm3-obs

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static RNG_STREAMS: AtomicU64 = AtomicU64::new(0);
static RNG_COUNTER_STREAMS: AtomicU64 = AtomicU64::new(0);
static RNG_CHILDREN: AtomicU64 = AtomicU64::new(0);

/// Arm or disarm the probe counters (called by the obs session).
pub fn set_armed(on: bool) {
    ARMED.store(on, Ordering::Relaxed);
}

/// `true` when a profiling session is collecting simkit counters.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Count one [`RngFactory::stream`](crate::RngFactory::stream) (or
/// `seed_for`) derivation.
#[inline]
pub(crate) fn note_stream() {
    if armed() {
        RNG_STREAMS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Count one [`RngFactory::counter_stream`](crate::RngFactory::counter_stream)
/// derivation.
#[inline]
pub(crate) fn note_counter_stream() {
    if armed() {
        RNG_COUNTER_STREAMS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Count one [`RngFactory::child`](crate::RngFactory::child) derivation.
#[inline]
pub(crate) fn note_child() {
    if armed() {
        RNG_CHILDREN.fetch_add(1, Ordering::Relaxed);
    }
}

/// Current counter values as `(name, count)` pairs.
pub fn snapshot() -> [(&'static str, u64); 3] {
    [
        ("simkit.rng.stream", RNG_STREAMS.load(Ordering::Relaxed)),
        (
            "simkit.rng.counter_stream",
            RNG_COUNTER_STREAMS.load(Ordering::Relaxed),
        ),
        ("simkit.rng.child", RNG_CHILDREN.load(Ordering::Relaxed)),
    ]
}

/// Zero every counter (called by the obs session at install/teardown).
pub fn reset() {
    RNG_STREAMS.store(0, Ordering::Relaxed);
    RNG_COUNTER_STREAMS.store(0, Ordering::Relaxed);
    RNG_CHILDREN.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngFactory;

    #[test]
    fn disarmed_probes_count_nothing_and_armed_probes_count_derivations() {
        // ARMED is process-global and other simkit tests derive streams
        // concurrently, so while armed we only assert lower bounds.
        reset();
        let f = RngFactory::new(7);
        let _ = f.stream("a");
        assert_eq!(snapshot()[0].1, 0, "disarmed probes are inert");

        set_armed(true);
        let _ = f.stream("a");
        let _ = f.seed_for("b");
        let _ = f.counter_stream("c");
        let _ = f.child(1);
        set_armed(false);

        let counts = snapshot();
        assert_eq!(counts[0].0, "simkit.rng.stream");
        assert!(counts[0].1 >= 2, "stream + seed_for: {counts:?}");
        assert!(counts[1].1 >= 1, "{counts:?}");
        assert!(counts[2].1 >= 1, "{counts:?}");
        reset();
    }
}
