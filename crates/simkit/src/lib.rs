//! # wavm3-simkit — discrete-event simulation kernel
//!
//! Foundation crate for the WAVM3 reproduction: simulation time, a
//! deterministic event queue, reproducible random-number streams, and
//! sampled time-series containers.
//!
//! Everything in this crate is deliberately *deterministic*: two runs with
//! the same seeds produce bit-identical results regardless of host platform
//! or thread count (parallelism in the workspace only ever happens across
//! independent simulations).
//!
//! ## Example
//!
//! ```
//! use wavm3_simkit::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_secs_f64(2.0), "later");
//! q.schedule(SimTime::from_secs_f64(1.0), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t.as_secs_f64(), 1.0);
//! ```

pub mod event;
pub mod interval;
pub mod periodic;
pub mod probe;
pub mod rng;
pub mod series;
pub mod time;

pub use event::EventQueue;
pub use interval::Interval;
pub use periodic::PeriodicSchedule;
pub use rng::{CounterRng, RngFactory, StreamRng};
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
