//! Reproducible random-number streams.
//!
//! Every stochastic component of the simulation (meter noise, page-dirty
//! ordering, workload jitter, …) draws from its own *named stream* derived
//! from a root seed. Streams are independent of each other and of the order
//! in which they are created, so adding a new noise source never perturbs
//! existing results, and rayon-parallel sweeps stay bit-reproducible.
//!
//! `ChaCha8Rng` is used because, unlike `StdRng`, its output is documented
//! to be stable across `rand` versions and platforms.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The concrete RNG handed to simulation components.
pub type StreamRng = ChaCha8Rng;

/// Derives independent [`StreamRng`] streams from a root seed and a label.
///
/// The derivation is a small, stable FNV-1a-style hash of the label mixed
/// into the root seed — not cryptographic, just collision-resistant enough
/// for a handful of named streams per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    root_seed: u64,
}

impl RngFactory {
    /// A factory whose streams are all determined by `root_seed`.
    pub fn new(root_seed: u64) -> Self {
        RngFactory { root_seed }
    }

    /// The root seed this factory was built from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// A factory for a sub-scope (e.g. one repetition of an experiment).
    ///
    /// `self.child(a).stream(s)` differs from `self.child(b).stream(s)`
    /// whenever `a != b`.
    pub fn child(&self, index: u64) -> RngFactory {
        RngFactory {
            root_seed: mix(self.root_seed, &index.to_le_bytes()),
        }
    }

    /// A named, independent random stream.
    pub fn stream(&self, label: &str) -> StreamRng {
        let seed = mix(self.root_seed, label.as_bytes());
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Convenience: one `u64` drawn from the named stream.
    pub fn seed_for(&self, label: &str) -> u64 {
        self.stream(label).next_u64()
    }
}

/// FNV-1a over `bytes`, seeded by `seed`. Stable across platforms.
fn mix(seed: u64, bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so nearby seeds diverge.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Draw a sample from a normal distribution via Box–Muller.
///
/// Self-contained (no `rand_distr` dependency) and entirely adequate for
/// meter-noise synthesis.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return mean;
    }
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let a: Vec<u64> = (0..8).map(|_| 0).collect::<Vec<_>>();
        let mut s1 = f.stream("meter");
        let mut s2 = f.stream("meter");
        let v1: Vec<u64> = a.iter().map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = a.iter().map(|_| s2.next_u64()).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn different_labels_diverge() {
        let f = RngFactory::new(42);
        assert_ne!(f.stream("meter").next_u64(), f.stream("dirty").next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(
            RngFactory::new(1).stream("x").next_u64(),
            RngFactory::new(2).stream("x").next_u64()
        );
    }

    #[test]
    fn children_are_independent() {
        let f = RngFactory::new(7);
        let a = f.child(0).stream("s").next_u64();
        let b = f.child(1).stream("s").next_u64();
        assert_ne!(a, b);
        // Child derivation is deterministic.
        assert_eq!(a, RngFactory::new(7).child(0).stream("s").next_u64());
    }

    #[test]
    fn nearby_child_indices_diverge_strongly() {
        let f = RngFactory::new(0);
        let vals: Vec<u64> = (0..64).map(|i| f.child(i).seed_for("s")).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len(), "child seeds must not collide");
    }

    #[test]
    fn normal_sampler_statistics() {
        let mut rng = RngFactory::new(9).stream("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_sampler_degenerate_std() {
        let mut rng = RngFactory::new(9).stream("n");
        assert_eq!(sample_normal(&mut rng, 3.0, 0.0), 3.0);
        assert_eq!(sample_normal(&mut rng, 3.0, -1.0), 3.0);
    }
}
