//! Reproducible random-number streams.
//!
//! Every stochastic component of the simulation (meter noise, page-dirty
//! ordering, workload jitter, …) draws from its own *named stream* derived
//! from a root seed. Streams are independent of each other and of the order
//! in which they are created, so adding a new noise source never perturbs
//! existing results, and rayon-parallel sweeps stay bit-reproducible.
//!
//! `ChaCha8Rng` is used because, unlike `StdRng`, its output is documented
//! to be stable across `rand` versions and platforms.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The concrete RNG handed to simulation components.
pub type StreamRng = ChaCha8Rng;

/// Derives independent [`StreamRng`] streams from a root seed and a label.
///
/// The derivation is a small, stable FNV-1a-style hash of the label mixed
/// into the root seed — not cryptographic, just collision-resistant enough
/// for a handful of named streams per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    root_seed: u64,
}

impl RngFactory {
    /// A factory whose streams are all determined by `root_seed`.
    pub fn new(root_seed: u64) -> Self {
        RngFactory { root_seed }
    }

    /// The root seed this factory was built from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// A factory for a sub-scope (e.g. one repetition of an experiment).
    ///
    /// `self.child(a).stream(s)` differs from `self.child(b).stream(s)`
    /// whenever `a != b`.
    pub fn child(&self, index: u64) -> RngFactory {
        crate::probe::note_child();
        RngFactory {
            root_seed: mix(self.root_seed, &index.to_le_bytes()),
        }
    }

    /// A named, independent random stream.
    pub fn stream(&self, label: &str) -> StreamRng {
        crate::probe::note_stream();
        let seed = mix(self.root_seed, label.as_bytes());
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Convenience: one `u64` drawn from the named stream.
    pub fn seed_for(&self, label: &str) -> u64 {
        self.stream(label).next_u64()
    }

    /// A named *counter-based* stream: a stateless generator whose `n`-th
    /// draw is a pure function of `(root_seed, label, n)`.
    ///
    /// Unlike [`RngFactory::stream`], a [`CounterRng`] can be re-created at
    /// any point and fast-forwarded with [`CounterRng::set_position`], so
    /// analytic fast paths can consume exactly as many draws as they need
    /// per migration without threading mutable RNG state through the
    /// computation — and the draws are identical regardless of rayon
    /// thread count or the order migrations are evaluated in.
    pub fn counter_stream(&self, label: &str) -> CounterRng {
        crate::probe::note_counter_stream();
        CounterRng::new(mix(self.root_seed, label.as_bytes()))
    }
}

/// A counter-based RNG: draw `n` is `splitmix64(key ⊕ n·φ)` where `φ` is
/// the 64-bit golden-ratio constant. Stateless up to the counter, so any
/// draw index can be produced in O(1) and streams are reproducible across
/// execution orders and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
    counter: u64,
}

impl CounterRng {
    /// A stream keyed by `key`, positioned at draw 0.
    pub fn new(key: u64) -> Self {
        CounterRng { key, counter: 0 }
    }

    /// Index of the next draw.
    pub fn position(&self) -> u64 {
        self.counter
    }

    /// Jump to an absolute draw index (forward or backward).
    pub fn set_position(&mut self, counter: u64) {
        self.counter = counter;
    }

    /// The draw at absolute index `n`, without touching the position.
    pub fn draw_at(&self, n: u64) -> u64 {
        // Weyl-sequence input, then the splitmix64 finalizer: the standard
        // construction for a counter-based stream with full 64-bit state.
        const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut z = self.key ^ n.wrapping_mul(GOLDEN);
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl RngCore for CounterRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let v = self.draw_at(self.counter);
        self.counter += 1;
        v
    }
}

/// FNV-1a over `bytes`, seeded by `seed`. Stable across platforms.
fn mix(seed: u64, bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so nearby seeds diverge.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Draw a sample from a normal distribution via Box–Muller.
///
/// Self-contained (no `rand_distr` dependency) and entirely adequate for
/// meter-noise synthesis.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return mean;
    }
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let a: Vec<u64> = (0..8).map(|_| 0).collect::<Vec<_>>();
        let mut s1 = f.stream("meter");
        let mut s2 = f.stream("meter");
        let v1: Vec<u64> = a.iter().map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = a.iter().map(|_| s2.next_u64()).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn different_labels_diverge() {
        let f = RngFactory::new(42);
        assert_ne!(f.stream("meter").next_u64(), f.stream("dirty").next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(
            RngFactory::new(1).stream("x").next_u64(),
            RngFactory::new(2).stream("x").next_u64()
        );
    }

    #[test]
    fn children_are_independent() {
        let f = RngFactory::new(7);
        let a = f.child(0).stream("s").next_u64();
        let b = f.child(1).stream("s").next_u64();
        assert_ne!(a, b);
        // Child derivation is deterministic.
        assert_eq!(a, RngFactory::new(7).child(0).stream("s").next_u64());
    }

    #[test]
    fn nearby_child_indices_diverge_strongly() {
        let f = RngFactory::new(0);
        let vals: Vec<u64> = (0..64).map(|i| f.child(i).seed_for("s")).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len(), "child seeds must not collide");
    }

    #[test]
    fn normal_sampler_statistics() {
        let mut rng = RngFactory::new(9).stream("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_sampler_degenerate_std() {
        let mut rng = RngFactory::new(9).stream("n");
        assert_eq!(sample_normal(&mut rng, 3.0, 0.0), 3.0);
        assert_eq!(sample_normal(&mut rng, 3.0, -1.0), 3.0);
    }

    #[test]
    fn counter_stream_is_deterministic_per_label() {
        let f = RngFactory::new(42);
        let mut a = f.counter_stream("wander");
        let mut b = f.counter_stream("wander");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(
            f.counter_stream("wander").next_u64(),
            f.counter_stream("meter").next_u64(),
            "labels must derive distinct keys"
        );
    }

    #[test]
    fn counter_stream_jumps_match_sequential_draws() {
        let f = RngFactory::new(7);
        let mut seq = f.counter_stream("s");
        let sequential: Vec<u64> = (0..32).map(|_| seq.next_u64()).collect();
        let frozen = f.counter_stream("s");
        for (n, &expect) in sequential.iter().enumerate() {
            assert_eq!(frozen.draw_at(n as u64), expect, "draw {n}");
        }
        let mut jump = f.counter_stream("s");
        jump.set_position(31);
        assert_eq!(jump.next_u64(), sequential[31]);
        assert_eq!(jump.position(), 32);
    }

    #[test]
    fn counter_stream_draws_are_execution_order_invariant() {
        // Evaluate "per-migration" draws (one child scope per migration)
        // forward, backward and interleaved: every schedule must observe
        // identical values.
        let f = RngFactory::new(0xC1A5_7E01);
        let draws = |rep: u64| -> [u64; 3] {
            let mut s = f.child(rep).counter_stream("wander.analytic");
            [s.next_u64(), s.next_u64(), s.next_u64()]
        };
        let forward: Vec<[u64; 3]> = (0..64).map(draws).collect();
        let backward: Vec<[u64; 3]> = (0..64).rev().map(draws).collect();
        let interleaved: Vec<[u64; 3]> = (0..32).flat_map(|i| [i, 63 - i]).map(draws).collect();
        assert!((0..64).all(|i| forward[i] == backward[63 - i]));
        assert!(
            (0..32)
                .all(|i| interleaved[2 * i] == forward[i]
                    && interleaved[2 * i + 1] == forward[63 - i])
        );
    }

    #[test]
    fn counter_stream_draws_are_thread_count_invariant() {
        // The satellite property: per-migration draws from counter-based
        // streams are identical no matter how many rayon threads execute
        // the sweep or how the scheduler slices it.
        use rayon::prelude::*;
        let f = RngFactory::new(1234);
        let reps: Vec<u64> = (0..64).collect();
        let run = |threads: usize| -> Vec<[u64; 4]> {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(|| {
                    reps.par_iter()
                        .map(|&rep| {
                            let mut s = f.child(rep).counter_stream("wander.analytic");
                            [s.next_u64(), s.next_u64(), s.next_u64(), s.next_u64()]
                        })
                        .collect()
                })
        };
        let reference = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads), reference, "thread count {threads}");
        }
    }

    #[test]
    fn counter_stream_feeds_the_normal_sampler() {
        let mut rng = RngFactory::new(5).counter_stream("normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 0.0, 1.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
