//! STRUNK — the lightweight baseline \[17\] (paper Eq. 11).
//!
//! `E_migr = α · MEM(v) + β · BW(S,T) + C` with the VM's memory size in MiB
//! and the mean migration bandwidth in MB/s. Designed for idle hosts and
//! idle VMs; since every experiment in the paper migrates a 4 GiB VM, the
//! memory feature is constant across the dataset and the model collapses
//! to an affine function of bandwidth — which is why its errors explode as
//! soon as host load varies (Table VII). Training therefore uses the
//! damped Levenberg–Marquardt solver, which tolerates the rank deficiency.

use crate::features::HostRole;
use crate::model::EnergyModel;
use serde::{Deserialize, Serialize};
use wavm3_migration::MigrationRecord;

/// One host role's energy law.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StrunkCoeffs {
    /// α — joules per MiB of VM memory.
    pub alpha_mem: f64,
    /// β — joules per MB/s of bandwidth.
    pub beta_bw: f64,
    /// C — constant energy per migration, joules.
    pub c: f64,
}

/// A trained STRUNK model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrunkModel {
    /// Source-host law.
    pub source: StrunkCoeffs,
    /// Target-host law.
    pub target: StrunkCoeffs,
}

impl StrunkModel {
    /// The law for a role.
    pub fn coeffs(&self, role: HostRole) -> &StrunkCoeffs {
        match role {
            HostRole::Source => &self.source,
            HostRole::Target => &self.target,
        }
    }

    /// Feature pair `(MEM in MiB, BW in MB/s)`.
    pub fn features(record: &MigrationRecord) -> (f64, f64) {
        (
            record.vm_ram_mib as f64,
            record.mean_transfer_bandwidth() / 1.0e6,
        )
    }
}

impl EnergyModel for StrunkModel {
    fn name(&self) -> &'static str {
        "STRUNK"
    }

    fn predict_energy(&self, role: HostRole, record: &MigrationRecord) -> f64 {
        let (mem, bw) = Self::features(record);
        let k = self.coeffs(role);
        k.alpha_mem * mem + k.beta_bw * bw + k.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::tests_support::tiny_record;

    #[test]
    fn energy_uses_memory_and_bandwidth() {
        let m = StrunkModel {
            source: StrunkCoeffs {
                alpha_mem: 3.35,
                beta_bw: -3.47,
                c: 201.1,
            },
            target: StrunkCoeffs {
                alpha_mem: 5.04,
                beta_bw: -0.5,
                c: 201.1,
            },
        };
        let r = tiny_record();
        let (mem, bw) = StrunkModel::features(&r);
        assert_eq!(mem, 4096.0);
        assert!(bw > 0.0);
        let e = m.predict_energy(HostRole::Source, &r);
        assert!((e - (3.35 * mem - 3.47 * bw + 201.1)).abs() < 1e-9);
    }

    #[test]
    fn load_variation_is_invisible_to_strunk() {
        // Two records differing only in host CPU produce identical
        // predictions — the model's documented blind spot.
        let m = StrunkModel {
            source: StrunkCoeffs {
                alpha_mem: 1.0,
                beta_bw: 1.0,
                c: 0.0,
            },
            target: StrunkCoeffs::default(),
        };
        let a = tiny_record();
        let mut b = tiny_record();
        for s in &mut b.samples {
            s.cpu_source = 1.0;
        }
        assert_eq!(
            m.predict_energy(HostRole::Source, &a),
            m.predict_energy(HostRole::Source, &b)
        );
    }
}
