//! Model comparison on a test set — the machinery behind Tables V and VII.

use crate::features::HostRole;
use crate::model::EnergyModel;
use serde::{Deserialize, Serialize};
use wavm3_migration::{MigrationKind, MigrationRecord};
use wavm3_stats::ErrorReport;

/// One row of a Table VII-style comparison: one model, one host role, one
/// mechanism, scored on per-run migration energies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Model name.
    pub model: String,
    /// Host role the row scores.
    pub role: HostRole,
    /// Migration mechanism of the scored runs.
    pub kind: MigrationKind,
    /// MAE / RMSE / NRMSE / R² over per-run energies (joules).
    pub errors: ErrorReport,
}

/// Observed migration energy for a role (measured trace integral).
pub fn observed_energy(role: HostRole, record: &MigrationRecord) -> f64 {
    match role {
        HostRole::Source => record.source_energy.total_j(),
        HostRole::Target => record.target_energy.total_j(),
    }
}

/// Score one model on one role over records of one kind. Returns `None`
/// when no records match.
pub fn score_model(
    model: &dyn EnergyModel,
    role: HostRole,
    kind: MigrationKind,
    records: &[&MigrationRecord],
) -> Option<ErrorReport> {
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.is_empty() {
        return None;
    }
    let pred: Vec<f64> = of_kind
        .iter()
        .map(|r| model.predict_energy(role, r))
        .collect();
    let obs: Vec<f64> = of_kind.iter().map(|r| observed_energy(role, r)).collect();
    Some(ErrorReport::compute(&pred, &obs))
}

/// Full comparison grid: every model × role × mechanism present in the
/// record set — the data behind the paper's Table VII.
pub fn evaluate_models(
    models: &[&dyn EnergyModel],
    records: &[&MigrationRecord],
) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for kind in [MigrationKind::NonLive, MigrationKind::Live] {
        for model in models {
            for role in HostRole::ALL {
                if let Some(errors) = score_model(*model, role, kind, records) {
                    rows.push(ComparisonRow {
                        model: model.name().to_string(),
                        role,
                        kind,
                        errors,
                    });
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::tests_support::synthetic_record;
    use crate::training::{train_liu, train_wavm3, ReadingSplit};

    fn dataset(kind: MigrationKind) -> Vec<MigrationRecord> {
        (0..12).map(|v| synthetic_record(v, kind)).collect()
    }

    #[test]
    fn perfectly_specified_liu_scores_zero_error() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let liu = train_liu(&refs, MigrationKind::Live).unwrap();
        let rep = score_model(&liu, HostRole::Source, MigrationKind::Live, &refs).unwrap();
        // The synthetic energies are exactly affine in DATA.
        assert!(rep.nrmse < 1e-6, "{rep:?}");
        assert!(rep.r_squared > 0.999999);
    }

    #[test]
    fn grid_covers_models_and_roles() {
        let mut records = dataset(MigrationKind::Live);
        records.extend(dataset(MigrationKind::NonLive));
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let liu_live = train_liu(&refs, MigrationKind::Live).unwrap();
        let wavm3 = train_wavm3(&refs, MigrationKind::Live, &ReadingSplit::default()).unwrap();
        let rows = evaluate_models(&[&wavm3, &liu_live], &refs);
        // 2 kinds × 2 models × 2 roles.
        assert_eq!(rows.len(), 8);
        assert!(rows
            .iter()
            .any(|r| r.model == "WAVM3" && r.role == HostRole::Target));
        assert!(rows.iter().all(|r| r.errors.n == 12,));
    }

    #[test]
    fn no_matching_records_gives_none() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let liu = train_liu(&refs, MigrationKind::Live).unwrap();
        assert!(score_model(&liu, HostRole::Source, MigrationKind::NonLive, &refs).is_none());
    }

    #[test]
    fn observed_energy_selects_role() {
        let r = synthetic_record(0, MigrationKind::Live);
        assert_eq!(
            observed_energy(HostRole::Source, &r),
            r.source_energy.total_j()
        );
        assert_eq!(
            observed_energy(HostRole::Target, &r),
            r.target_energy.total_j()
        );
    }
}
