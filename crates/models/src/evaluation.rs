//! Model comparison on a test set — the machinery behind Tables V and VII,
//! plus live residual diagnostics streamed into the metrics registry so
//! Table IV–VII-grade numbers are observable mid-campaign instead of only
//! in the final exports.

use crate::features::HostRole;
use crate::model::{EnergyModel, PowerModel};
use serde::{Deserialize, Serialize};
use wavm3_migration::{MigrationKind, MigrationRecord};
use wavm3_obs::metrics;
use wavm3_power::MigrationPhase;
use wavm3_stats::ErrorReport;

/// One row of a Table VII-style comparison: one model, one host role, one
/// mechanism, scored on per-run migration energies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Model name.
    pub model: String,
    /// Host role the row scores.
    pub role: HostRole,
    /// Migration mechanism of the scored runs.
    pub kind: MigrationKind,
    /// MAE / RMSE / NRMSE / R² over per-run energies (joules).
    pub errors: ErrorReport,
}

/// Observed migration energy for a role (measured trace integral).
pub fn observed_energy(role: HostRole, record: &MigrationRecord) -> f64 {
    match role {
        HostRole::Source => record.source_energy.total_j(),
        HostRole::Target => record.target_energy.total_j(),
    }
}

/// Score one model on one role over records of one kind. Returns `None`
/// when no records match.
pub fn score_model(
    model: &dyn EnergyModel,
    role: HostRole,
    kind: MigrationKind,
    records: &[&MigrationRecord],
) -> Option<ErrorReport> {
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.is_empty() {
        return None;
    }
    let pred: Vec<f64> = of_kind
        .iter()
        .map(|r| model.predict_energy(role, r))
        .collect();
    let obs: Vec<f64> = of_kind.iter().map(|r| observed_energy(role, r)).collect();
    Some(ErrorReport::compute(&pred, &obs))
}

/// Full comparison grid: every model × role × mechanism present in the
/// record set — the data behind the paper's Table VII.
pub fn evaluate_models(
    models: &[&dyn EnergyModel],
    records: &[&MigrationRecord],
) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for kind in [MigrationKind::NonLive, MigrationKind::Live] {
        for model in models {
            for role in HostRole::ALL {
                if let Some(errors) = score_model(*model, role, kind, records) {
                    rows.push(ComparisonRow {
                        model: model.name().to_string(),
                        role,
                        kind,
                        errors,
                    });
                }
            }
        }
    }
    rows
}

/// Per-phase per-sample power residuals of a [`PowerModel`]: one
/// [`ErrorReport`] per migration phase, over every sample of `kind`
/// records. This is the power-granular view behind the paper's Table IV.
pub fn phase_power_residuals(
    model: &dyn PowerModel,
    role: HostRole,
    kind: MigrationKind,
    records: &[&MigrationRecord],
) -> Vec<(MigrationPhase, ErrorReport)> {
    let phases = [
        MigrationPhase::Initiation,
        MigrationPhase::Transfer,
        MigrationPhase::Activation,
    ];
    phases
        .into_iter()
        .filter_map(|phase| {
            let mut pred = Vec::new();
            let mut obs = Vec::new();
            for r in records.iter().filter(|r| r.kind == kind) {
                for s in r.samples.iter().filter(|s| s.phase == phase) {
                    pred.push(model.predict_power(role, s));
                    obs.push(match role {
                        HostRole::Source => s.power_source_w,
                        HostRole::Target => s.power_target_w,
                    });
                }
            }
            if pred.is_empty() {
                None
            } else {
                Some((phase, ErrorReport::compute(&pred, &obs)))
            }
        })
        .collect()
}

/// Stream one model's per-run energy residuals into the metrics
/// registry: an absolute-residual histogram (percent of observed) per
/// model × role × kind, plus MAE/RMSE/NRMSE gauges. No-op without a
/// metrics session.
pub fn stream_energy_residuals(
    model: &dyn EnergyModel,
    role: HostRole,
    kind: MigrationKind,
    records: &[&MigrationRecord],
) {
    if !metrics::active() {
        return;
    }
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.is_empty() {
        return;
    }
    let base = format!(
        "residual.energy.{}.{}.{}",
        model.name().to_lowercase(),
        role.label(),
        kind.label()
    );
    let mut pred = Vec::with_capacity(of_kind.len());
    let mut obs = Vec::with_capacity(of_kind.len());
    for r in &of_kind {
        let p = model.predict_energy(role, r);
        let o = observed_energy(role, r);
        if o > 0.0 {
            metrics::observe(
                &format!("{base}_pct"),
                metrics::buckets::RESIDUAL_PCT,
                (p - o).abs() / o * 100.0,
            );
        }
        pred.push(p);
        obs.push(o);
    }
    let report = ErrorReport::compute(&pred, &obs);
    metrics::gauge_set(&format!("{base}.mae_j"), report.mae);
    metrics::gauge_set(&format!("{base}.rmse_j"), report.rmse);
    metrics::gauge_set(&format!("{base}.nrmse_pct"), report.nrmse_pct());
}

/// Stream a power-granular model's per-sample residuals into the metrics
/// registry, one histogram (absolute watts) and MAE/RMSE/NRMSE gauge set
/// per migration phase. No-op without a metrics session.
pub fn stream_power_residuals(
    model: &dyn PowerModel,
    role: HostRole,
    kind: MigrationKind,
    records: &[&MigrationRecord],
) {
    if !metrics::active() {
        return;
    }
    let base = format!(
        "residual.power.{}.{}.{}",
        model.name().to_lowercase(),
        role.label(),
        kind.label()
    );
    for r in records.iter().filter(|r| r.kind == kind) {
        for s in r.samples.iter() {
            if s.phase == MigrationPhase::NormalExecution {
                continue;
            }
            let p = model.predict_power(role, s);
            let o = match role {
                HostRole::Source => s.power_source_w,
                HostRole::Target => s.power_target_w,
            };
            metrics::observe(
                &format!("{base}.{}_w", s.phase.label()),
                metrics::buckets::POWER_W,
                (p - o).abs(),
            );
        }
    }
    for (phase, report) in phase_power_residuals(model, role, kind, records) {
        let prefix = format!("{base}.{}", phase.label());
        metrics::gauge_set(&format!("{prefix}.mae_w"), report.mae);
        metrics::gauge_set(&format!("{prefix}.rmse_w"), report.rmse);
        metrics::gauge_set(&format!("{prefix}.nrmse_pct"), report.nrmse_pct());
    }
}

/// Stream the full diagnostics set for a trained model family: energy
/// residuals for every model and per-phase power residuals for the
/// power-granular ones, across both roles. Called once per evaluation
/// pass (deterministic main-thread context); no-op without a metrics
/// session.
pub fn stream_model_diagnostics(
    energy_models: &[&dyn EnergyModel],
    power_models: &[&dyn PowerModel],
    kind: MigrationKind,
    records: &[&MigrationRecord],
) {
    if !metrics::active() {
        return;
    }
    for role in HostRole::ALL {
        for model in energy_models {
            stream_energy_residuals(*model, role, kind, records);
        }
        for model in power_models {
            stream_power_residuals(*model, role, kind, records);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::tests_support::synthetic_record;
    use crate::training::{train_liu, train_wavm3, ReadingSplit};

    fn dataset(kind: MigrationKind) -> Vec<MigrationRecord> {
        (0..12).map(|v| synthetic_record(v, kind)).collect()
    }

    #[test]
    fn perfectly_specified_liu_scores_zero_error() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let liu = train_liu(&refs, MigrationKind::Live).unwrap();
        let rep = score_model(&liu, HostRole::Source, MigrationKind::Live, &refs).unwrap();
        // The synthetic energies are exactly affine in DATA.
        assert!(rep.nrmse < 1e-6, "{rep:?}");
        assert!(rep.r_squared > 0.999999);
    }

    #[test]
    fn grid_covers_models_and_roles() {
        let mut records = dataset(MigrationKind::Live);
        records.extend(dataset(MigrationKind::NonLive));
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let liu_live = train_liu(&refs, MigrationKind::Live).unwrap();
        let wavm3 = train_wavm3(&refs, MigrationKind::Live, &ReadingSplit::default()).unwrap();
        let rows = evaluate_models(&[&wavm3, &liu_live], &refs);
        // 2 kinds × 2 models × 2 roles.
        assert_eq!(rows.len(), 8);
        assert!(rows
            .iter()
            .any(|r| r.model == "WAVM3" && r.role == HostRole::Target));
        assert!(rows.iter().all(|r| r.errors.n == 12,));
    }

    #[test]
    fn no_matching_records_gives_none() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let liu = train_liu(&refs, MigrationKind::Live).unwrap();
        assert!(score_model(&liu, HostRole::Source, MigrationKind::NonLive, &refs).is_none());
    }

    #[test]
    fn residual_streams_populate_the_registry() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let wavm3 = train_wavm3(&refs, MigrationKind::Live, &ReadingSplit::default()).unwrap();
        let liu = train_liu(&refs, MigrationKind::Live).unwrap();
        let session = wavm3_obs::Session::install(wavm3_obs::ObsConfig {
            metrics: true,
            ..wavm3_obs::ObsConfig::default()
        });
        stream_model_diagnostics(&[&wavm3, &liu], &[&wavm3], MigrationKind::Live, &refs);
        let snap = session.finish().metrics;
        assert!(snap
            .histograms
            .contains_key("residual.energy.wavm3.source.live_pct"));
        assert!(snap
            .gauges
            .contains_key("residual.energy.liu.target.live.nrmse_pct"));
        assert!(snap
            .histograms
            .contains_key("residual.power.wavm3.source.live.transfer_w"));
        assert!(snap
            .gauges
            .contains_key("residual.power.wavm3.target.live.initiation.rmse_w"));
        // Per-sample histograms actually saw the transfer samples.
        let h = &snap.histograms["residual.power.wavm3.source.live.transfer_w"];
        assert!(h.count > 0);
    }

    #[test]
    fn residual_streams_are_inert_without_a_session() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let liu = train_liu(&refs, MigrationKind::Live).unwrap();
        // No session: must not record anywhere (and must not panic).
        stream_energy_residuals(&liu, HostRole::Source, MigrationKind::Live, &refs);
        assert!(wavm3_obs::metrics::snapshot().gauges.is_empty());
    }

    #[test]
    fn phase_power_residuals_cover_all_three_phases() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let wavm3 = train_wavm3(&refs, MigrationKind::Live, &ReadingSplit::default()).unwrap();
        let rows = phase_power_residuals(&wavm3, HostRole::Source, MigrationKind::Live, &refs);
        let phases: Vec<MigrationPhase> = rows.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            phases,
            vec![
                MigrationPhase::Initiation,
                MigrationPhase::Transfer,
                MigrationPhase::Activation
            ]
        );
        assert!(rows.iter().all(|(_, rep)| rep.n > 0));
    }

    #[test]
    fn observed_energy_selects_role() {
        let r = synthetic_record(0, MigrationKind::Live);
        assert_eq!(
            observed_energy(HostRole::Source, &r),
            r.source_energy.total_j()
        );
        assert_eq!(
            observed_energy(HostRole::Target, &r),
            r.target_energy.total_j()
        );
    }
}
