//! The paper's published numbers (Tables III–VII), as reference constants.
//!
//! These are the coefficients the authors fitted on their physical
//! m01–m02 testbed. They are **not** used by this reproduction's own
//! pipeline (we fit our own coefficients on simulated traces); they exist
//! so that examples and EXPERIMENTS.md can print paper-vs-measured
//! side-by-side, and so the published models can be evaluated as-is.
//!
//! Units follow the crate conventions (CPU/DR in percent, bandwidth in
//! bytes/s); the C1 constants embed the m-set idle power, the C2 constants
//! the o-set idle power (paper §VI-F).

use crate::huang::{HuangCoeffs, HuangModel};
use crate::liu::{LiuCoeffs, LiuModel};
use crate::strunk::{StrunkCoeffs, StrunkModel};
use crate::wavm3::{HostCoeffs, PhaseCoeffs, Wavm3Model};
use wavm3_migration::MigrationKind;

/// Idle-power bias embedded in the published C1 constants (m-set).
pub const PAPER_M_SET_IDLE_W: f64 = 430.0;

/// Table III — WAVM3 coefficients for **non-live** migration (C1 bias).
pub fn wavm3_non_live() -> Wavm3Model {
    Wavm3Model {
        kind: MigrationKind::NonLive,
        source: HostCoeffs {
            initiation: PhaseCoeffs {
                alpha_cpu_host: 1.71,
                beta_cpu_vm: 1.41,
                beta_bw: 0.0,
                gamma_dr: 0.0,
                c: 708.3,
            },
            transfer: PhaseCoeffs {
                alpha_cpu_host: 2.4,
                beta_cpu_vm: 0.0,
                beta_bw: 1.08e-6,
                gamma_dr: 0.0,
                c: 421.74,
            },
            activation: PhaseCoeffs {
                alpha_cpu_host: 2.37,
                beta_cpu_vm: 0.0,
                beta_bw: 0.0,
                gamma_dr: 0.0,
                c: 662.5,
            },
        },
        target: HostCoeffs {
            initiation: PhaseCoeffs {
                alpha_cpu_host: 3.18,
                beta_cpu_vm: 0.0,
                beta_bw: 0.0,
                gamma_dr: 0.0,
                c: 596.06,
            },
            transfer: PhaseCoeffs {
                alpha_cpu_host: 2.56,
                beta_cpu_vm: 0.0,
                beta_bw: 5.49e-7,
                gamma_dr: 0.0,
                c: 520.214,
            },
            activation: PhaseCoeffs {
                alpha_cpu_host: 1.88,
                beta_cpu_vm: 17.01,
                beta_bw: 0.0,
                gamma_dr: 0.0,
                c: 499.56,
            },
        },
        trained_idle_w: PAPER_M_SET_IDLE_W,
    }
}

/// Table IV — WAVM3 coefficients for **live** migration (C1 bias).
pub fn wavm3_live() -> Wavm3Model {
    let mut m = wavm3_non_live();
    m.kind = MigrationKind::Live;
    // Live differs in the transfer phase: the running VM adds DR and
    // CPU(v) terms, and the bandwidth slope changes.
    m.source.transfer = PhaseCoeffs {
        alpha_cpu_host: 2.4,
        beta_cpu_vm: 0.4,
        beta_bw: 1.52e-6,
        gamma_dr: 1.41,
        c: 421.74,
    };
    m.target.transfer = PhaseCoeffs {
        alpha_cpu_host: 2.56,
        beta_cpu_vm: 0.4,
        beta_bw: 7.32e-7,
        gamma_dr: 0.0,
        c: 520.214,
    };
    m
}

/// Table VI — HUANG training coefficients.
pub fn huang() -> HuangModel {
    HuangModel {
        source: HuangCoeffs {
            alpha: 2.27,
            c: 671.92,
        },
        target: HuangCoeffs {
            alpha: 2.56,
            c: 645.776,
        },
    }
}

/// Table VI — LIU training coefficients (α in J per byte at our DATA unit).
pub fn liu() -> LiuModel {
    LiuModel {
        source: LiuCoeffs {
            alpha: 2.43e-6,
            c: 494.2,
        },
        target: LiuCoeffs {
            alpha: 2.19e-6,
            c: 508.2,
        },
    }
}

/// Table VI — STRUNK training coefficients.
pub fn strunk() -> StrunkModel {
    StrunkModel {
        source: StrunkCoeffs {
            alpha_mem: 3.35,
            beta_bw: -3.47,
            c: 201.1,
        },
        target: StrunkCoeffs {
            alpha_mem: 5.04,
            beta_bw: -0.5,
            c: 201.1,
        },
    }
}

/// One NRMSE cell of the paper's Table V/VII (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperNrmse {
    /// Model name.
    pub model: &'static str,
    /// "source" / "target".
    pub host: &'static str,
    /// NRMSE for non-live migration, percent.
    pub non_live_pct: f64,
    /// NRMSE for live migration, percent.
    pub live_pct: f64,
}

/// Table VII — the paper's published NRMSE grid on m01–m02.
pub const TABLE_VII_NRMSE: [PaperNrmse; 8] = [
    PaperNrmse {
        model: "WAVM3",
        host: "source",
        non_live_pct: 11.8,
        live_pct: 11.8,
    },
    PaperNrmse {
        model: "WAVM3",
        host: "target",
        non_live_pct: 12.0,
        live_pct: 5.0,
    },
    PaperNrmse {
        model: "HUANG",
        host: "source",
        non_live_pct: 12.0,
        live_pct: 15.7,
    },
    PaperNrmse {
        model: "HUANG",
        host: "target",
        non_live_pct: 12.8,
        live_pct: 12.9,
    },
    PaperNrmse {
        model: "LIU",
        host: "source",
        non_live_pct: 26.9,
        live_pct: 36.3,
    },
    PaperNrmse {
        model: "LIU",
        host: "target",
        non_live_pct: 25.3,
        live_pct: 29.4,
    },
    PaperNrmse {
        model: "STRUNK",
        host: "source",
        non_live_pct: 17.7,
        live_pct: 35.4,
    },
    PaperNrmse {
        model: "STRUNK",
        host: "target",
        non_live_pct: 30.0,
        live_pct: 36.2,
    },
];

/// Table V — WAVM3 NRMSE on both machine sets (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableVRow {
    /// "source" / "target".
    pub host: &'static str,
    /// m01–m02, non-live.
    pub m_non_live_pct: f64,
    /// m01–m02, live.
    pub m_live_pct: f64,
    /// o1–o2, non-live (after the C1→C2 bias swap).
    pub o_non_live_pct: f64,
    /// o1–o2, live (after the C1→C2 bias swap).
    pub o_live_pct: f64,
}

/// Table V as published.
pub const TABLE_V: [TableVRow; 2] = [
    TableVRow {
        host: "source",
        m_non_live_pct: 11.8,
        m_live_pct: 11.8,
        o_non_live_pct: 12.5,
        o_live_pct: 12.7,
    },
    TableVRow {
        host: "target",
        m_non_live_pct: 12.0,
        m_live_pct: 5.0,
        o_non_live_pct: 16.3,
        o_live_pct: 17.2,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::HostRole;
    use crate::model::PowerModel;
    use crate::training::tests_support::tiny_record;
    use wavm3_power::MigrationPhase;

    #[test]
    fn live_and_non_live_differ_only_in_transfer() {
        let live = wavm3_live();
        let non = wavm3_non_live();
        assert_eq!(live.source.initiation, non.source.initiation);
        assert_eq!(live.source.activation, non.source.activation);
        assert_ne!(live.source.transfer, non.source.transfer);
        assert!(live.source.transfer.gamma_dr > 0.0);
        assert_eq!(non.source.transfer.gamma_dr, 0.0);
    }

    #[test]
    fn published_models_produce_plausible_watts() {
        let m = wavm3_live();
        let r = tiny_record();
        for s in r
            .samples
            .iter()
            .filter(|s| s.phase == MigrationPhase::Transfer)
        {
            let p = m.predict_power(HostRole::Source, s);
            assert!((300.0..1200.0).contains(&p), "implausible power {p}");
        }
    }

    #[test]
    fn table_vii_shape_wavm3_wins_live() {
        // The published table itself encodes the paper's headline claims;
        // keep them machine-checked so EXPERIMENTS.md comparisons are
        // grounded.
        let get = |model: &str, host: &str| {
            TABLE_VII_NRMSE
                .iter()
                .find(|r| r.model == model && r.host == host)
                .unwrap()
        };
        // Live: WAVM3 strictly beats every baseline on both hosts.
        for host in ["source", "target"] {
            let w = get("WAVM3", host).live_pct;
            for m in ["HUANG", "LIU", "STRUNK"] {
                assert!(w < get(m, host).live_pct);
            }
        }
        // Non-live: HUANG is competitive (the paper's §VII-A nuance).
        assert!(
            (get("WAVM3", "source").non_live_pct - get("HUANG", "source").non_live_pct).abs() < 1.0
        );
        // The headline: up to 7.9 points NRMSE improvement on live target.
        assert!(
            (get("HUANG", "target").live_pct - get("WAVM3", "target").live_pct - 7.9).abs() < 0.11
        );
    }

    #[test]
    fn table_v_bias_swap_keeps_model_usable_cross_set() {
        for row in TABLE_V {
            assert!(row.o_non_live_pct < 20.0 && row.o_live_pct < 20.0);
        }
    }
}
