//! WAVM3 — the paper's workload-aware migration energy model (Eqs. 5–7).
//!
//! One linear power law per (phase × host role):
//!
//! ```text
//! P(i)(h,v,t) = α(i)·CPU(h,t) + β(i)·CPU(v,t)                     + C(i)   (Eq. 5)
//! P(t)(h,v,t) = α(t)·CPU(h,t) + β(t)·BW + γ(t)·DR + δ(t)·CPU(v,t) + C(t)   (Eq. 6)
//! P(a)(h,v,t) = α(a)·CPU(h,t) + β(a)·CPU(v,t)                     + C(a)   (Eq. 7)
//! ```
//!
//! All three reduce to the same five-coefficient linear form over the
//! masked [`PhaseVector`](crate::features::PhaseVector) — in the initiation
//! and activation phases the bandwidth and dirty-ratio features are
//! structurally zero, so their coefficients are inert.

use crate::features::{HostRole, PhaseVector};
use crate::model::{integrate_power, EnergyModel, PowerModel, SAMPLE_PERIOD_S};
use serde::{Deserialize, Serialize};
use wavm3_migration::{FeatureSample, MigrationKind, MigrationRecord};
use wavm3_power::MigrationPhase;

/// Coefficients of one phase's power law.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseCoeffs {
    /// α — watts per percent of host CPU.
    pub alpha_cpu_host: f64,
    /// β (init/activation) / δ (transfer) — watts per percent of VM CPU.
    pub beta_cpu_vm: f64,
    /// β(t) — watts per byte/s of migration bandwidth (transfer only).
    pub beta_bw: f64,
    /// γ(t) — watts per percent of dirtying ratio (transfer only).
    pub gamma_dr: f64,
    /// C — the phase constant, watts (absorbs idle power + service power).
    pub c: f64,
}

impl PhaseCoeffs {
    /// Evaluate the power law on a masked feature vector.
    pub fn eval(&self, v: &PhaseVector) -> f64 {
        self.alpha_cpu_host * v.cpu_host_pct
            + self.beta_cpu_vm * v.cpu_vm_pct
            + self.beta_bw * v.bandwidth_bps
            + self.gamma_dr * v.dirty_ratio_pct
            + self.c
    }
}

/// The three phase laws of one host role.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HostCoeffs {
    /// Initiation-phase law (Eq. 5).
    pub initiation: PhaseCoeffs,
    /// Transfer-phase law (Eq. 6).
    pub transfer: PhaseCoeffs,
    /// Activation-phase law (Eq. 7).
    pub activation: PhaseCoeffs,
}

impl HostCoeffs {
    /// The law for a phase (`NormalExecution` maps onto the initiation law:
    /// no migration activity, so only the CPU and constant terms act).
    pub fn for_phase(&self, phase: MigrationPhase) -> &PhaseCoeffs {
        match phase {
            MigrationPhase::Initiation | MigrationPhase::NormalExecution => &self.initiation,
            MigrationPhase::Transfer => &self.transfer,
            MigrationPhase::Activation => &self.activation,
        }
    }
}

/// A trained WAVM3 model for one migration mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wavm3Model {
    /// Mechanism the coefficients were fitted for (Tables III vs IV).
    pub kind: MigrationKind,
    /// Source-host laws.
    pub source: HostCoeffs,
    /// Target-host laws.
    pub target: HostCoeffs,
    /// Idle power of the machines the model was trained on, watts — the
    /// origin of the phase constants' bias (paper §VI-F).
    pub trained_idle_w: f64,
}

impl Wavm3Model {
    /// The laws for a host role.
    pub fn coeffs(&self, role: HostRole) -> &HostCoeffs {
        match role {
            HostRole::Source => &self.source,
            HostRole::Target => &self.target,
        }
    }

    /// The paper's cross-machine-set bias correction (Table V): shift every
    /// phase constant by the idle-power difference between the training
    /// machines and a new machine set (`C2 = C1 − (idle_train − idle_new)`).
    pub fn with_idle_bias(&self, new_idle_w: f64) -> Wavm3Model {
        let delta = new_idle_w - self.trained_idle_w;
        let shift = |mut h: HostCoeffs| {
            h.initiation.c += delta;
            h.transfer.c += delta;
            h.activation.c += delta;
            h
        };
        Wavm3Model {
            kind: self.kind,
            source: shift(self.source),
            target: shift(self.target),
            trained_idle_w: new_idle_w,
        }
    }

    /// Predicted energy of one phase, joules.
    pub fn predict_phase_energy(
        &self,
        role: HostRole,
        record: &MigrationRecord,
        phase: MigrationPhase,
    ) -> f64 {
        record
            .samples
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| self.predict_power(role, s) * SAMPLE_PERIOD_S)
            .sum()
    }
}

impl EnergyModel for Wavm3Model {
    fn name(&self) -> &'static str {
        "WAVM3"
    }

    fn predict_energy(&self, role: HostRole, record: &MigrationRecord) -> f64 {
        integrate_power(self, role, record)
    }
}

impl PowerModel for Wavm3Model {
    fn predict_power(&self, role: HostRole, sample: &FeatureSample) -> f64 {
        let v = PhaseVector::extract(role, sample);
        self.coeffs(role).for_phase(v.phase).eval(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_simkit::SimTime;

    fn model() -> Wavm3Model {
        let phase = |alpha: f64, c: f64| PhaseCoeffs {
            alpha_cpu_host: alpha,
            beta_cpu_vm: 0.5,
            beta_bw: 1.0e-6,
            gamma_dr: 1.2,
            c,
        };
        let host = HostCoeffs {
            initiation: phase(1.7, 500.0),
            transfer: phase(2.4, 450.0),
            activation: phase(2.0, 480.0),
        };
        Wavm3Model {
            kind: MigrationKind::Live,
            source: host,
            target: HostCoeffs {
                initiation: phase(3.0, 430.0),
                ..host
            },
            trained_idle_w: 430.0,
        }
    }

    fn sample(phase: MigrationPhase) -> FeatureSample {
        FeatureSample {
            t: SimTime::from_secs(20),
            phase,
            cpu_source: 0.5,
            cpu_target: 0.25,
            cpu_vm: 1.0,
            dirty_ratio: 0.4,
            bandwidth_bps: 1.0e8,
            power_source_w: 0.0,
            power_target_w: 0.0,
        }
    }

    #[test]
    fn transfer_power_combines_all_terms() {
        let m = model();
        // Source transfer: 2.4·50 + 0.5·100 + 1e-6·1e8 + 1.2·40 + 450
        let p = m.predict_power(HostRole::Source, &sample(MigrationPhase::Transfer));
        assert!((p - (120.0 + 50.0 + 100.0 + 48.0 + 450.0)).abs() < 1e-9);
    }

    #[test]
    fn target_transfer_drops_vm_terms() {
        let m = model();
        // Target transfer masks cpu_vm and dr: 2.4·25 + 1e-6·1e8 + 450.
        let p = m.predict_power(HostRole::Target, &sample(MigrationPhase::Transfer));
        assert!((p - (60.0 + 100.0 + 450.0)).abs() < 1e-9);
    }

    #[test]
    fn initiation_ignores_bandwidth_via_masking() {
        let m = model();
        // Initiation features have bw = dr = 0 regardless of the sample,
        // because the simulator only reports bandwidth during transfer.
        let mut s = sample(MigrationPhase::Initiation);
        s.bandwidth_bps = 0.0; // what the simulator produces outside transfer
        let p = m.predict_power(HostRole::Source, &s);
        assert!((p - (1.7 * 50.0 + 0.5 * 100.0 + 500.0)).abs() < 1e-9);
    }

    #[test]
    fn bias_shift_moves_all_constants() {
        let m = model();
        let shifted = m.with_idle_bias(165.0); // o-set idle
        let delta = 165.0 - 430.0;
        assert_eq!(shifted.source.transfer.c, m.source.transfer.c + delta);
        assert_eq!(shifted.target.initiation.c, m.target.initiation.c + delta);
        assert_eq!(shifted.source.activation.c, m.source.activation.c + delta);
        // Slopes untouched.
        assert_eq!(
            shifted.source.transfer.alpha_cpu_host,
            m.source.transfer.alpha_cpu_host
        );
        assert_eq!(shifted.trained_idle_w, 165.0);
        // Round trip restores the original.
        let back = shifted.with_idle_bias(430.0);
        assert_eq!(back, m);
    }

    #[test]
    fn phase_energy_sums_to_total() {
        let m = model();
        let record = crate::training::tests_support::tiny_record();
        let by_phase: f64 = [
            MigrationPhase::Initiation,
            MigrationPhase::Transfer,
            MigrationPhase::Activation,
        ]
        .iter()
        .map(|&p| m.predict_phase_energy(HostRole::Source, &record, p))
        .sum();
        let total = m.predict_energy(HostRole::Source, &record);
        assert!((by_phase - total).abs() < 1e-9);
    }
}
