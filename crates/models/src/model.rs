//! The model abstractions.

use crate::features::HostRole;
use wavm3_migration::{FeatureSample, MigrationRecord};
use wavm3_power::MigrationPhase;

/// Seconds between meter readings — the integration step for power-level
/// models (2 Hz, paper §V-B).
pub const SAMPLE_PERIOD_S: f64 = 0.5;

/// Anything that can predict the energy of one migration on one host —
/// the quantity the paper's Tables V and VII score.
pub trait EnergyModel {
    /// Model name as used in the paper's tables ("WAVM3", "HUANG", …).
    fn name(&self) -> &'static str;

    /// Predicted `E_migr(h, v)` in joules over `[ms, me]`.
    fn predict_energy(&self, role: HostRole, record: &MigrationRecord) -> f64;
}

/// Power-granular models (WAVM3, HUANG) additionally predict instantaneous
/// power; their energy prediction is the numerical integral of the power
/// prediction over the migration window.
pub trait PowerModel: EnergyModel {
    /// Predicted instantaneous power, watts, at one sample. Only meaningful
    /// for samples inside the migration window (`phase` not
    /// `NormalExecution`).
    fn predict_power(&self, role: HostRole, sample: &FeatureSample) -> f64;
}

/// Riemann-sum energy over the migration window from a power predictor —
/// shared by every [`PowerModel`]'s `predict_energy`.
pub fn integrate_power<M: PowerModel + ?Sized>(
    model: &M,
    role: HostRole,
    record: &MigrationRecord,
) -> f64 {
    record
        .samples
        .iter()
        .filter(|s| s.phase != MigrationPhase::NormalExecution)
        .map(|s| model.predict_power(role, s) * SAMPLE_PERIOD_S)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy power model predicting a constant, to pin the integration
    /// contract: energy = constant × window length.
    struct Flat(f64);

    impl EnergyModel for Flat {
        fn name(&self) -> &'static str {
            "FLAT"
        }
        fn predict_energy(&self, role: HostRole, record: &MigrationRecord) -> f64 {
            integrate_power(self, role, record)
        }
    }

    impl PowerModel for Flat {
        fn predict_power(&self, _role: HostRole, _s: &FeatureSample) -> f64 {
            self.0
        }
    }

    #[test]
    fn integration_counts_only_migration_samples() {
        use wavm3_cluster::MachineSet;
        use wavm3_migration::{MigrationKind, MigrationOutcome};
        use wavm3_power::{EnergyBreakdown, PhaseTimes, PowerTrace, TelemetryRecorder};
        use wavm3_simkit::{SimDuration, SimTime};

        let phases = PhaseTimes::new(
            SimTime::from_secs(10),
            SimTime::from_secs(11),
            SimTime::from_secs(20),
            SimTime::from_secs(22),
        );
        let mk = |t: u64, phase| FeatureSample {
            t: SimTime::from_secs(t),
            phase,
            cpu_source: 0.0,
            cpu_target: 0.0,
            cpu_vm: 0.0,
            dirty_ratio: 0.0,
            bandwidth_bps: 0.0,
            power_source_w: 0.0,
            power_target_w: 0.0,
        };
        let record = MigrationRecord {
            kind: MigrationKind::Live,
            machine_set: MachineSet::M,
            phases,
            source_trace: PowerTrace::new("s"),
            target_trace: PowerTrace::new("t"),
            source_truth: PowerTrace::new("s"),
            target_truth: PowerTrace::new("t"),
            telemetry: TelemetryRecorder::new(),
            samples: vec![
                mk(5, MigrationPhase::NormalExecution),
                mk(10, MigrationPhase::Initiation),
                mk(15, MigrationPhase::Transfer),
                mk(21, MigrationPhase::Activation),
                mk(30, MigrationPhase::NormalExecution),
            ],
            rounds: vec![],
            total_bytes: 0,
            downtime: SimDuration::ZERO,
            vm_ram_mib: 4096,
            source_energy: EnergyBreakdown {
                initiation_j: 0.0,
                transfer_j: 0.0,
                activation_j: 0.0,
                rollback_j: 0.0,
            },
            target_energy: EnergyBreakdown {
                initiation_j: 0.0,
                transfer_j: 0.0,
                activation_j: 0.0,
                rollback_j: 0.0,
            },
            idle_power_w: 430.0,
            outcome: MigrationOutcome::Completed,
            fault_events: Vec::new(),
            attempt: 0,
            retry_backoff: SimDuration::ZERO,
        };
        let m = Flat(100.0);
        // Three migration-window samples × 100 W × 0.5 s.
        assert_eq!(m.predict_energy(HostRole::Source, &record), 150.0);
    }
}
