//! The paper's training pipeline (§VI-F).
//!
//! *"We select a training subset of the power readings from each phase to
//! extract the model coefficients … The training set used for this purpose
//! is the 20 % of the readings."*
//!
//! Power-granular models (WAVM3, HUANG) are fitted on a seeded 20 % subset
//! of the 2 Hz readings; energy-granular models (LIU, STRUNK) are fitted on
//! per-run energies. The WAVM3/HUANG laws are linear in their parameters,
//! so the non-linear least-squares fit reduces to ordinary least squares —
//! the pipeline uses QR-based OLS, falls back to damped Levenberg–Marquardt
//! when the design matrix is rank-deficient (e.g. STRUNK's constant memory
//! column), and a unit test pins the equivalence of the two solvers.

use crate::features::{HostRole, PhaseVector};
use crate::huang::{HuangCoeffs, HuangModel, HuangVmModel};
use crate::liu::{LiuCoeffs, LiuModel};
use crate::strunk::{StrunkCoeffs, StrunkModel};
use crate::wavm3::{HostCoeffs, PhaseCoeffs, Wavm3Model};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wavm3_migration::{MigrationKind, MigrationRecord};
use wavm3_power::MigrationPhase;
use wavm3_stats::{fit_ols, levenberg_marquardt, LmOptions, Matrix};

/// How the reading-level training subset is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadingSplit {
    /// Fraction of each record's readings used for training (paper: 0.2).
    pub train_fraction: f64,
    /// Seed of the deterministic subset choice.
    pub seed: u64,
}

impl Default for ReadingSplit {
    fn default() -> Self {
        ReadingSplit {
            train_fraction: 0.2,
            // Any fixed constant works; this one keeps the 20% draw
            // well-conditioned in every (role × phase) training cell.
            seed: 20150911,
        }
    }
}

impl ReadingSplit {
    /// Deterministically pick the training indices of a record's
    /// migration-window samples.
    fn pick(&self, record_index: usize, n: usize) -> Vec<usize> {
        assert!(
            (0.0..=1.0).contains(&self.train_fraction),
            "train_fraction out of range"
        );
        let take = ((n as f64) * self.train_fraction).ceil() as usize;
        let take = take.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ (record_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        idx.shuffle(&mut rng);
        idx.truncate(take);
        idx.sort_unstable();
        idx
    }
}

/// Which WAVM3 ingredients to keep — the ablation-study control.
///
/// Disabling a flag removes that feature column before fitting (the model
/// is *retrained* without it, not merely zeroed at prediction time), and
/// `per_phase = false` collapses the three phase laws into one law fitted
/// on all migration-window readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureMask {
    /// Keep the host-CPU term `α·CPU(h,t)`.
    pub cpu_host: bool,
    /// Keep the VM-CPU terms `β/δ·CPU(v,t)`.
    pub cpu_vm: bool,
    /// Keep the bandwidth term `β(t)·BW`.
    pub bandwidth: bool,
    /// Keep the dirtying-ratio term `γ(t)·DR`.
    pub dirty_ratio: bool,
    /// Keep the per-phase structure (separate laws per phase).
    pub per_phase: bool,
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask {
            cpu_host: true,
            cpu_vm: true,
            bandwidth: true,
            dirty_ratio: true,
            per_phase: true,
        }
    }
}

impl FeatureMask {
    /// Short label for ablation tables, e.g. "full" or "-DR".
    pub fn label(&self) -> String {
        let full = FeatureMask::default();
        if *self == full {
            return "full".to_string();
        }
        let mut parts = Vec::new();
        if !self.cpu_host {
            parts.push("-CPU(h)");
        }
        if !self.cpu_vm {
            parts.push("-CPU(v)");
        }
        if !self.bandwidth {
            parts.push("-BW");
        }
        if !self.dirty_ratio {
            parts.push("-DR");
        }
        if !self.per_phase {
            parts.push("-phases");
        }
        parts.join(" ")
    }

    fn apply(&self, row: &mut [f64]) {
        if !self.cpu_host {
            row[0] = 0.0;
        }
        if !self.cpu_vm {
            row[1] = 0.0;
        }
        if !self.bandwidth {
            row[2] = 0.0;
        }
        if !self.dirty_ratio {
            row[3] = 0.0;
        }
    }
}

/// Masked training rows of one (role, phase) cell; `phase = None` pools
/// every migration-window reading (the phase-collapsed ablation).
fn phase_rows(
    records: &[&MigrationRecord],
    role: HostRole,
    phase: Option<MigrationPhase>,
    split: &ReadingSplit,
    mask: &FeatureMask,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (ri, record) in records.iter().enumerate() {
        let in_window: Vec<&wavm3_migration::FeatureSample> = record
            .samples
            .iter()
            .filter(|s| s.phase != MigrationPhase::NormalExecution)
            .collect();
        for i in split.pick(ri, in_window.len()) {
            let s = in_window[i];
            if let Some(p) = phase {
                if s.phase != p {
                    continue;
                }
            }
            let v = PhaseVector::extract(role, s);
            let mut row = vec![
                v.cpu_host_pct,
                v.cpu_vm_pct,
                v.bandwidth_bps,
                v.dirty_ratio_pct,
                1.0,
            ];
            mask.apply(&mut row);
            xs.push(row);
            ys.push(v.power_w);
        }
    }
    (xs, ys)
}

/// Least-squares fit with structural-zero column elimination: feature
/// columns that are identically zero in the training data (e.g. `DR` on the
/// target side) are removed before the solve and their coefficients pinned
/// to zero, exactly like the zero entries of the paper's Tables III/IV.
/// Falls back to Levenberg–Marquardt if QR still reports rank deficiency.
fn fit_linear_with_elimination(xs: &[Vec<f64>], ys: &[f64]) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    let n_cols = xs[0].len();
    let mut active: Vec<usize> = Vec::new();
    for c in 0..n_cols {
        if xs.iter().any(|r| r[c].abs() > 1e-9) {
            active.push(c);
        }
    }
    if active.is_empty() || xs.len() < active.len() {
        return None;
    }
    let reduced: Vec<Vec<f64>> = xs
        .iter()
        .map(|r| active.iter().map(|&c| r[c]).collect())
        .collect();
    let design = Matrix::from_nested(reduced.clone());
    let coeffs = match fit_ols(&design, ys) {
        Some(fit) => fit.coefficients,
        None => {
            // Rank-deficient even after elimination: damped LM shoulders it.
            let res = |p: &[f64]| -> Vec<f64> {
                reduced
                    .iter()
                    .zip(ys)
                    .map(|(r, y)| r.iter().zip(p).map(|(a, b)| a * b).sum::<f64>() - y)
                    .collect()
            };
            levenberg_marquardt(res, &vec![0.0; active.len()], &LmOptions::default()).parameters
        }
    };
    let mut full = vec![0.0; n_cols];
    for (slot, &c) in active.iter().enumerate() {
        full[c] = coeffs[slot];
    }
    Some(full)
}

fn coeffs_from_vec(v: &[f64]) -> PhaseCoeffs {
    PhaseCoeffs {
        alpha_cpu_host: v[0],
        beta_cpu_vm: v[1],
        beta_bw: v[2],
        gamma_dr: v[3],
        c: v[4],
    }
}

/// Fit a WAVM3 model (Tables III/IV) from records of one mechanism.
///
/// Returns `None` when any (role × phase) cell has no usable training rows
/// — e.g. an empty record set or one with no transfer samples.
pub fn train_wavm3(
    records: &[&MigrationRecord],
    kind: MigrationKind,
    split: &ReadingSplit,
) -> Option<Wavm3Model> {
    train_wavm3_masked(records, kind, split, &FeatureMask::default())
}

/// [`train_wavm3`] with an ablation [`FeatureMask`].
pub fn train_wavm3_masked(
    records: &[&MigrationRecord],
    kind: MigrationKind,
    split: &ReadingSplit,
    mask: &FeatureMask,
) -> Option<Wavm3Model> {
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.is_empty() {
        return None;
    }
    let mut per_role = [HostCoeffs::default(), HostCoeffs::default()];
    for (slot, role) in HostRole::ALL.iter().enumerate() {
        let host = &mut per_role[slot];
        if mask.per_phase {
            for phase in [
                MigrationPhase::Initiation,
                MigrationPhase::Transfer,
                MigrationPhase::Activation,
            ] {
                let (xs, ys) = phase_rows(&of_kind, *role, Some(phase), split, mask);
                let v = fit_linear_with_elimination(&xs, &ys)?;
                let coeffs = coeffs_from_vec(&v);
                match phase {
                    MigrationPhase::Initiation => host.initiation = coeffs,
                    MigrationPhase::Transfer => host.transfer = coeffs,
                    MigrationPhase::Activation => host.activation = coeffs,
                    MigrationPhase::NormalExecution => unreachable!(),
                }
            }
        } else {
            // Phase-collapsed ablation: one pooled law for all phases.
            let (xs, ys) = phase_rows(&of_kind, *role, None, split, mask);
            let v = fit_linear_with_elimination(&xs, &ys)?;
            let coeffs = coeffs_from_vec(&v);
            host.initiation = coeffs;
            host.transfer = coeffs;
            host.activation = coeffs;
        }
    }
    Some(Wavm3Model {
        kind,
        source: per_role[0],
        target: per_role[1],
        trained_idle_w: of_kind[0].idle_power_w,
    })
}

/// Fit a HUANG model on the same reading split (pooled across phases).
pub fn train_huang(
    records: &[&MigrationRecord],
    kind: MigrationKind,
    split: &ReadingSplit,
) -> Option<HuangModel> {
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.is_empty() {
        return None;
    }
    let mut out = [HuangCoeffs::default(), HuangCoeffs::default()];
    for (slot, role) in HostRole::ALL.iter().enumerate() {
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys = Vec::new();
        for (ri, record) in of_kind.iter().enumerate() {
            let in_window: Vec<&wavm3_migration::FeatureSample> = record
                .samples
                .iter()
                .filter(|s| s.phase != MigrationPhase::NormalExecution)
                .collect();
            for i in split.pick(ri, in_window.len()) {
                let v = PhaseVector::extract(*role, in_window[i]);
                xs.push(vec![v.cpu_host_pct, 1.0]);
                ys.push(v.power_w);
            }
        }
        let v = fit_linear_with_elimination(&xs, &ys)?;
        out[slot] = HuangCoeffs {
            alpha: v[0],
            c: v[1],
        };
    }
    Some(HuangModel {
        source: out[0],
        target: out[1],
    })
}

/// Fit the literal-Eq.-8 HUANG variant (guest-CPU feature) on the same
/// reading split.
pub fn train_huang_vm(
    records: &[&MigrationRecord],
    kind: MigrationKind,
    split: &ReadingSplit,
) -> Option<HuangVmModel> {
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.is_empty() {
        return None;
    }
    let mut out = [HuangCoeffs::default(), HuangCoeffs::default()];
    for (slot, role) in HostRole::ALL.iter().enumerate() {
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys = Vec::new();
        for (ri, record) in of_kind.iter().enumerate() {
            let in_window: Vec<&wavm3_migration::FeatureSample> = record
                .samples
                .iter()
                .filter(|s| s.phase != MigrationPhase::NormalExecution)
                .collect();
            for i in split.pick(ri, in_window.len()) {
                let v = PhaseVector::extract(*role, in_window[i]);
                xs.push(vec![v.cpu_vm_pct, 1.0]);
                ys.push(v.power_w);
            }
        }
        let v = fit_linear_with_elimination(&xs, &ys)?;
        out[slot] = HuangCoeffs {
            alpha: v[0],
            c: v[1],
        };
    }
    Some(HuangVmModel {
        source: out[0],
        target: out[1],
    })
}

/// Fit a LIU model on per-run `(DATA, E_migr)` pairs.
pub fn train_liu(records: &[&MigrationRecord], kind: MigrationKind) -> Option<LiuModel> {
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.len() < 2 {
        return None;
    }
    let mut out = [LiuCoeffs::default(), LiuCoeffs::default()];
    for (slot, role) in HostRole::ALL.iter().enumerate() {
        let xs: Vec<Vec<f64>> = of_kind
            .iter()
            .map(|r| vec![LiuModel::data_bytes(r), 1.0])
            .collect();
        let ys: Vec<f64> = of_kind
            .iter()
            .map(|r| match role {
                HostRole::Source => r.source_energy.total_j(),
                HostRole::Target => r.target_energy.total_j(),
            })
            .collect();
        let v = fit_linear_with_elimination(&xs, &ys)?;
        out[slot] = LiuCoeffs {
            alpha: v[0],
            c: v[1],
        };
    }
    Some(LiuModel {
        source: out[0],
        target: out[1],
    })
}

/// Fit a STRUNK model on per-run `(MEM, BW, E_migr)` tuples.
///
/// With the paper's single VM size the memory column is constant, so the
/// damped LM path resolves the collinearity (QR refuses it).
pub fn train_strunk(records: &[&MigrationRecord], kind: MigrationKind) -> Option<StrunkModel> {
    let of_kind: Vec<&MigrationRecord> =
        records.iter().copied().filter(|r| r.kind == kind).collect();
    if of_kind.len() < 3 {
        return None;
    }
    let mut out = [StrunkCoeffs::default(), StrunkCoeffs::default()];
    for (slot, role) in HostRole::ALL.iter().enumerate() {
        let rows: Vec<Vec<f64>> = of_kind
            .iter()
            .map(|r| {
                let (mem, bw) = StrunkModel::features(r);
                vec![mem, bw, 1.0]
            })
            .collect();
        let ys: Vec<f64> = of_kind
            .iter()
            .map(|r| match role {
                HostRole::Source => r.source_energy.total_j(),
                HostRole::Target => r.target_energy.total_j(),
            })
            .collect();
        let res = |p: &[f64]| -> Vec<f64> {
            rows.iter()
                .zip(&ys)
                .map(|(r, y)| r.iter().zip(p).map(|(a, b)| a * b).sum::<f64>() - y)
                .collect()
        };
        let fit = levenberg_marquardt(res, &[0.0, 0.0, 0.0], &LmOptions::default());
        out[slot] = StrunkCoeffs {
            alpha_mem: fit.parameters[0],
            beta_bw: fit.parameters[1],
            c: fit.parameters[2],
        };
    }
    Some(StrunkModel {
        source: out[0],
        target: out[1],
    })
}

/// Shared synthetic fixtures for in-crate tests.
#[cfg(test)]
pub mod tests_support {
    use wavm3_cluster::MachineSet;
    use wavm3_migration::{FeatureSample, MigrationKind, MigrationOutcome, MigrationRecord};
    use wavm3_power::{EnergyBreakdown, MigrationPhase, PhaseTimes, PowerTrace, TelemetryRecorder};
    use wavm3_simkit::{SimDuration, SimTime};

    /// Ground-truth coefficients used by the synthetic record generator:
    /// `P = 1.8·cpu_host% + 0.6·cpu_vm% + 9e-7·bw + 1.1·dr% + 450`.
    pub const TRUE_COEFFS: [f64; 5] = [1.8, 0.6, 9.0e-7, 1.1, 450.0];

    /// A synthetic record whose power readings follow `TRUE_COEFFS`
    /// exactly (for the source host; the target gets the masked features).
    /// `variant` perturbs the workload features so a set of records spans
    /// the feature space.
    pub fn synthetic_record(variant: u64, kind: MigrationKind) -> MigrationRecord {
        let phases = PhaseTimes::new(
            SimTime::from_secs(10),
            SimTime::from_secs(12),
            SimTime::from_secs(42),
            SimTime::from_secs(45),
        );
        let mut samples = Vec::new();
        let mut t = SimTime::ZERO;
        let dt = SimDuration::from_millis(500);
        // Feature streams must vary *independently* across samples or the
        // design matrix degenerates; a tiny integer hash decorrelates them.
        let jig = |i: u64, k: u64| {
            let h = (i
                .wrapping_mul(2654435761)
                .wrapping_add(k.wrapping_mul(40503)))
            .wrapping_add(variant.wrapping_mul(97));
            ((h >> 3) % 101) as f64 / 100.0
        };
        let mut i: u64 = 0;
        while t < SimTime::from_secs(55) {
            let phase = phases.phase_at(t);
            let (cpu_s, cpu_t, cpu_v, dr, bw) = match phase {
                MigrationPhase::NormalExecution => {
                    (0.2 + 0.5 * jig(i, 1), 0.1 + 0.1 * jig(i, 2), 0.8, 0.0, 0.0)
                }
                MigrationPhase::Initiation => (
                    0.25 + 0.5 * jig(i, 1),
                    0.1 + 0.2 * jig(i, 2),
                    0.4 + 0.5 * jig(i, 3),
                    0.0,
                    0.0,
                ),
                MigrationPhase::Transfer => {
                    let live = kind == MigrationKind::Live;
                    (
                        0.3 + 0.5 * jig(i, 1),
                        0.15 + 0.3 * jig(i, 2),
                        if live { 0.4 + 0.55 * jig(i, 3) } else { 0.0 },
                        if live { 0.1 + 0.7 * jig(i, 4) } else { 0.0 },
                        0.5e8 + 6.0e7 * jig(i, 5),
                    )
                }
                MigrationPhase::Activation => (
                    0.1 + 0.3 * jig(i, 1),
                    0.3 + 0.4 * jig(i, 2),
                    0.3 + 0.6 * jig(i, 3),
                    0.0,
                    0.0,
                ),
            };
            i += 1;
            // Source power follows the masked source features; target power
            // follows the masked target features (mask replicated here).
            let p = |cpu_h: f64, cpu_vm: f64, drv: f64, bwv: f64| {
                TRUE_COEFFS[0] * cpu_h * 100.0
                    + TRUE_COEFFS[1] * cpu_vm * 100.0
                    + TRUE_COEFFS[2] * bwv
                    + TRUE_COEFFS[3] * drv * 100.0
                    + TRUE_COEFFS[4]
            };
            let (src_vm, src_dr) = match phase {
                MigrationPhase::Activation => (0.0, 0.0),
                MigrationPhase::Initiation => (cpu_v, 0.0),
                _ => (cpu_v, dr),
            };
            let (dst_vm, dst_dr) = match phase {
                MigrationPhase::Activation => (cpu_v, 0.0),
                _ => (0.0, 0.0),
            };
            samples.push(FeatureSample {
                t,
                phase,
                cpu_source: cpu_s,
                cpu_target: cpu_t,
                cpu_vm: cpu_v,
                dirty_ratio: dr,
                bandwidth_bps: bw,
                power_source_w: p(cpu_s, src_vm, src_dr, bw),
                power_target_w: p(cpu_t, dst_vm, dst_dr, bw),
            });
            t += dt;
        }
        let total_bytes = 4_000_000_000 + variant * 120_000_000;
        // Observed per-run energies follow a clean affine law in DATA so
        // LIU can be recovered exactly.
        let e_src = 2.0e-6 * total_bytes as f64 + 800.0;
        let e_dst = 1.5e-6 * total_bytes as f64 + 600.0;
        MigrationRecord {
            kind,
            machine_set: MachineSet::M,
            phases,
            source_trace: PowerTrace::new("m01"),
            target_trace: PowerTrace::new("m02"),
            source_truth: PowerTrace::new("m01"),
            target_truth: PowerTrace::new("m02"),
            telemetry: TelemetryRecorder::new(),
            samples,
            rounds: vec![],
            total_bytes,
            downtime: SimDuration::from_secs(1),
            vm_ram_mib: 4096,
            source_energy: EnergyBreakdown {
                initiation_j: e_src * 0.1,
                transfer_j: e_src * 0.8,
                activation_j: e_src * 0.1,
                rollback_j: 0.0,
            },
            target_energy: EnergyBreakdown {
                initiation_j: e_dst * 0.1,
                transfer_j: e_dst * 0.8,
                activation_j: e_dst * 0.1,
                rollback_j: 0.0,
            },
            idle_power_w: 430.0,
            outcome: MigrationOutcome::Completed,
            fault_events: Vec::new(),
            attempt: 0,
            retry_backoff: SimDuration::ZERO,
        }
    }

    /// A single small record for basic structural tests.
    pub fn tiny_record() -> MigrationRecord {
        synthetic_record(3, MigrationKind::Live)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{synthetic_record, TRUE_COEFFS};
    use super::*;
    use crate::model::EnergyModel;

    fn dataset(kind: MigrationKind) -> Vec<MigrationRecord> {
        (0..14).map(|v| synthetic_record(v, kind)).collect()
    }

    #[test]
    fn split_is_deterministic_and_sized() {
        let s = ReadingSplit::default();
        let a = s.pick(0, 100);
        let b = s.pick(0, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        let c = s.pick(1, 100);
        assert_ne!(a, c, "different records draw different readings");
    }

    #[test]
    fn split_edge_fractions() {
        let all = ReadingSplit {
            train_fraction: 1.0,
            seed: 1,
        };
        assert_eq!(all.pick(0, 10).len(), 10);
        let none = ReadingSplit {
            train_fraction: 0.0,
            seed: 1,
        };
        assert_eq!(none.pick(0, 10).len(), 0);
    }

    #[test]
    fn wavm3_training_recovers_ground_truth() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let m = train_wavm3(&refs, MigrationKind::Live, &ReadingSplit::default()).unwrap();
        // Source transfer phase exercises every feature: coefficients must
        // match the generator.
        let t = m.source.transfer;
        assert!((t.alpha_cpu_host - TRUE_COEFFS[0]).abs() < 1e-6, "{t:?}");
        assert!((t.beta_cpu_vm - TRUE_COEFFS[1]).abs() < 1e-6);
        assert!((t.beta_bw - TRUE_COEFFS[2]).abs() < 1e-12);
        assert!((t.gamma_dr - TRUE_COEFFS[3]).abs() < 1e-6);
        assert!((t.c - TRUE_COEFFS[4]).abs() < 1e-4);
        // Target transfer: VM terms are structurally zero.
        assert_eq!(m.target.transfer.beta_cpu_vm, 0.0);
        assert_eq!(m.target.transfer.gamma_dr, 0.0);
        // Activation on the target carries the VM coefficient instead.
        assert!(
            (m.target.activation.beta_cpu_vm - TRUE_COEFFS[1]).abs() < 1e-6,
            "target activation {:?}",
            m.target.activation
        );
        assert_eq!(m.trained_idle_w, 430.0);
    }

    #[test]
    fn wavm3_nonlive_has_no_transfer_vm_terms() {
        let records = dataset(MigrationKind::NonLive);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let m = train_wavm3(&refs, MigrationKind::NonLive, &ReadingSplit::default()).unwrap();
        // Suspended VM: CPU(v)=DR=0 during transfer, like paper Table III.
        assert_eq!(m.source.transfer.beta_cpu_vm, 0.0);
        assert_eq!(m.source.transfer.gamma_dr, 0.0);
        assert!((m.source.transfer.alpha_cpu_host - TRUE_COEFFS[0]).abs() < 1e-6);
    }

    #[test]
    fn training_filters_by_kind() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        assert!(train_wavm3(&refs, MigrationKind::NonLive, &ReadingSplit::default()).is_none());
        assert!(train_liu(&refs, MigrationKind::NonLive).is_none());
    }

    #[test]
    fn huang_training_fits_cpu_projection() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let m = train_huang(&refs, MigrationKind::Live, &ReadingSplit::default()).unwrap();
        // HUANG projects a multi-factor truth onto CPU alone: the slope
        // must be positive and at least the true CPU slope (it absorbs the
        // correlated bandwidth/DR terms).
        assert!(m.source.alpha >= TRUE_COEFFS[0] * 0.9, "{:?}", m.source);
        assert!(m.source.c > 0.0);
    }

    #[test]
    fn liu_training_recovers_affine_data_law() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let m = train_liu(&refs, MigrationKind::Live).unwrap();
        assert!((m.source.alpha - 2.0e-6).abs() < 1e-10, "{:?}", m.source);
        assert!((m.source.c - 800.0).abs() < 1e-3);
        assert!((m.target.alpha - 1.5e-6).abs() < 1e-10);
        assert!((m.target.c - 600.0).abs() < 1e-3);
        // And predictions land on the observations.
        let e = m.predict_energy(HostRole::Source, &records[0]);
        assert!((e - records[0].source_energy.total_j()).abs() < 1e-3);
    }

    #[test]
    fn strunk_training_survives_constant_memory_column() {
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let m = train_strunk(&refs, MigrationKind::Live).unwrap();
        // The fit must at least be finite and produce sane predictions.
        let e = m.predict_energy(HostRole::Source, &records[3]);
        assert!(e.is_finite());
        let obs = records[3].source_energy.total_j();
        assert!(
            (e - obs).abs() / obs < 0.5,
            "STRUNK should be within 50% on its own training data: {e} vs {obs}"
        );
    }

    #[test]
    fn lm_matches_ols_on_linear_problem() {
        // The faithfulness check promised in the module docs: NLLS on a
        // linear-in-parameters law lands on the OLS solution.
        let records = dataset(MigrationKind::Live);
        let refs: Vec<&MigrationRecord> = records.iter().collect();
        let (xs, ys) = super::phase_rows(
            &refs,
            HostRole::Source,
            Some(MigrationPhase::Transfer),
            &ReadingSplit::default(),
            &FeatureMask::default(),
        );
        let ols = fit_linear_with_elimination(&xs, &ys).unwrap();
        let res = |p: &[f64]| -> Vec<f64> {
            xs.iter()
                .zip(&ys)
                .map(|(r, y)| r.iter().zip(p).map(|(a, b)| a * b).sum::<f64>() - y)
                .collect()
        };
        let lm = levenberg_marquardt(res, &[1.0, 1.0, 1e-7, 1.0, 400.0], &LmOptions::default());
        for (a, b) in ols.iter().zip(&lm.parameters) {
            assert!(
                (a - b).abs() < 1e-3 * a.abs().max(1.0),
                "{ols:?} vs {:?}",
                lm.parameters
            );
        }
    }

    #[test]
    fn empty_input_returns_none() {
        let refs: Vec<&MigrationRecord> = Vec::new();
        assert!(train_wavm3(&refs, MigrationKind::Live, &ReadingSplit::default()).is_none());
        assert!(train_huang(&refs, MigrationKind::Live, &ReadingSplit::default()).is_none());
        assert!(train_liu(&refs, MigrationKind::Live).is_none());
        assert!(train_strunk(&refs, MigrationKind::Live).is_none());
    }
}
