//! Feature extraction from migration records, per the paper's conventions.
//!
//! The regression features of §IV-B, with the paper's host-role masking
//! rules baked in:
//!
//! * target-side transfer rows have `DR(v,t) = 0` and `CPU(v,t) = 0`
//!   ("the VM is not yet on the target", §IV-C2);
//! * source-side activation rows have `CPU(v,t) = 0` (the VM left);
//! * target-side initiation rows have `CPU(v,t) = 0` (not yet involved).

use serde::{Deserialize, Serialize};
use wavm3_migration::FeatureSample;
use wavm3_power::MigrationPhase;

/// Which side of the migration a model instance describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostRole {
    /// The machine the VM leaves.
    Source,
    /// The machine the VM arrives on.
    Target,
}

impl HostRole {
    /// Both roles, in table order.
    pub const ALL: [HostRole; 2] = [HostRole::Source, HostRole::Target];

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            HostRole::Source => "source",
            HostRole::Target => "target",
        }
    }
}

/// The paper's feature vector at one 2 Hz instant, already masked for a
/// host role and converted to the paper's units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseVector {
    /// Phase this row belongs to.
    pub phase: MigrationPhase,
    /// `CPU(h,t)` in percent (0–100) for the chosen host.
    pub cpu_host_pct: f64,
    /// `CPU(v,t)` in percent of the VM's vCPUs (0–100), masked by role.
    pub cpu_vm_pct: f64,
    /// `DR(v,t)` in percent (0–100), masked by role.
    pub dirty_ratio_pct: f64,
    /// `BW(S,T,t)` in bytes/s (zero outside the transfer phase).
    pub bandwidth_bps: f64,
    /// The measured power on the chosen host, watts (regression target).
    pub power_w: f64,
}

impl PhaseVector {
    /// Extract the masked feature vector for `role` from a raw sample.
    pub fn extract(role: HostRole, s: &FeatureSample) -> PhaseVector {
        let cpu_host = match role {
            HostRole::Source => s.cpu_source,
            HostRole::Target => s.cpu_target,
        };
        let power_w = match role {
            HostRole::Source => s.power_source_w,
            HostRole::Target => s.power_target_w,
        };
        // Role masking per §IV-C.
        let (cpu_vm, dr) = match (role, s.phase) {
            (HostRole::Source, MigrationPhase::Initiation) => (s.cpu_vm, 0.0),
            (HostRole::Source, MigrationPhase::Transfer) => (s.cpu_vm, s.dirty_ratio),
            (HostRole::Source, MigrationPhase::Activation) => (0.0, 0.0),
            (HostRole::Target, MigrationPhase::Activation) => (s.cpu_vm, 0.0),
            (HostRole::Target, _) => (0.0, 0.0),
            (_, MigrationPhase::NormalExecution) => (s.cpu_vm, s.dirty_ratio),
        };
        PhaseVector {
            phase: s.phase,
            cpu_host_pct: cpu_host * 100.0,
            cpu_vm_pct: cpu_vm * 100.0,
            dirty_ratio_pct: dr * 100.0,
            bandwidth_bps: s.bandwidth_bps,
            power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_simkit::SimTime;

    fn sample(phase: MigrationPhase) -> FeatureSample {
        FeatureSample {
            t: SimTime::from_secs(1),
            phase,
            cpu_source: 0.8,
            cpu_target: 0.2,
            cpu_vm: 0.9,
            dirty_ratio: 0.4,
            bandwidth_bps: 1.0e8,
            power_source_w: 700.0,
            power_target_w: 460.0,
        }
    }

    #[test]
    fn source_transfer_keeps_vm_features() {
        let v = PhaseVector::extract(HostRole::Source, &sample(MigrationPhase::Transfer));
        assert_eq!(v.cpu_host_pct, 80.0);
        assert_eq!(v.cpu_vm_pct, 90.0);
        assert_eq!(v.dirty_ratio_pct, 40.0);
        assert_eq!(v.power_w, 700.0);
    }

    #[test]
    fn target_transfer_masks_vm_features() {
        let v = PhaseVector::extract(HostRole::Target, &sample(MigrationPhase::Transfer));
        assert_eq!(v.cpu_host_pct, 20.0);
        assert_eq!(v.cpu_vm_pct, 0.0);
        assert_eq!(v.dirty_ratio_pct, 0.0);
        assert_eq!(v.power_w, 460.0);
    }

    #[test]
    fn activation_swaps_vm_side() {
        let src = PhaseVector::extract(HostRole::Source, &sample(MigrationPhase::Activation));
        assert_eq!(src.cpu_vm_pct, 0.0, "VM left the source");
        let dst = PhaseVector::extract(HostRole::Target, &sample(MigrationPhase::Activation));
        assert_eq!(dst.cpu_vm_pct, 90.0, "VM runs on target");
    }

    #[test]
    fn initiation_masks_dr_everywhere() {
        let src = PhaseVector::extract(HostRole::Source, &sample(MigrationPhase::Initiation));
        assert_eq!(src.dirty_ratio_pct, 0.0);
        assert_eq!(src.cpu_vm_pct, 90.0);
        let dst = PhaseVector::extract(HostRole::Target, &sample(MigrationPhase::Initiation));
        assert_eq!(dst.cpu_vm_pct, 0.0);
    }

    #[test]
    fn labels_and_roles() {
        assert_eq!(HostRole::Source.label(), "source");
        assert_eq!(HostRole::Target.label(), "target");
        assert_eq!(HostRole::ALL.len(), 2);
    }
}
