//! # wavm3-models — energy models for VM migration
//!
//! The paper's contribution and its three comparators:
//!
//! | model | inputs | granularity |
//! |---|---|---|
//! | **WAVM3** (this paper, Eqs. 5–7) | host CPU, VM CPU, dirty ratio, bandwidth — per phase × host role | instantaneous power |
//! | **HUANG** \[3\] (Eq. 8) | CPU utilisation only | instantaneous power |
//! | **LIU** \[4\] (Eqs. 9–10) | bytes moved | per-migration energy |
//! | **STRUNK** \[17\] (Eq. 11) | VM memory size + bandwidth | per-migration energy |
//!
//! plus the full training pipeline of §VI-F (reading-level 20 % training
//! split, non-linear least squares, structural-zero column elimination) and
//! the cross-machine-set idle-bias correction of Table V (C1 → C2).
//!
//! ## Units
//!
//! Model features follow the paper's conventions so coefficient magnitudes
//! stay comparable to Tables III/IV/VI: CPU utilisations and dirtying
//! ratios in **percent** (0–100), bandwidth in **bytes/second**, VM memory
//! in **MiB**, power in watts, energy in joules.

//! ## Example
//!
//! ```
//! use wavm3_models::{paper, EnergyModel, PowerModel, HostRole};
//! use wavm3_migration::FeatureSample;
//! use wavm3_power::MigrationPhase;
//! use wavm3_simkit::SimTime;
//!
//! // Price one transfer-phase instant with the paper's Table IV model.
//! let model = paper::wavm3_live();
//! let sample = FeatureSample {
//!     t: SimTime::from_secs(30),
//!     phase: MigrationPhase::Transfer,
//!     cpu_source: 0.4,
//!     cpu_target: 0.1,
//!     cpu_vm: 1.0,
//!     dirty_ratio: 0.3,
//!     bandwidth_bps: 1.1e8,
//!     power_source_w: 0.0,
//!     power_target_w: 0.0,
//! };
//! let p = model.predict_power(HostRole::Source, &sample);
//! assert!((500.0..900.0).contains(&p), "plausible watts: {p}");
//! ```

pub mod evaluation;
pub mod features;
pub mod huang;
pub mod io;
pub mod liu;
pub mod model;
pub mod paper;
pub mod strunk;
pub mod training;
pub mod wavm3;

pub use evaluation::{
    evaluate_models, phase_power_residuals, stream_energy_residuals, stream_model_diagnostics,
    stream_power_residuals, ComparisonRow,
};
pub use features::{HostRole, PhaseVector};
pub use huang::{HuangModel, HuangVmModel};
pub use liu::LiuModel;
pub use model::{EnergyModel, PowerModel};
pub use strunk::StrunkModel;
pub use training::{
    train_huang, train_huang_vm, train_liu, train_strunk, train_wavm3, train_wavm3_masked,
    FeatureMask, ReadingSplit,
};
pub use wavm3::{HostCoeffs, PhaseCoeffs, Wavm3Model};
