//! Model persistence: save trained coefficients to JSON and load them
//! back — so a consolidation manager can ship with coefficients fitted
//! once per hardware generation, exactly how the paper envisions the
//! model being deployed ("could also be easily integrated in Cloud
//! simulators", §VIII).

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io;
use std::path::Path;

/// Serialise any model (or bundle of models) to pretty JSON.
pub fn to_json<M: Serialize>(model: &M) -> serde_json::Result<String> {
    serde_json::to_string_pretty(model)
}

/// Deserialise a model from JSON.
pub fn from_json<M: DeserializeOwned>(json: &str) -> serde_json::Result<M> {
    serde_json::from_str(json)
}

/// Save a model to a JSON file.
pub fn save<M: Serialize>(model: &M, path: impl AsRef<Path>) -> io::Result<()> {
    let json = to_json(model).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Load a model from a JSON file.
pub fn load<M: DeserializeOwned>(path: impl AsRef<Path>) -> io::Result<M> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::HostRole;
    use crate::model::EnergyModel;
    use crate::paper;
    use crate::training::tests_support::tiny_record;
    use crate::{HuangModel, LiuModel, StrunkModel, Wavm3Model};

    #[test]
    fn wavm3_round_trips_through_json() {
        let model = paper::wavm3_live();
        let json = to_json(&model).unwrap();
        assert!(json.contains("alpha_cpu_host"));
        let back: Wavm3Model = from_json(&json).unwrap();
        assert_eq!(model, back);
        // Behavioural equality too.
        let r = tiny_record();
        assert_eq!(
            model.predict_energy(HostRole::Source, &r),
            back.predict_energy(HostRole::Source, &r)
        );
    }

    #[test]
    fn baselines_round_trip() {
        let h = paper::huang();
        let back: HuangModel = from_json(&to_json(&h).unwrap()).unwrap();
        assert_eq!(h, back);
        let l = paper::liu();
        let back: LiuModel = from_json(&to_json(&l).unwrap()).unwrap();
        assert_eq!(l, back);
        let s = paper::strunk();
        let back: StrunkModel = from_json(&to_json(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn file_save_and_load() {
        let dir = std::env::temp_dir().join("wavm3-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = paper::wavm3_non_live();
        save(&model, &path).unwrap();
        let back: Wavm3Model = load(&path).unwrap();
        assert_eq!(model, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json::<Wavm3Model>("{not json").is_err());
        assert!(from_json::<Wavm3Model>("{}").is_err());
        assert!(load::<Wavm3Model>("/nonexistent/path/model.json").is_err());
    }
}
