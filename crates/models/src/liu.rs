//! LIU — the data-volume baseline \[4\] (paper Eqs. 9–10).
//!
//! `E_migr = α · DATA + C` where `DATA` is the number of bytes the
//! migration moved. As in the paper's comparison, `DATA` is taken from the
//! network instrumentation (our simulator's exact byte counter) rather than
//! from Liu's analytic round model. The model is energy-granular: it knows
//! nothing about when within the migration the energy is drawn, and nothing
//! about the hosts' CPU load — its weakness in every CPULOAD scenario.

use crate::features::HostRole;
use crate::model::EnergyModel;
use serde::{Deserialize, Serialize};
use wavm3_migration::MigrationRecord;

/// One host role's energy law.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LiuCoeffs {
    /// α — joules per byte moved.
    pub alpha: f64,
    /// C — constant energy per migration, joules.
    pub c: f64,
}

/// A trained LIU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiuModel {
    /// Source-host law.
    pub source: LiuCoeffs,
    /// Target-host law.
    pub target: LiuCoeffs,
}

impl LiuModel {
    /// The law for a role.
    pub fn coeffs(&self, role: HostRole) -> &LiuCoeffs {
        match role {
            HostRole::Source => &self.source,
            HostRole::Target => &self.target,
        }
    }

    /// The DATA feature as the paper uses it: bytes observed on the wire
    /// ("we use instead the amount of data transferred measured with our
    /// network instrumentation", §VII-b).
    pub fn data_bytes(record: &MigrationRecord) -> f64 {
        record.total_bytes as f64
    }

    /// Liu's original analytic DATA estimate (Eq. 10): the VM image plus
    /// one dirty-set retransmission per pre-copy round,
    ///
    /// ```text
    /// DATA = Σ_r  MEM(v) · DR(v, r) · round_duration_factor
    /// ```
    ///
    /// reconstructed here from the record's round log — round `r+1` resends
    /// exactly the pages round `r` left dirty, so the analytic series is
    /// `MEM + Σ_r dirty_at_end(r)·PAGE`. Useful to check how far the
    /// closed form drifts from the wire counter.
    pub fn data_analytic(record: &MigrationRecord) -> f64 {
        const PAGE: f64 = 4096.0;
        let image = record.vm_ram_mib as f64 * 1024.0 * 1024.0;
        let resends: f64 = record
            .rounds
            .iter()
            .filter(|r| !r.stop_and_copy)
            .map(|r| r.dirty_at_end_pages as f64 * PAGE)
            .sum();
        image + resends
    }
}

impl EnergyModel for LiuModel {
    fn name(&self) -> &'static str {
        "LIU"
    }

    fn predict_energy(&self, role: HostRole, record: &MigrationRecord) -> f64 {
        let k = self.coeffs(role);
        k.alpha * Self::data_bytes(record) + k.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::tests_support::tiny_record;

    #[test]
    fn analytic_data_counts_image_plus_resends() {
        use wavm3_migration::RoundStats;
        use wavm3_simkit::SimDuration;
        let mut r = tiny_record();
        r.vm_ram_mib = 4096;
        r.rounds = vec![
            RoundStats {
                round: 0,
                bytes_sent: 4096 * 1024 * 1024,
                duration: SimDuration::from_secs(36),
                dirty_at_end_pages: 100_000,
                stop_and_copy: false,
            },
            RoundStats {
                round: 1,
                bytes_sent: 100_000 * 4096,
                duration: SimDuration::from_secs(4),
                dirty_at_end_pages: 0,
                stop_and_copy: true,
            },
        ];
        let expect = 4096.0 * 1024.0 * 1024.0 + 100_000.0 * 4096.0;
        assert!((LiuModel::data_analytic(&r) - expect).abs() < 1.0);
    }

    #[test]
    fn energy_is_affine_in_bytes() {
        let m = LiuModel {
            source: LiuCoeffs {
                alpha: 1e-5,
                c: 500.0,
            },
            target: LiuCoeffs {
                alpha: 2e-5,
                c: 300.0,
            },
        };
        let mut r = tiny_record();
        r.total_bytes = 1_000_000_000;
        assert!((m.predict_energy(HostRole::Source, &r) - 10_500.0).abs() < 1e-9);
        assert!((m.predict_energy(HostRole::Target, &r) - 20_300.0).abs() < 1e-9);
        // Doubling the data doubles the variable part.
        r.total_bytes *= 2;
        assert!((m.predict_energy(HostRole::Source, &r) - 20_500.0).abs() < 1e-9);
    }
}
