//! HUANG — the CPU-only baseline \[3\] (paper Eq. 8).
//!
//! `P(t) = α · CPU + C`, one pair of coefficients per host role, no phase
//! structure. Following the paper's comparative discussion (§VII-B: Huang
//! "considers the CPU of source and target hosts"), the CPU feature is the
//! *host* utilisation — the linear host-power model of Chen et al. \[20\]
//! that Eq. 8 builds on. This makes HUANG strong whenever CPU dominates
//! (non-live migration) and weak when bandwidth or memory dirtying matter
//! (live migration) — exactly the pattern of Table VII.

use crate::features::{HostRole, PhaseVector};
use crate::model::{integrate_power, EnergyModel, PowerModel};
use serde::{Deserialize, Serialize};
use wavm3_migration::{FeatureSample, MigrationRecord};

/// One host role's linear CPU power law.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HuangCoeffs {
    /// α — watts per percent of host CPU.
    pub alpha: f64,
    /// C — hardware constant, watts.
    pub c: f64,
}

/// A trained HUANG model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HuangModel {
    /// Source-host law.
    pub source: HuangCoeffs,
    /// Target-host law.
    pub target: HuangCoeffs,
}

impl HuangModel {
    /// The law for a role.
    pub fn coeffs(&self, role: HostRole) -> &HuangCoeffs {
        match role {
            HostRole::Source => &self.source,
            HostRole::Target => &self.target,
        }
    }
}

impl EnergyModel for HuangModel {
    fn name(&self) -> &'static str {
        "HUANG"
    }

    fn predict_energy(&self, role: HostRole, record: &MigrationRecord) -> f64 {
        integrate_power(self, role, record)
    }
}

impl PowerModel for HuangModel {
    fn predict_power(&self, role: HostRole, sample: &FeatureSample) -> f64 {
        let v = PhaseVector::extract(role, sample);
        let k = self.coeffs(role);
        k.alpha * v.cpu_host_pct + k.c
    }
}

/// The *literal* reading of Eq. 8: `P = α · CPU(v,t) + C` with the
/// **migrating VM's** CPU — the other defensible interpretation of the
/// paper's ambiguous prose (§VII-a states the formula over `CPU(v,t)`,
/// §VII-B discusses Huang as considering "the CPU of source and target
/// hosts"). Kept as a comparison point: on the CPULOAD sweeps the VM's CPU
/// is pinned while host load varies, so this variant cannot track the
/// dominant energy driver and scores far worse than [`HuangModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HuangVmModel {
    /// Source-host law.
    pub source: HuangCoeffs,
    /// Target-host law.
    pub target: HuangCoeffs,
}

impl HuangVmModel {
    /// The law for a role.
    pub fn coeffs(&self, role: HostRole) -> &HuangCoeffs {
        match role {
            HostRole::Source => &self.source,
            HostRole::Target => &self.target,
        }
    }
}

impl EnergyModel for HuangVmModel {
    fn name(&self) -> &'static str {
        "HUANG-VM"
    }

    fn predict_energy(&self, role: HostRole, record: &MigrationRecord) -> f64 {
        integrate_power(self, role, record)
    }
}

impl PowerModel for HuangVmModel {
    fn predict_power(&self, role: HostRole, sample: &FeatureSample) -> f64 {
        let v = PhaseVector::extract(role, sample);
        let k = self.coeffs(role);
        k.alpha * v.cpu_vm_pct + k.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_power::MigrationPhase;
    use wavm3_simkit::SimTime;

    #[test]
    fn linear_in_host_cpu_only() {
        let m = HuangModel {
            source: HuangCoeffs {
                alpha: 2.27,
                c: 671.92,
            },
            target: HuangCoeffs {
                alpha: 2.56,
                c: 645.77,
            },
        };
        let s = FeatureSample {
            t: SimTime::from_secs(1),
            phase: MigrationPhase::Transfer,
            cpu_source: 0.5,
            cpu_target: 0.1,
            cpu_vm: 1.0,
            dirty_ratio: 0.9,
            bandwidth_bps: 1.2e8,
            power_source_w: 0.0,
            power_target_w: 0.0,
        };
        // Only host CPU matters: DR/bandwidth changes are invisible.
        let p1 = m.predict_power(HostRole::Source, &s);
        assert!((p1 - (2.27 * 50.0 + 671.92)).abs() < 1e-9);
        let mut s2 = s;
        s2.dirty_ratio = 0.0;
        s2.bandwidth_bps = 0.0;
        assert_eq!(m.predict_power(HostRole::Source, &s2), p1);
        // Roles use their own coefficients.
        let pt = m.predict_power(HostRole::Target, &s);
        assert!((pt - (2.56 * 10.0 + 645.77)).abs() < 1e-9);
    }

    #[test]
    fn vm_variant_tracks_guest_not_host() {
        let m = HuangVmModel {
            source: HuangCoeffs {
                alpha: 2.0,
                c: 500.0,
            },
            target: HuangCoeffs {
                alpha: 2.0,
                c: 500.0,
            },
        };
        let mut s = FeatureSample {
            t: SimTime::from_secs(1),
            phase: MigrationPhase::Transfer,
            cpu_source: 0.2,
            cpu_target: 0.1,
            cpu_vm: 1.0,
            dirty_ratio: 0.0,
            bandwidth_bps: 0.0,
            power_source_w: 0.0,
            power_target_w: 0.0,
        };
        let p1 = m.predict_power(HostRole::Source, &s);
        assert!((p1 - (2.0 * 100.0 + 500.0)).abs() < 1e-9);
        // Host CPU changes are invisible...
        s.cpu_source = 0.9;
        assert_eq!(m.predict_power(HostRole::Source, &s), p1);
        // ...but guest CPU changes are not.
        s.cpu_vm = 0.5;
        assert!((m.predict_power(HostRole::Source, &s) - (100.0 + 500.0)).abs() < 1e-9);
        // And the target role masks the guest during transfer.
        assert!((m.predict_power(HostRole::Target, &s) - 500.0).abs() < 1e-9);
    }
}
