//! Property-based tests of the model layer: masking rules, bias-swap
//! algebra, and prediction invariances that must hold for *any* input.

use proptest::prelude::*;
use wavm3_migration::FeatureSample;
use wavm3_models::{paper, HostRole, PowerModel};
use wavm3_power::MigrationPhase;
use wavm3_simkit::SimTime;

fn arb_sample() -> impl Strategy<Value = FeatureSample> {
    let phase = prop_oneof![
        Just(MigrationPhase::Initiation),
        Just(MigrationPhase::Transfer),
        Just(MigrationPhase::Activation),
    ];
    (
        phase,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.25e8,
    )
        .prop_map(|(phase, cs, ct, cv, dr, bw)| FeatureSample {
            t: SimTime::from_secs(20),
            phase,
            cpu_source: cs,
            cpu_target: ct,
            cpu_vm: cv,
            dirty_ratio: dr,
            bandwidth_bps: if phase == MigrationPhase::Transfer {
                bw
            } else {
                0.0
            },
            power_source_w: 0.0,
            power_target_w: 0.0,
        })
}

proptest! {
    /// Paper §IV-C2: the target-side transfer law must be blind to the
    /// guest's CPU and dirtying ratio.
    #[test]
    fn target_transfer_blind_to_guest(mut s in arb_sample()) {
        s.phase = MigrationPhase::Transfer;
        let m = paper::wavm3_live();
        let p0 = m.predict_power(HostRole::Target, &s);
        s.cpu_vm = (s.cpu_vm + 0.37) % 1.0;
        s.dirty_ratio = (s.dirty_ratio + 0.53) % 1.0;
        let p1 = m.predict_power(HostRole::Target, &s);
        prop_assert!((p0 - p1).abs() < 1e-9);
    }

    /// Source-side activation is blind to the guest (it left).
    #[test]
    fn source_activation_blind_to_guest(mut s in arb_sample()) {
        s.phase = MigrationPhase::Activation;
        let m = paper::wavm3_live();
        let p0 = m.predict_power(HostRole::Source, &s);
        s.cpu_vm = (s.cpu_vm + 0.41) % 1.0;
        let p1 = m.predict_power(HostRole::Source, &s);
        prop_assert!((p0 - p1).abs() < 1e-9);
    }

    /// Monotonicity: more host CPU never predicts less power (all paper
    /// α coefficients are positive).
    #[test]
    fn wavm3_monotone_in_host_cpu(s in arb_sample(), bump in 0.0f64..0.5) {
        let m = paper::wavm3_live();
        for role in HostRole::ALL {
            let mut hi = s;
            match role {
                HostRole::Source => hi.cpu_source = (s.cpu_source + bump).min(1.0),
                HostRole::Target => hi.cpu_target = (s.cpu_target + bump).min(1.0),
            }
            prop_assert!(
                m.predict_power(role, &hi) + 1e-9 >= m.predict_power(role, &s),
                "{role:?} non-monotone"
            );
        }
    }

    /// The idle-bias swap shifts every power prediction by exactly the
    /// idle delta, for every phase, role and feature combination.
    #[test]
    fn bias_swap_is_a_uniform_power_shift(s in arb_sample(), delta in -300.0f64..300.0) {
        let m = paper::wavm3_live();
        let shifted = m.with_idle_bias(m.trained_idle_w + delta);
        for role in HostRole::ALL {
            let a = m.predict_power(role, &s);
            let b = shifted.predict_power(role, &s);
            prop_assert!((b - a - delta).abs() < 1e-9, "{role:?}: {a} -> {b}, delta {delta}");
        }
    }

    /// HUANG's power depends only on the chosen host's CPU: permuting all
    /// other features never changes its prediction.
    #[test]
    fn huang_only_sees_host_cpu(mut s in arb_sample()) {
        let m = paper::huang();
        let p0 = m.predict_power(HostRole::Source, &s);
        s.cpu_vm = (s.cpu_vm + 0.19) % 1.0;
        s.dirty_ratio = (s.dirty_ratio + 0.77) % 1.0;
        if s.phase == MigrationPhase::Transfer {
            s.bandwidth_bps = (s.bandwidth_bps + 3.0e7) % 1.25e8;
        }
        s.cpu_target = (s.cpu_target + 0.31) % 1.0;
        let p1 = m.predict_power(HostRole::Source, &s);
        prop_assert!((p0 - p1).abs() < 1e-9);
    }

    /// JSON round trips preserve model behaviour for arbitrary samples.
    #[test]
    fn serialisation_preserves_predictions(s in arb_sample()) {
        let m = paper::wavm3_live();
        let json = wavm3_models::io::to_json(&m).unwrap();
        let back: wavm3_models::Wavm3Model = wavm3_models::io::from_json(&json).unwrap();
        for role in HostRole::ALL {
            prop_assert_eq!(
                m.predict_power(role, &s).to_bits(),
                back.predict_power(role, &s).to_bits()
            );
        }
    }
}
