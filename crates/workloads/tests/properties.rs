//! Property-based tests of the workload processes.

use proptest::prelude::*;
use wavm3_simkit::{RngFactory, SimDuration, SimTime};
use wavm3_workloads::synthetic::{generate_utilisation, TraceSpec};
use wavm3_workloads::{
    MatMulWorkload, MixedWorkload, NetworkWorkload, PageDirtierWorkload, Workload,
};

proptest! {
    /// Every workload's outputs stay in their documented domains for any
    /// configuration and any query instant.
    #[test]
    fn workload_outputs_stay_in_domain(
        cores in 0.0f64..16.0,
        ratio in -0.5f64..1.5,
        share in -0.5f64..1.5,
        t_ms in 0u64..600_000,
    ) {
        let t = SimTime::from_millis(t_ms);
        let ws: Vec<Box<dyn Workload>> = vec![
            Box::new(MatMulWorkload::with_cores(cores)),
            Box::new(PageDirtierWorkload::with_ratio(ratio)),
            Box::new(NetworkWorkload::with_line_share(share)),
        ];
        for w in &ws {
            prop_assert!(w.cpu_demand(t) >= 0.0, "{}", w.name());
            prop_assert!(w.page_write_rate(t) >= 0.0);
            let wsf = w.working_set_fraction();
            prop_assert!((0.0..=1.0).contains(&wsf));
            let ls = w.line_share(t);
            prop_assert!((0.0..=1.0).contains(&ls));
        }
    }

    /// Mixing workloads adds demands and never exceeds unit working set /
    /// line share.
    #[test]
    fn mixed_workload_is_additive_and_capped(
        a in 0.0f64..8.0,
        b in 0.0f64..1.0,
        t_ms in 0u64..100_000,
    ) {
        let t = SimTime::from_millis(t_ms);
        let cpu = MatMulWorkload::with_cores(a);
        let mem = PageDirtierWorkload::with_ratio(b);
        let expect = cpu.cpu_demand(t) + mem.cpu_demand(t);
        let mix = MixedWorkload::new("m", vec![Box::new(cpu), Box::new(mem)]);
        prop_assert!((mix.cpu_demand(t) - expect).abs() < 1e-9);
        prop_assert!(mix.working_set_fraction() <= 1.0);
        prop_assert!(mix.line_share(t) <= 1.0);
    }

    /// Synthetic traces respect their domain for any spec.
    #[test]
    fn synthetic_traces_stay_in_unit_interval(
        mean in 0.0f64..1.0,
        std_dev in 0.0f64..0.5,
        tau in 1.0f64..1_000.0,
        swing in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let spec = TraceSpec {
            mean,
            std_dev,
            tau_s: tau,
            diurnal_swing: swing,
            sample_period: SimDuration::from_secs(30),
        };
        let mut rng = RngFactory::new(seed).stream("prop");
        let t = generate_utilisation(&spec, SimDuration::from_secs(3_600), &mut rng);
        prop_assert!(!t.is_empty());
        let (lo, hi) = t.min_max().unwrap();
        prop_assert!(lo >= 0.0 && hi <= 1.0, "{lo}..{hi}");
    }

    /// The pagedirtier's closed-form dirty estimate is monotone in time and
    /// bounded by both its working set and the write budget.
    #[test]
    fn dirty_estimate_bounds(
        ratio in 0.0f64..=1.0,
        secs in 0.0f64..300.0,
        total in 1u64..2_000_000,
    ) {
        let w = PageDirtierWorkload::with_ratio(ratio);
        let d = w.expected_dirty_pages(total, secs);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= ratio * total as f64 + 1e-6);
        prop_assert!(d <= PageDirtierWorkload::DEFAULT_WRITE_RATE * secs + 1e-6);
        let d2 = w.expected_dirty_pages(total, secs + 1.0);
        prop_assert!(d2 + 1e-9 >= d);
    }
}
