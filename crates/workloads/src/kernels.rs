//! Real, executable versions of the paper's two load generators.
//!
//! These run actual work on the local machine — they are what the examples
//! and Criterion benches execute, standing in for the OpenMP `matrixmult`
//! and ANSI-C `pagedirtier` binaries of the paper. The simulator never
//! calls them (it uses the closed-form processes in [`crate::matmul`] and
//! [`crate::pagedirtier`]); they exist to demonstrate the workloads and to
//! keep the reproduction honest about what "CPU-intensive" and
//! "memory-intensive" mean.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// A square row-major `f64` matrix for the matmul kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SquareMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Deterministic pseudo-random fill (values in `[0, 1)`).
    pub fn random(n: usize, seed: u64) -> Self {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SquareMatrix {
            n,
            data: (0..n * n).map(|_| rng.gen::<f64>()).collect(),
        }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Naive `O(n³)` triple loop — the correctness reference.
    pub fn multiply_naive(&self, rhs: &SquareMatrix) -> SquareMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                for j in 0..n {
                    out.data[i * n + j] += a * rhs.data[k * n + j];
                }
            }
        }
        out
    }

    /// Rayon-parallel multiplication: rows of the result are independent,
    /// so `par_chunks_mut` splits them across the thread pool exactly like
    /// the paper's OpenMP `parallel for` over rows.
    pub fn multiply_parallel(&self, rhs: &SquareMatrix) -> SquareMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        out.data
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, orow)| {
                for k in 0..n {
                    let a = self.data[i * n + k];
                    if a == 0.0 {
                        continue;
                    }
                    let rrow = &rhs.data[k * n..(k + 1) * n];
                    for (o, &r) in orow.iter_mut().zip(rrow) {
                        *o += a * r;
                    }
                }
            });
        out
    }

    /// Frobenius norm (handy as a cheap whole-matrix checksum in benches).
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// A real page dirtier: owns a buffer and rewrites 4 KiB pages in random
/// order, mirroring the paper's ANSI-C program.
pub struct PageDirtier {
    buffer: Vec<u8>,
    /// Page visit order (a random permutation, regenerated when exhausted).
    order: Vec<usize>,
    cursor: usize,
    page_size: usize,
    rng: ChaCha8Rng,
    writes_done: u64,
}

impl PageDirtier {
    /// A dirtier over `pages` pages of `page_size` bytes.
    pub fn new(pages: usize, page_size: usize, seed: u64) -> Self {
        assert!(pages > 0 && page_size > 0, "need a non-empty buffer");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..pages).collect();
        order.shuffle(&mut rng);
        PageDirtier {
            buffer: vec![0u8; pages * page_size],
            order,
            cursor: 0,
            page_size,
            rng,
            writes_done: 0,
        }
    }

    /// Number of pages in the buffer.
    pub fn pages(&self) -> usize {
        self.order.len()
    }

    /// Total page writes performed.
    pub fn writes_done(&self) -> u64 {
        self.writes_done
    }

    /// Write one page (every cache line of it), returning its index.
    /// Visits pages in random permutation order, reshuffling per epoch, so
    /// all pages are touched before any repeats — the steady state is a
    /// fully dirty working set, as in the paper.
    pub fn dirty_one(&mut self) -> usize {
        if self.cursor == self.order.len() {
            self.order.shuffle(&mut self.rng);
            self.cursor = 0;
        }
        let page = self.order[self.cursor];
        self.cursor += 1;
        let start = page * self.page_size;
        let value = (self.writes_done & 0xFF) as u8;
        // Touch one byte per 64-byte cache line: enough to dirty the page
        // while keeping the bench from being a pure memset.
        let mut off = 0;
        while off < self.page_size {
            self.buffer[start + off] = value;
            off += 64;
        }
        self.writes_done += 1;
        page
    }

    /// Perform `n` page writes, returning the number of *distinct* pages
    /// touched by this call.
    pub fn dirty_burst(&mut self, n: usize) -> usize {
        let mut seen = vec![false; self.pages()];
        let mut distinct = 0;
        for _ in 0..n {
            let p = self.dirty_one();
            if !seen[p] {
                seen[p] = true;
                distinct += 1;
            }
        }
        distinct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_naive() {
        let a = SquareMatrix::random(64, 1);
        let b = SquareMatrix::random(64, 2);
        let naive = a.multiply_naive(&b);
        let par = a.multiply_parallel(&b);
        for i in 0..64 {
            for j in 0..64 {
                assert!(
                    (naive.get(i, j) - par.get(i, j)).abs() < 1e-10,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn identity_multiplication() {
        let mut id = SquareMatrix::zeros(16);
        for i in 0..16 {
            id.data[i * 16 + i] = 1.0;
        }
        let a = SquareMatrix::random(16, 3);
        assert_eq!(a.multiply_parallel(&id), a);
    }

    #[test]
    fn frobenius_of_zeros_is_zero() {
        assert_eq!(SquareMatrix::zeros(8).frobenius(), 0.0);
        assert!(SquareMatrix::random(8, 4).frobenius() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_multiply_panics() {
        let a = SquareMatrix::zeros(4);
        let b = SquareMatrix::zeros(5);
        a.multiply_parallel(&b);
    }

    #[test]
    fn dirtier_visits_every_page_before_repeating() {
        let mut d = PageDirtier::new(100, 256, 7);
        let distinct = d.dirty_burst(100);
        assert_eq!(distinct, 100, "one epoch touches every page exactly once");
        assert_eq!(d.writes_done(), 100);
    }

    #[test]
    fn dirtier_burst_counts_distinct_within_call() {
        let mut d = PageDirtier::new(50, 128, 8);
        let distinct = d.dirty_burst(125); // 2.5 epochs
        assert_eq!(distinct, 50, "only 50 distinct pages exist");
        assert_eq!(d.writes_done(), 125);
    }

    #[test]
    fn dirtier_actually_writes_memory() {
        let mut d = PageDirtier::new(4, 4096, 9);
        // Writes stamp values 0,1,2,3 — at least the later ones are visible.
        d.dirty_burst(4);
        assert!(d.buffer.iter().any(|&b| b != 0), "buffer must be modified");
    }

    #[test]
    #[should_panic(expected = "non-empty buffer")]
    fn empty_dirtier_panics() {
        PageDirtier::new(0, 4096, 1);
    }
}
