//! The `matrixmult` CPU-intensive workload (paper §V-A1).
//!
//! The paper chose matrix multiplication because "it is used by many
//! scientific workloads running on data centres, and it can be easily
//! parallelised allowing us to load all virtual CPUs … while it introduces
//! only small communication and synchronisation overheads". The simulation
//! process below reflects exactly that: near-constant full-tilt CPU demand
//! on every assigned vCPU with a small deterministic ripple (the
//! synchronisation overhead), and no memory dirtying beyond a tiny working
//! set (the matrices themselves).

use crate::workload::{DemandProfile, Workload, WorkloadProfile};
use wavm3_simkit::SimTime;

/// Simulated matrixmult: pegs `target_cores` with a small ripple.
#[derive(Debug, Clone)]
pub struct MatMulWorkload {
    target_cores: f64,
    /// Peak-to-peak ripple as a fraction of `target_cores` (sync overhead).
    ripple: f64,
    /// Ripple period in seconds.
    ripple_period_s: f64,
    /// Phase offset so co-located instances do not beat in lockstep.
    phase: f64,
    /// The matrices occupy a small, constantly rewritten working set.
    working_set_fraction: f64,
    /// Page writes per second from result-matrix stores.
    write_rate: f64,
}

impl MatMulWorkload {
    /// A matmul instance loading `vcpus` virtual CPUs at full tilt.
    pub fn full(vcpus: u32) -> Self {
        MatMulWorkload {
            target_cores: vcpus as f64,
            ripple: 0.03,
            ripple_period_s: 7.0,
            phase: 0.0,
            // A 1500×1500 f64 triple-matrix footprint inside a 4 GB guest is
            // well under 2 % of pages.
            working_set_fraction: 0.015,
            write_rate: 400.0,
        }
    }

    /// A matmul instance using only `cores` of the VM's CPUs (fractional
    /// load levels of the CPULOAD sweeps).
    pub fn with_cores(cores: f64) -> Self {
        let mut w = MatMulWorkload::full(0);
        w.target_cores = cores.max(0.0);
        w
    }

    /// Shift the ripple phase (used when several instances share a host).
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Nominal demand in cores.
    pub fn target_cores(&self) -> f64 {
        self.target_cores
    }
}

impl Workload for MatMulWorkload {
    fn name(&self) -> &str {
        "matrixmult"
    }

    fn cpu_demand(&self, t: SimTime) -> f64 {
        if self.target_cores <= 0.0 {
            return 0.0;
        }
        let ripple = 1.0
            + 0.5
                * self.ripple
                * (std::f64::consts::TAU * (t.as_secs_f64() / self.ripple_period_s + self.phase))
                    .sin();
        (self.target_cores * ripple).max(0.0)
    }

    fn page_write_rate(&self, t: SimTime) -> f64 {
        if self.target_cores <= 0.0 || self.cpu_demand(t) <= 0.0 {
            0.0
        } else {
            self.write_rate
        }
    }

    fn working_set_fraction(&self) -> f64 {
        if self.target_cores <= 0.0 {
            0.0
        } else {
            self.working_set_fraction
        }
    }

    fn demand_profile(&self) -> WorkloadProfile {
        if self.target_cores <= 0.0 {
            return WorkloadProfile::constant(0.0, 0.0, 0.0);
        }
        // The ripple factor stays within 1 ± ripple/2 < 2, so demand never
        // reaches zero and the write rate is constant whenever target > 0.
        WorkloadProfile {
            cpu: DemandProfile::Ripple {
                target: self.target_cores,
                ripple: self.ripple,
                period_s: self.ripple_period_s,
                phase: self.phase,
            },
            page_write_rate: Some(self.write_rate),
            line_share: Some(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_load_pegs_all_vcpus() {
        let w = MatMulWorkload::full(4);
        let t = SimTime::from_secs(3);
        let d = w.cpu_demand(t);
        assert!(
            (d - 4.0).abs() < 4.0 * 0.02,
            "demand {d} should be ~4 cores"
        );
    }

    #[test]
    fn ripple_is_bounded_and_time_varying() {
        let w = MatMulWorkload::full(4);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in 0..140 {
            let d = w.cpu_demand(SimTime::from_millis(s * 100));
            lo = lo.min(d);
            hi = hi.max(d);
        }
        assert!(hi > lo, "demand must ripple");
        assert!(
            hi <= 4.0 * 1.016 && lo >= 4.0 * 0.984,
            "ripple within ±1.6%"
        );
    }

    #[test]
    fn fractional_load_levels() {
        let w = MatMulWorkload::with_cores(2.5);
        let d = w.cpu_demand(SimTime::from_secs(1));
        assert!((d - 2.5).abs() < 0.1);
    }

    #[test]
    fn zero_cores_is_fully_idle() {
        let w = MatMulWorkload::with_cores(0.0);
        assert_eq!(w.cpu_demand(SimTime::from_secs(9)), 0.0);
        assert_eq!(w.page_write_rate(SimTime::ZERO), 0.0);
        assert_eq!(w.working_set_fraction(), 0.0);
    }

    #[test]
    fn small_working_set() {
        let w = MatMulWorkload::full(4);
        assert!(
            w.working_set_fraction() < 0.05,
            "CPU workload barely dirties memory"
        );
        assert!(w.page_write_rate(SimTime::ZERO) > 0.0);
    }

    #[test]
    fn phases_decorrelate_instances() {
        let a = MatMulWorkload::full(4);
        let b = MatMulWorkload::full(4).with_phase(0.5);
        let t = SimTime::from_secs(2);
        assert_ne!(a.cpu_demand(t), b.cpu_demand(t));
    }

    #[test]
    fn profile_matches_trait_bitwise() {
        for w in [
            MatMulWorkload::full(4).with_phase(0.3),
            MatMulWorkload::with_cores(2.5),
            MatMulWorkload::with_cores(0.0),
        ] {
            let p = w.demand_profile();
            for s in 0..200 {
                let t = SimTime::from_millis(s * 100);
                assert_eq!(p.cpu.eval(t), Some(w.cpu_demand(t)), "t={t:?}");
                assert_eq!(p.page_write_rate, Some(w.page_write_rate(t)));
                assert_eq!(p.line_share, Some(w.line_share(t)));
            }
        }
    }

    #[test]
    fn demand_is_deterministic() {
        let w = MatMulWorkload::full(4);
        let t = SimTime::from_millis(12_345);
        assert_eq!(w.cpu_demand(t), w.cpu_demand(t));
    }
}
