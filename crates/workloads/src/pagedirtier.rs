//! The `pagedirtier` memory-intensive workload (paper §V-A2).
//!
//! The paper's pagedirtier "continuously writes in memory pages in random
//! order", with 3.8 GB allocated inside a 4 GB guest to avoid swapping. The
//! MEMLOAD-VM experiment sweeps the *percentage of memory pages dirtied*
//! from 5 % to 95 % — i.e. the working set the program rewrites.
//!
//! Because writes land uniformly at random inside the working set, the
//! number of *distinct* dirty pages `d(t)` after the hypervisor clears the
//! dirty bitmap follows the coupon-collector saturation
//!
//! ```text
//! d(t) = W · (1 − exp(−r·t / W))
//! ```
//!
//! where `W` is the working-set page count and `r` the write rate. The
//! simulated process exposes exactly `r` and `W`; the migration engine
//! integrates the saturation per pre-copy round.

use crate::workload::{Workload, WorkloadProfile};
use wavm3_simkit::SimTime;

/// Simulated pagedirtier: rewrites a fixed fraction of guest memory.
#[derive(Debug, Clone)]
pub struct PageDirtierWorkload {
    /// Fraction of guest memory in the working set (the swept "dirtying
    /// ratio" of MEMLOAD-VM), `[0, 1]`.
    working_set_fraction: f64,
    /// Page writes per second.
    write_rate: f64,
    /// CPU demand of the write loop, cores (a single busy thread).
    cpu_cores: f64,
}

impl PageDirtierWorkload {
    /// Default write rate: a single thread streaming writes re-dirties a
    /// 3.8 GB working set in a few seconds, as in the paper (where a 95 %
    /// ratio makes pre-copy rounds futile and forces an early stop-and-copy).
    pub const DEFAULT_WRITE_RATE: f64 = 220_000.0;

    /// A pagedirtier touching `working_set_fraction` of guest memory.
    pub fn with_ratio(working_set_fraction: f64) -> Self {
        PageDirtierWorkload {
            working_set_fraction: working_set_fraction.clamp(0.0, 1.0),
            write_rate: Self::DEFAULT_WRITE_RATE,
            cpu_cores: 1.0,
        }
    }

    /// Override the write rate (pages/second).
    pub fn with_write_rate(mut self, rate: f64) -> Self {
        self.write_rate = rate.max(0.0);
        self
    }

    /// Expected distinct dirty pages after `elapsed_s` seconds of writing
    /// into a clean bitmap, for a guest of `total_pages`.
    pub fn expected_dirty_pages(&self, total_pages: u64, elapsed_s: f64) -> f64 {
        let w = self.working_set_fraction * total_pages as f64;
        if w < 1.0 || elapsed_s <= 0.0 || self.write_rate <= 0.0 {
            return 0.0;
        }
        w * (1.0 - (-self.write_rate * elapsed_s / w).exp())
    }
}

impl Workload for PageDirtierWorkload {
    fn name(&self) -> &str {
        "pagedirtier"
    }

    fn cpu_demand(&self, _t: SimTime) -> f64 {
        if self.working_set_fraction > 0.0 {
            self.cpu_cores
        } else {
            0.0
        }
    }

    fn page_write_rate(&self, _t: SimTime) -> f64 {
        if self.working_set_fraction > 0.0 {
            self.write_rate
        } else {
            0.0
        }
    }

    fn working_set_fraction(&self) -> f64 {
        self.working_set_fraction
    }

    fn demand_profile(&self) -> WorkloadProfile {
        if self.working_set_fraction > 0.0 {
            WorkloadProfile::constant(self.cpu_cores, self.write_rate, 0.0)
        } else {
            WorkloadProfile::constant(0.0, 0.0, 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_clamps() {
        assert_eq!(
            PageDirtierWorkload::with_ratio(1.5).working_set_fraction(),
            1.0
        );
        assert_eq!(
            PageDirtierWorkload::with_ratio(-0.5).working_set_fraction(),
            0.0
        );
        assert_eq!(
            PageDirtierWorkload::with_ratio(0.55).working_set_fraction(),
            0.55
        );
    }

    #[test]
    fn single_core_cpu_footprint() {
        let w = PageDirtierWorkload::with_ratio(0.95);
        assert_eq!(w.cpu_demand(SimTime::from_secs(4)), 1.0);
        assert_eq!(w.name(), "pagedirtier");
    }

    #[test]
    fn zero_ratio_is_idle() {
        let w = PageDirtierWorkload::with_ratio(0.0);
        assert_eq!(w.cpu_demand(SimTime::ZERO), 0.0);
        assert_eq!(w.page_write_rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn profile_matches_trait_bitwise() {
        for w in [
            PageDirtierWorkload::with_ratio(0.95),
            PageDirtierWorkload::with_ratio(0.4).with_write_rate(250_000.0),
            PageDirtierWorkload::with_ratio(0.0),
        ] {
            let p = w.demand_profile();
            for s in 0..20 {
                let t = SimTime::from_millis(s * 700);
                assert_eq!(p.cpu.eval(t), Some(w.cpu_demand(t)));
                assert_eq!(p.page_write_rate, Some(w.page_write_rate(t)));
                assert_eq!(p.line_share, Some(w.line_share(t)));
            }
        }
    }

    #[test]
    fn dirty_saturation_approaches_working_set() {
        let w = PageDirtierWorkload::with_ratio(0.5);
        let total = 1_048_576; // 4 GiB of pages
        let after_long = w.expected_dirty_pages(total, 600.0);
        let ws = 0.5 * total as f64;
        assert!(
            (after_long - ws).abs() / ws < 1e-6,
            "saturates at working set"
        );
        // Early in a round, dirtying is roughly linear at the write rate.
        let after_short = w.expected_dirty_pages(total, 0.1);
        let linear = 0.1 * PageDirtierWorkload::DEFAULT_WRITE_RATE;
        assert!(
            (after_short - linear).abs() / linear < 0.05,
            "{after_short} vs {linear}"
        );
    }

    #[test]
    fn dirty_saturation_is_monotone_in_time() {
        let w = PageDirtierWorkload::with_ratio(0.95);
        let total = 1_000_000;
        let mut prev = 0.0;
        for s in 1..=30 {
            let d = w.expected_dirty_pages(total, s as f64);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let w = PageDirtierWorkload::with_ratio(0.5);
        assert_eq!(w.expected_dirty_pages(0, 10.0), 0.0);
        assert_eq!(w.expected_dirty_pages(1_000, 0.0), 0.0);
        assert_eq!(
            PageDirtierWorkload::with_ratio(0.5)
                .with_write_rate(0.0)
                .expected_dirty_pages(1_000, 10.0),
            0.0
        );
    }

    #[test]
    fn higher_ratio_dirties_more_for_same_duration() {
        let total = 1_000_000;
        let lo = PageDirtierWorkload::with_ratio(0.05).expected_dirty_pages(total, 30.0);
        let hi = PageDirtierWorkload::with_ratio(0.95).expected_dirty_pages(total, 30.0);
        assert!(
            hi > lo * 2.0,
            "95% ratio must dirty far more than 5%: {hi} vs {lo}"
        );
    }
}
