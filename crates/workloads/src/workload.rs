//! The [`Workload`] abstraction consumed by the migration simulator.

use wavm3_simkit::{SimTime, TimeSeries};

/// A guest workload as the simulator sees it: how much CPU it wants and how
/// fast it dirties memory pages, both as functions of simulation time.
///
/// Implementations must be deterministic functions of `t` — all randomness
/// is injected at construction time (seeded), never at query time, so the
/// simulator can re-query any instant idempotently.
pub trait Workload: Send + Sync {
    /// Human-readable workload name ("matrixmult", "pagedirtier", …).
    fn name(&self) -> &str;

    /// CPU demand in cores-worth at time `t`. The hosting VM clamps this to
    /// its vCPU count.
    fn cpu_demand(&self, t: SimTime) -> f64;

    /// Page writes per second issued at time `t` (uniformly random within
    /// the working set). Zero for CPU-only workloads.
    fn page_write_rate(&self, t: SimTime) -> f64;

    /// Fraction of the VM's memory the workload ever touches, `[0, 1]`.
    /// Dirty pages saturate at this fraction.
    fn working_set_fraction(&self) -> f64;

    /// Fraction of the host's network line rate this workload keeps busy,
    /// `[0, 1]`. Zero for everything except network-intensive services;
    /// the migration stream must share the NIC with it.
    fn line_share(&self, _t: SimTime) -> f64 {
        0.0
    }
}

/// A VM doing nothing (the paper's "idle" hosts).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleWorkload;

impl Workload for IdleWorkload {
    fn name(&self) -> &str {
        "idle"
    }
    fn cpu_demand(&self, _t: SimTime) -> f64 {
        0.0
    }
    fn page_write_rate(&self, _t: SimTime) -> f64 {
        0.0
    }
    fn working_set_fraction(&self) -> f64 {
        0.0
    }
}

/// Replay a recorded CPU-demand series (e.g. captured from the real
/// kernels in [`crate::kernels`]); page writes replay a second series.
pub struct TraceWorkload {
    name: String,
    cpu: TimeSeries,
    writes: TimeSeries,
    working_set: f64,
}

impl TraceWorkload {
    /// Build from recorded series. `working_set` clamps to `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        cpu: TimeSeries,
        writes: TimeSeries,
        working_set: f64,
    ) -> Self {
        TraceWorkload {
            name: name.into(),
            cpu,
            writes,
            working_set: working_set.clamp(0.0, 1.0),
        }
    }

    /// CPU-only trace.
    pub fn cpu_only(name: impl Into<String>, cpu: TimeSeries) -> Self {
        TraceWorkload::new(name, cpu, TimeSeries::new(), 0.0)
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }
    fn cpu_demand(&self, t: SimTime) -> f64 {
        self.cpu.sample_at(t).unwrap_or(0.0).max(0.0)
    }
    fn page_write_rate(&self, t: SimTime) -> f64 {
        self.writes.sample_at(t).unwrap_or(0.0).max(0.0)
    }
    fn working_set_fraction(&self) -> f64 {
        self.working_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_simkit::SimTime;

    #[test]
    fn idle_is_all_zero() {
        let w = IdleWorkload;
        assert_eq!(w.cpu_demand(SimTime::from_secs(5)), 0.0);
        assert_eq!(w.page_write_rate(SimTime::ZERO), 0.0);
        assert_eq!(w.working_set_fraction(), 0.0);
        assert_eq!(w.name(), "idle");
    }

    #[test]
    fn trace_replays_and_extrapolates() {
        let mut cpu = TimeSeries::new();
        cpu.push(SimTime::from_secs(0), 1.0);
        cpu.push(SimTime::from_secs(10), 3.0);
        let w = TraceWorkload::cpu_only("replay", cpu);
        assert_eq!(w.cpu_demand(SimTime::from_secs(5)), 2.0);
        // Flat extrapolation past the end of the trace.
        assert_eq!(w.cpu_demand(SimTime::from_secs(60)), 3.0);
        assert_eq!(w.page_write_rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn trace_clamps_negatives_and_working_set() {
        let mut cpu = TimeSeries::new();
        cpu.push(SimTime::ZERO, -5.0);
        let w = TraceWorkload::new("neg", cpu, TimeSeries::new(), 3.0);
        assert_eq!(w.cpu_demand(SimTime::ZERO), 0.0);
        assert_eq!(w.working_set_fraction(), 1.0);
    }

    #[test]
    fn empty_trace_reads_zero() {
        let w = TraceWorkload::cpu_only("empty", TimeSeries::new());
        assert_eq!(w.cpu_demand(SimTime::from_secs(1)), 0.0);
    }
}
