//! The [`Workload`] abstraction consumed by the migration simulator.

use wavm3_simkit::{SimTime, TimeSeries};

/// Closed-form description of a CPU-demand curve, used by the analytic
/// fast path so the inner loop can evaluate (or tabulate) demand without
/// a virtual call per tick.
///
/// [`DemandProfile::eval`] must agree *bitwise* with the owning
/// workload's [`Workload::cpu_demand`] at every instant — the analytic
/// and sampled simulation paths both consume it, and the differential
/// harness holds them to the discretisation bound only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandProfile {
    /// Demand is `c` cores at every instant.
    Constant(f64),
    /// `target · (1 + ½·ripple·sin(τ·(t/period_s + phase)))`, floored at 0
    /// — the matmul synchronisation ripple.
    Ripple {
        /// Nominal demand in cores.
        target: f64,
        /// Peak-to-peak ripple as a fraction of `target`.
        ripple: f64,
        /// Ripple period, seconds.
        period_s: f64,
        /// Phase offset in periods.
        phase: f64,
    },
    /// No closed form is available; callers must query
    /// [`Workload::cpu_demand`] directly.
    General,
}

impl DemandProfile {
    /// Evaluate the closed form at `t`, or `None` for [`General`].
    ///
    /// [`General`]: DemandProfile::General
    pub fn eval(&self, t: SimTime) -> Option<f64> {
        match *self {
            DemandProfile::Constant(c) => Some(c),
            DemandProfile::Ripple {
                target,
                ripple,
                period_s,
                phase,
            } => {
                let factor = 1.0
                    + 0.5
                        * ripple
                        * (std::f64::consts::TAU * (t.as_secs_f64() / period_s + phase)).sin();
                Some((target * factor).max(0.0))
            }
            DemandProfile::General => None,
        }
    }

    /// `true` when [`eval`](DemandProfile::eval) returns a value.
    pub fn is_closed_form(&self) -> bool {
        !matches!(self, DemandProfile::General)
    }
}

/// Closed-form summary of a workload for the analytic fast path: the CPU
/// demand curve plus the time-invariant rates. `None` for a rate means it
/// varies with time (or is unknown), forcing per-instant trait queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// CPU demand curve.
    pub cpu: DemandProfile,
    /// Constant page-write rate (pages/s), when time-invariant.
    pub page_write_rate: Option<f64>,
    /// Constant NIC line share in `[0, 1]`, when time-invariant.
    pub line_share: Option<f64>,
}

impl WorkloadProfile {
    /// The conservative default: nothing is known in closed form.
    pub fn general() -> Self {
        WorkloadProfile {
            cpu: DemandProfile::General,
            page_write_rate: None,
            line_share: None,
        }
    }

    /// A fully constant workload.
    pub fn constant(cpu: f64, page_write_rate: f64, line_share: f64) -> Self {
        WorkloadProfile {
            cpu: DemandProfile::Constant(cpu),
            page_write_rate: Some(page_write_rate),
            line_share: Some(line_share),
        }
    }
}

/// A guest workload as the simulator sees it: how much CPU it wants and how
/// fast it dirties memory pages, both as functions of simulation time.
///
/// Implementations must be deterministic functions of `t` — all randomness
/// is injected at construction time (seeded), never at query time, so the
/// simulator can re-query any instant idempotently.
pub trait Workload: Send + Sync {
    /// Human-readable workload name ("matrixmult", "pagedirtier", …).
    fn name(&self) -> &str;

    /// CPU demand in cores-worth at time `t`. The hosting VM clamps this to
    /// its vCPU count.
    fn cpu_demand(&self, t: SimTime) -> f64;

    /// Page writes per second issued at time `t` (uniformly random within
    /// the working set). Zero for CPU-only workloads.
    fn page_write_rate(&self, t: SimTime) -> f64;

    /// Fraction of the VM's memory the workload ever touches, `[0, 1]`.
    /// Dirty pages saturate at this fraction.
    fn working_set_fraction(&self) -> f64;

    /// Fraction of the host's network line rate this workload keeps busy,
    /// `[0, 1]`. Zero for everything except network-intensive services;
    /// the migration stream must share the NIC with it.
    fn line_share(&self, _t: SimTime) -> f64 {
        0.0
    }

    /// Closed-form summary of this workload for the analytic fast path.
    ///
    /// The default claims nothing ([`WorkloadProfile::general`]), which is
    /// always safe: the analytic path falls back to querying the trait
    /// methods per instant. Overrides must agree bitwise with the trait
    /// methods at every `t`.
    fn demand_profile(&self) -> WorkloadProfile {
        WorkloadProfile::general()
    }
}

/// A VM doing nothing (the paper's "idle" hosts).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleWorkload;

impl Workload for IdleWorkload {
    fn name(&self) -> &str {
        "idle"
    }
    fn cpu_demand(&self, _t: SimTime) -> f64 {
        0.0
    }
    fn page_write_rate(&self, _t: SimTime) -> f64 {
        0.0
    }
    fn working_set_fraction(&self) -> f64 {
        0.0
    }
    fn demand_profile(&self) -> WorkloadProfile {
        WorkloadProfile::constant(0.0, 0.0, 0.0)
    }
}

/// Replay a recorded CPU-demand series (e.g. captured from the real
/// kernels in [`crate::kernels`]); page writes replay a second series.
pub struct TraceWorkload {
    name: String,
    cpu: TimeSeries,
    writes: TimeSeries,
    working_set: f64,
}

impl TraceWorkload {
    /// Build from recorded series. `working_set` clamps to `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        cpu: TimeSeries,
        writes: TimeSeries,
        working_set: f64,
    ) -> Self {
        TraceWorkload {
            name: name.into(),
            cpu,
            writes,
            working_set: working_set.clamp(0.0, 1.0),
        }
    }

    /// CPU-only trace.
    pub fn cpu_only(name: impl Into<String>, cpu: TimeSeries) -> Self {
        TraceWorkload::new(name, cpu, TimeSeries::new(), 0.0)
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }
    fn cpu_demand(&self, t: SimTime) -> f64 {
        self.cpu.sample_at(t).unwrap_or(0.0).max(0.0)
    }
    fn page_write_rate(&self, t: SimTime) -> f64 {
        self.writes.sample_at(t).unwrap_or(0.0).max(0.0)
    }
    fn working_set_fraction(&self) -> f64 {
        self.working_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_simkit::SimTime;

    #[test]
    fn idle_is_all_zero() {
        let w = IdleWorkload;
        assert_eq!(w.cpu_demand(SimTime::from_secs(5)), 0.0);
        assert_eq!(w.page_write_rate(SimTime::ZERO), 0.0);
        assert_eq!(w.working_set_fraction(), 0.0);
        assert_eq!(w.name(), "idle");
    }

    #[test]
    fn trace_replays_and_extrapolates() {
        let mut cpu = TimeSeries::new();
        cpu.push(SimTime::from_secs(0), 1.0);
        cpu.push(SimTime::from_secs(10), 3.0);
        let w = TraceWorkload::cpu_only("replay", cpu);
        assert_eq!(w.cpu_demand(SimTime::from_secs(5)), 2.0);
        // Flat extrapolation past the end of the trace.
        assert_eq!(w.cpu_demand(SimTime::from_secs(60)), 3.0);
        assert_eq!(w.page_write_rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn trace_clamps_negatives_and_working_set() {
        let mut cpu = TimeSeries::new();
        cpu.push(SimTime::ZERO, -5.0);
        let w = TraceWorkload::new("neg", cpu, TimeSeries::new(), 3.0);
        assert_eq!(w.cpu_demand(SimTime::ZERO), 0.0);
        assert_eq!(w.working_set_fraction(), 1.0);
    }

    #[test]
    fn empty_trace_reads_zero() {
        let w = TraceWorkload::cpu_only("empty", TimeSeries::new());
        assert_eq!(w.cpu_demand(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn default_profile_is_general() {
        let w = TraceWorkload::cpu_only("replay", TimeSeries::new());
        let p = w.demand_profile();
        assert_eq!(p.cpu, DemandProfile::General);
        assert_eq!(p.cpu.eval(SimTime::ZERO), None);
        assert!(!p.cpu.is_closed_form());
        assert_eq!(p.page_write_rate, None);
        assert_eq!(p.line_share, None);
    }

    #[test]
    fn idle_profile_matches_trait_bitwise() {
        let w = IdleWorkload;
        let p = w.demand_profile();
        for s in 0..50 {
            let t = SimTime::from_millis(s * 137);
            assert_eq!(p.cpu.eval(t), Some(w.cpu_demand(t)));
            assert_eq!(p.page_write_rate, Some(w.page_write_rate(t)));
            assert_eq!(p.line_share, Some(w.line_share(t)));
        }
    }

    #[test]
    fn ripple_profile_evaluates_the_documented_form() {
        let p = DemandProfile::Ripple {
            target: 4.0,
            ripple: 0.03,
            period_s: 7.0,
            phase: 0.25,
        };
        let t = SimTime::from_millis(1_300);
        let expect = (4.0
            * (1.0 + 0.5 * 0.03 * (std::f64::consts::TAU * (t.as_secs_f64() / 7.0 + 0.25)).sin()))
        .max(0.0);
        assert_eq!(p.eval(t), Some(expect));
    }
}
