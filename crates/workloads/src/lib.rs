//! # wavm3-workloads — CPU- and memory-intensive workload generators
//!
//! The paper stresses its testbed with two purpose-built programs:
//!
//! * **matrixmult** — an OpenMP C matrix multiplication that pegs every
//!   vCPU of the VMs running it (the CPU-intensive load of the CPULOAD
//!   experiment family);
//! * **pagedirtier** — an ANSI C program continuously writing memory pages
//!   in random order (the memory-intensive load of the MEMLOAD family).
//!
//! This crate provides both **real executable kernels** (a rayon-parallel
//! blocked matmul and a genuine page-dirtying buffer walker — used by the
//! examples and benches, and to calibrate utilisation shapes) and
//! **simulation processes** implementing the [`Workload`] trait consumed by
//! the migration simulator: a CPU-demand function and a page-dirtying rate
//! function of simulation time.
//!
//! ## Example
//!
//! ```
//! use wavm3_simkit::SimTime;
//! use wavm3_workloads::{MatMulWorkload, PageDirtierWorkload, Workload};
//!
//! let cpu = MatMulWorkload::full(4);
//! assert!((cpu.cpu_demand(SimTime::from_secs(3)) - 4.0).abs() < 0.1);
//!
//! let mem = PageDirtierWorkload::with_ratio(0.95);
//! assert_eq!(mem.working_set_fraction(), 0.95);
//! assert!(mem.page_write_rate(SimTime::ZERO) > 100_000.0);
//! ```

pub mod kernels;
pub mod matmul;
pub mod network;
pub mod pagedirtier;
pub mod synthetic;
pub mod workload;

pub use matmul::MatMulWorkload;
pub use network::{MixedWorkload, NetworkWorkload};
pub use pagedirtier::PageDirtierWorkload;
pub use synthetic::{generate_utilisation, generate_workload, TraceSpec};
pub use workload::{DemandProfile, IdleWorkload, TraceWorkload, Workload, WorkloadProfile};
