//! Synthetic utilisation traces (extension).
//!
//! Consolidation studies (e.g. Beloglazov & Buyya, the paper's ref. \[9\])
//! drive their experiments with recorded per-VM CPU utilisation traces.
//! Without access to such proprietary recordings, this module generates
//! statistically similar ones: a mean-reverting Ornstein–Uhlenbeck process
//! clamped to `[0, 1]`, optionally with a diurnal swing — enough structure
//! to exercise trace-driven workloads
//! ([`TraceWorkload`](crate::TraceWorkload)) and time-varying
//! consolidation decisions.

use crate::workload::TraceWorkload;
use wavm3_simkit::rng::sample_normal;
use wavm3_simkit::{SimDuration, SimTime, StreamRng, TimeSeries};

/// Parameters of the synthetic utilisation process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Long-run mean utilisation of the guest's vCPUs, `[0, 1]`.
    pub mean: f64,
    /// Stationary standard deviation of the OU fluctuation.
    pub std_dev: f64,
    /// Mean-reversion time constant, seconds.
    pub tau_s: f64,
    /// Peak-to-peak diurnal swing added on top (0 = none), `[0, 1]`.
    pub diurnal_swing: f64,
    /// Sampling period of the generated trace.
    pub sample_period: SimDuration,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            mean: 0.4,
            std_dev: 0.12,
            tau_s: 300.0,
            diurnal_swing: 0.0,
            sample_period: SimDuration::from_secs(5),
        }
    }
}

/// Generate a CPU-utilisation trace of `duration` (fractions of the
/// guest's vCPUs in `[0, 1]`).
pub fn generate_utilisation(
    spec: &TraceSpec,
    duration: SimDuration,
    rng: &mut StreamRng,
) -> TimeSeries {
    assert!(
        !spec.sample_period.is_zero(),
        "sample period must be positive"
    );
    let dt = spec.sample_period.as_secs_f64();
    let sigma_w = spec.std_dev * (2.0 / spec.tau_s.max(1e-6)).sqrt();
    let mut x = 0.0_f64; // OU deviation from the mean
    let mut out = TimeSeries::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + duration;
    while t <= end {
        let seconds = t.as_secs_f64();
        let diurnal = if spec.diurnal_swing > 0.0 {
            0.5 * spec.diurnal_swing * (std::f64::consts::TAU * seconds / 86_400.0).sin()
        } else {
            0.0
        };
        let u = (spec.mean + diurnal + x).clamp(0.0, 1.0);
        out.push(t, u);
        x += -x / spec.tau_s.max(1e-6) * dt + sample_normal(rng, 0.0, sigma_w * dt.sqrt());
        t += spec.sample_period;
    }
    out
}

/// Generate a ready-to-attach [`TraceWorkload`] for a guest with `vcpus`
/// virtual CPUs: the utilisation trace scaled into cores-worth of demand.
pub fn generate_workload(
    name: &str,
    spec: &TraceSpec,
    vcpus: u32,
    duration: SimDuration,
    rng: &mut StreamRng,
) -> TraceWorkload {
    let util = generate_utilisation(spec, duration, rng);
    let mut cpu = TimeSeries::new();
    for (t, u) in util.iter() {
        cpu.push(t, u * vcpus as f64);
    }
    TraceWorkload::cpu_only(name, cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use wavm3_simkit::RngFactory;

    fn rng(seed: u64) -> StreamRng {
        RngFactory::new(seed).stream("trace")
    }

    #[test]
    fn trace_stays_in_unit_interval() {
        let spec = TraceSpec {
            std_dev: 0.4, // violent fluctuations must still clamp
            ..TraceSpec::default()
        };
        let t = generate_utilisation(&spec, SimDuration::from_secs(3_600), &mut rng(1));
        assert!(t.len() > 700);
        let (lo, hi) = t.min_max().unwrap();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn trace_mean_approaches_spec_mean() {
        let spec = TraceSpec::default();
        let t = generate_utilisation(&spec, SimDuration::from_secs(40_000), &mut rng(2));
        let mean = t.mean().unwrap();
        assert!(
            (mean - spec.mean).abs() < 0.05,
            "mean {mean} vs spec {}",
            spec.mean
        );
    }

    #[test]
    fn trace_actually_fluctuates() {
        let t = generate_utilisation(
            &TraceSpec::default(),
            SimDuration::from_secs(3_600),
            &mut rng(3),
        );
        let (lo, hi) = t.min_max().unwrap();
        assert!(hi - lo > 0.05, "flatlined: {lo}..{hi}");
    }

    #[test]
    fn diurnal_swing_shows_up_over_a_day() {
        let spec = TraceSpec {
            std_dev: 0.0,
            diurnal_swing: 0.4,
            sample_period: SimDuration::from_secs(600),
            ..TraceSpec::default()
        };
        let t = generate_utilisation(&spec, SimDuration::from_secs(86_400), &mut rng(4));
        let (lo, hi) = t.min_max().unwrap();
        assert!((hi - lo - 0.4).abs() < 0.02, "swing {}", hi - lo);
    }

    #[test]
    fn generated_workload_scales_to_vcpus() {
        let spec = TraceSpec {
            mean: 1.0,
            std_dev: 0.0,
            ..TraceSpec::default()
        };
        let w = generate_workload("t", &spec, 4, SimDuration::from_secs(60), &mut rng(5));
        assert!((w.cpu_demand(SimTime::from_secs(30)) - 4.0).abs() < 1e-9);
        assert_eq!(w.name(), "t");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = TraceSpec::default();
        let a = generate_utilisation(&spec, SimDuration::from_secs(600), &mut rng(7));
        let b = generate_utilisation(&spec, SimDuration::from_secs(600), &mut rng(7));
        assert_eq!(a, b);
        let c = generate_utilisation(&spec, SimDuration::from_secs(600), &mut rng(8));
        assert_ne!(a, c);
    }
}
