//! Network-intensive and mixed workloads — the paper's future work (§VIII).
//!
//! The paper restricts itself to CPU- and memory-intensive loads after
//! observing "negligible energy impacts caused by network-intensive
//! workloads during migration" (§I), and argues a consolidation manager
//! never migrates over a saturated link (§III-B). These workload types make
//! that argument *testable* in the reproduction: a [`NetworkWorkload`]
//! claims a share of the migration link and burns the small CPU cost of
//! driving it; the NETLOAD extension experiment (see
//! `wavm3-experiments::netload`) then measures how little the migration
//! energy moves until the link is nearly saturated.

use crate::workload::Workload;
use wavm3_simkit::SimTime;

/// A guest serving network traffic: claims a fraction of the host's line
/// rate and a proportional sliver of CPU (interrupt/stack processing).
#[derive(Debug, Clone)]
pub struct NetworkWorkload {
    /// Fraction of the 1 Gbit line the service keeps busy, `[0, 1]`.
    line_share: f64,
    /// CPU cost of driving the NIC at full line rate, cores.
    cores_at_line_rate: f64,
    /// Packet buffers etc. — a tiny, constantly rewritten working set.
    working_set_fraction: f64,
    /// Page writes per second from packet buffers.
    write_rate: f64,
}

impl NetworkWorkload {
    /// A network service keeping `line_share` of the link busy.
    pub fn with_line_share(line_share: f64) -> Self {
        NetworkWorkload {
            line_share: line_share.clamp(0.0, 1.0),
            cores_at_line_rate: 1.2,
            working_set_fraction: 0.01,
            write_rate: 2_000.0,
        }
    }

    /// The line fraction this workload occupies.
    pub fn line_share(&self) -> f64 {
        self.line_share
    }
}

impl Workload for NetworkWorkload {
    fn name(&self) -> &str {
        "netserve"
    }

    fn cpu_demand(&self, _t: SimTime) -> f64 {
        self.cores_at_line_rate * self.line_share
    }

    fn page_write_rate(&self, _t: SimTime) -> f64 {
        if self.line_share > 0.0 {
            self.write_rate
        } else {
            0.0
        }
    }

    fn working_set_fraction(&self) -> f64 {
        if self.line_share > 0.0 {
            self.working_set_fraction
        } else {
            0.0
        }
    }

    fn line_share(&self, _t: SimTime) -> f64 {
        self.line_share
    }
}

/// A composite of several workloads running inside one guest: demands add,
/// working sets union (approximated by the sum, capped at 1).
pub struct MixedWorkload {
    name: String,
    parts: Vec<Box<dyn Workload>>,
}

impl MixedWorkload {
    /// Combine `parts` under one guest.
    pub fn new(name: impl Into<String>, parts: Vec<Box<dyn Workload>>) -> Self {
        MixedWorkload {
            name: name.into(),
            parts,
        }
    }

    /// Number of component workloads.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` when the mix is empty (an idle guest).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Workload for MixedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn cpu_demand(&self, t: SimTime) -> f64 {
        self.parts.iter().map(|p| p.cpu_demand(t)).sum()
    }

    fn page_write_rate(&self, t: SimTime) -> f64 {
        self.parts.iter().map(|p| p.page_write_rate(t)).sum()
    }

    fn working_set_fraction(&self) -> f64 {
        self.parts
            .iter()
            .map(|p| p.working_set_fraction())
            .sum::<f64>()
            .min(1.0)
    }

    fn line_share(&self, t: SimTime) -> f64 {
        self.parts
            .iter()
            .map(|p| p.line_share(t))
            .sum::<f64>()
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatMulWorkload, PageDirtierWorkload};

    #[test]
    fn network_share_clamps_and_scales() {
        let w = NetworkWorkload::with_line_share(0.5);
        assert_eq!(w.line_share(), 0.5);
        assert!((w.cpu_demand(SimTime::ZERO) - 0.6).abs() < 1e-12);
        assert_eq!(NetworkWorkload::with_line_share(2.0).line_share(), 1.0);
        assert_eq!(NetworkWorkload::with_line_share(-1.0).line_share(), 0.0);
    }

    #[test]
    fn idle_network_service_is_silent() {
        let w = NetworkWorkload::with_line_share(0.0);
        assert_eq!(w.cpu_demand(SimTime::ZERO), 0.0);
        assert_eq!(w.page_write_rate(SimTime::ZERO), 0.0);
        assert_eq!(w.working_set_fraction(), 0.0);
    }

    #[test]
    fn mixed_demands_add() {
        let t = SimTime::from_secs(2);
        let cpu = MatMulWorkload::full(2);
        let mem = PageDirtierWorkload::with_ratio(0.4);
        let expect_cpu = cpu.cpu_demand(t) + mem.cpu_demand(t);
        let expect_writes = cpu.page_write_rate(t) + mem.page_write_rate(t);
        let mix = MixedWorkload::new("mix", vec![Box::new(cpu), Box::new(mem)]);
        assert!((mix.cpu_demand(t) - expect_cpu).abs() < 1e-12);
        assert!((mix.page_write_rate(t) - expect_writes).abs() < 1e-12);
        assert_eq!(mix.len(), 2);
        assert!(!mix.is_empty());
    }

    #[test]
    fn mixed_working_set_caps_at_one() {
        let mix = MixedWorkload::new(
            "hot",
            vec![
                Box::new(PageDirtierWorkload::with_ratio(0.7)),
                Box::new(PageDirtierWorkload::with_ratio(0.7)),
            ],
        );
        assert_eq!(mix.working_set_fraction(), 1.0);
    }

    #[test]
    fn empty_mix_is_idle() {
        let mix = MixedWorkload::new("nothing", vec![]);
        assert!(mix.is_empty());
        assert_eq!(mix.cpu_demand(SimTime::ZERO), 0.0);
        assert_eq!(mix.working_set_fraction(), 0.0);
    }
}
