//! Analytic migration planning.
//!
//! A consolidation manager cannot run a full simulation for every candidate
//! move; it needs a closed-form estimate. [`plan_migration`] reproduces the
//! migration engine's dynamics analytically — CPU-coupled bandwidth,
//! pre-copy round recursion with dirty-set saturation, the stop-and-copy
//! termination rules — and synthesises the 2 Hz feature timeline that the
//! energy models consume, so any [`EnergyModel`](wavm3_models::EnergyModel)
//! can price a move that has never been executed.

use serde::{Deserialize, Serialize};
use wavm3_cluster::{Link, MachineSet, PAGE_SIZE_BYTES};
use wavm3_migration::{
    FeatureSample, MigrationConfig, MigrationKind, MigrationOutcome, MigrationRecord, RoundStats,
};
use wavm3_power::{EnergyBreakdown, MigrationPhase, PhaseTimes, PowerTrace, TelemetryRecorder};
use wavm3_simkit::{SimDuration, SimTime};

/// Everything the planner needs to know about a contemplated move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerInputs {
    /// Mechanism to plan.
    pub kind: MigrationKind,
    /// Machine pair (selects idle power recorded in the plan).
    pub machine_set: MachineSet,
    /// Idle power of the machines, watts.
    pub idle_power_w: f64,
    /// Migrant RAM, MiB.
    pub ram_mib: u64,
    /// Migrant vCPUs.
    pub vcpus: u32,
    /// Migrant CPU demand as a fraction of its vCPUs, `[0, 1]`.
    pub vm_cpu_fraction: f64,
    /// Migrant working-set fraction, `[0, 1]`.
    pub working_set_fraction: f64,
    /// Migrant page-write rate, pages/s.
    pub page_write_rate: f64,
    /// CPU demand of everything else on the source, cores.
    pub source_other_cores: f64,
    /// CPU demand of everything else on the target, cores.
    pub target_other_cores: f64,
    /// Source machine capacity, cores.
    pub source_capacity: f64,
    /// Target machine capacity, cores.
    pub target_capacity: f64,
    /// The migration link.
    pub link: Link,
    /// Engine configuration (timings, pre-copy policy, CPU costs).
    pub config: MigrationConfig,
}

/// The analytic estimate of one migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Inputs the plan was derived from.
    pub inputs: PlannerInputs,
    /// Estimated phase instants (with `ms` at the configured pre-run).
    pub phases: PhaseTimes,
    /// Estimated bytes on the wire.
    pub est_bytes: u64,
    /// Estimated VM downtime.
    pub est_downtime: SimDuration,
    /// Estimated effective bandwidth, bytes/s.
    pub est_bandwidth_bps: f64,
    /// Estimated pre-copy rounds (excluding stop-and-copy).
    pub est_precopy_rounds: usize,
    /// Synthesised feature timeline at 2 Hz for model pricing.
    pub samples: Vec<FeatureSample>,
}

/// Dirty pages after writing for `dt` seconds into a clean bitmap
/// (coupon-collector saturation over the working set).
fn dirty_after(ws_pages: f64, rate: f64, dt: f64) -> f64 {
    if ws_pages < 1.0 || rate <= 0.0 || dt <= 0.0 {
        return 0.0;
    }
    ws_pages * (1.0 - (-rate * dt / ws_pages).exp())
}

/// Produce the analytic plan for a contemplated migration.
pub fn plan_migration(inputs: &PlannerInputs) -> MigrationPlan {
    let cfg = &inputs.config;
    let ram_bytes = inputs.ram_mib as f64 * 1024.0 * 1024.0;
    let total_pages = ram_bytes / PAGE_SIZE_BYTES as f64;
    let ws_pages = inputs.working_set_fraction.clamp(0.0, 1.0) * total_pages;
    let vm_cores = inputs.vm_cpu_fraction.clamp(0.0, 1.0) * inputs.vcpus as f64;
    let live = inputs.kind == MigrationKind::Live;

    // CPU-coupled bandwidth during transfer, assuming steady demands.
    let dirty_intensity = if live {
        (inputs.page_write_rate / wavm3_migration::simulation::PEAK_PAGE_WRITE_RATE).min(1.0)
    } else {
        0.0
    };
    let src_migr = cfg.cpu_cost.source_cores_at_line_rate
        + cfg.cpu_cost.dirty_tracking_cores * dirty_intensity;
    let dst_migr = cfg.cpu_cost.target_cores_at_line_rate;
    let post_copy = inputs.kind == MigrationKind::PostCopy;
    let vm_on_source = if live { vm_cores } else { 0.0 };
    let vm_on_target = if post_copy { vm_cores } else { 0.0 };
    let src_demand = inputs.source_other_cores + vm_on_source + src_migr + 0.2;
    let dst_demand = inputs.target_other_cores + vm_on_target + dst_migr + 0.2;
    let src_scale = (inputs.source_capacity / src_demand).min(1.0);
    let dst_scale = (inputs.target_capacity / dst_demand).min(1.0);
    let bw = inputs.link.effective_bandwidth(src_scale, dst_scale);

    // Round recursion.
    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut total_bytes = 0.0;
    let mut transfer_s = 0.0;
    let mut downtime_s = 0.0;
    let mut precopy_rounds = 0;
    if bw > 0.0 {
        if live {
            let mut to_send = ram_bytes;
            for round in 0..cfg.precopy.max_rounds + 1 {
                let dur = to_send / bw;
                let sent_pages = to_send / PAGE_SIZE_BYTES as f64;
                let d = dirty_after(ws_pages, inputs.page_write_rate, dur);
                total_bytes += to_send;
                transfer_s += dur;
                rounds.push(RoundStats {
                    round,
                    bytes_sent: to_send as u64,
                    duration: SimDuration::from_secs_f64(dur),
                    dirty_at_end_pages: d.round() as u64,
                    stop_and_copy: false,
                });
                precopy_rounds += 1;
                let stall = d >= cfg.precopy.stall_ratio * sent_pages;
                let small = d <= cfg.precopy.stop_threshold_pages as f64;
                if d < 0.5 {
                    break;
                }
                if small || stall || round + 1 >= cfg.precopy.max_rounds {
                    // Stop-and-copy of the final dirty set.
                    let final_bytes = d * PAGE_SIZE_BYTES as f64;
                    let final_dur = final_bytes / bw;
                    total_bytes += final_bytes;
                    transfer_s += final_dur;
                    downtime_s = final_dur;
                    rounds.push(RoundStats {
                        round: round + 1,
                        bytes_sent: final_bytes as u64,
                        duration: SimDuration::from_secs_f64(final_dur),
                        dirty_at_end_pages: 0,
                        stop_and_copy: true,
                    });
                    break;
                }
                to_send = d * PAGE_SIZE_BYTES as f64;
            }
        } else {
            transfer_s = ram_bytes / bw;
            total_bytes = ram_bytes;
            rounds.push(RoundStats {
                round: 0,
                bytes_sent: ram_bytes as u64,
                duration: SimDuration::from_secs_f64(transfer_s),
                dirty_at_end_pages: 0,
                stop_and_copy: false,
            });
        }
    }
    if post_copy {
        // Only the CPU-state handover suspends the guest.
        downtime_s = cfg.timing.postcopy_handover.as_secs_f64();
    } else if !live {
        // Suspended from ms to the end of the transfer.
        downtime_s = cfg.timing.initiation.as_secs_f64() + transfer_s;
    }

    let ms = SimTime::ZERO + cfg.timing.pre_run;
    let ts = ms + cfg.timing.initiation;
    let te = ts + SimDuration::from_secs_f64(transfer_s);
    let me = te + cfg.timing.activation;
    let phases = PhaseTimes::new(ms, ts, te, me);

    // Synthesise the 2 Hz feature timeline.
    let mut samples = Vec::new();
    let step = SimDuration::from_millis(500);
    let mut t = ms;
    // Dirty-ratio sawtooth: time offset into the current round.
    let mut round_edges: Vec<(SimTime, f64)> = Vec::new(); // (round start, ws reset)
    {
        let mut acc = ts;
        for r in &rounds {
            round_edges.push((acc, 0.0));
            acc += r.duration;
        }
    }
    while t < me {
        let phase = phases.phase_at(t);
        let in_stop_copy = rounds
            .last()
            .map(|r| r.stop_and_copy && t >= te - r.duration)
            .unwrap_or(false);
        let vm_running_on_source = match inputs.kind {
            MigrationKind::NonLive | MigrationKind::PostCopy => false,
            MigrationKind::Live => t < te && !in_stop_copy,
        } && phase != MigrationPhase::Activation;
        let vm_running_on_target = post_copy && phase == MigrationPhase::Transfer;
        let (cpu_src_cores, cpu_dst_cores, bw_now) = match phase {
            MigrationPhase::Initiation => (
                inputs.source_other_cores
                    + if vm_running_on_source { vm_cores } else { 0.0 }
                    + cfg.cpu_cost.control_cores,
                inputs.target_other_cores + cfg.cpu_cost.control_cores,
                0.0,
            ),
            MigrationPhase::Transfer => (
                inputs.source_other_cores
                    + if vm_running_on_source { vm_cores } else { 0.0 }
                    + src_migr,
                inputs.target_other_cores
                    + if vm_running_on_target { vm_cores } else { 0.0 }
                    + dst_migr,
                bw,
            ),
            MigrationPhase::Activation => (
                inputs.source_other_cores + cfg.cpu_cost.control_cores,
                inputs.target_other_cores + vm_cores + cfg.cpu_cost.control_cores,
                0.0,
            ),
            MigrationPhase::NormalExecution => {
                (inputs.source_other_cores, inputs.target_other_cores, 0.0)
            }
        };
        // Dirty ratio at t: saturation since the current round's start.
        let dr = if vm_running_on_source && phase == MigrationPhase::Transfer {
            let round_start = round_edges
                .iter()
                .rev()
                .find(|(s, _)| *s <= t)
                .map(|(s, _)| *s)
                .unwrap_or(ts);
            dirty_after(
                ws_pages,
                inputs.page_write_rate,
                (t - round_start).as_secs_f64(),
            ) / total_pages.max(1.0)
        } else {
            0.0
        };
        let cpu_vm = if vm_running_on_source
            || vm_running_on_target
            || phase == MigrationPhase::Activation
        {
            inputs.vm_cpu_fraction
        } else {
            0.0
        };
        samples.push(FeatureSample {
            t,
            phase,
            cpu_source: (cpu_src_cores / inputs.source_capacity).clamp(0.0, 1.0),
            cpu_target: (cpu_dst_cores / inputs.target_capacity).clamp(0.0, 1.0),
            cpu_vm,
            dirty_ratio: dr,
            bandwidth_bps: bw_now,
            power_source_w: 0.0,
            power_target_w: 0.0,
        });
        t += step;
    }

    MigrationPlan {
        inputs: *inputs,
        phases,
        est_bytes: total_bytes.round() as u64,
        est_downtime: SimDuration::from_secs_f64(downtime_s),
        est_bandwidth_bps: bw,
        est_precopy_rounds: precopy_rounds,
        samples,
    }
}

impl MigrationPlan {
    /// Wrap the plan as a [`MigrationRecord`] so any energy model can price
    /// it. Measured traces and energies are empty — only the feature
    /// timeline and the run-level features (bytes, RAM, bandwidth) are
    /// populated.
    pub fn to_record(&self) -> MigrationRecord {
        let rounds = Vec::new();
        MigrationRecord {
            kind: self.inputs.kind,
            machine_set: self.inputs.machine_set,
            phases: self.phases,
            source_trace: PowerTrace::new("planned-source"),
            target_trace: PowerTrace::new("planned-target"),
            source_truth: PowerTrace::new("planned-source"),
            target_truth: PowerTrace::new("planned-target"),
            telemetry: TelemetryRecorder::new(),
            samples: self.samples.clone(),
            rounds,
            total_bytes: self.est_bytes,
            downtime: self.est_downtime,
            vm_ram_mib: self.inputs.ram_mib,
            source_energy: EnergyBreakdown {
                initiation_j: 0.0,
                transfer_j: 0.0,
                activation_j: 0.0,
                rollback_j: 0.0,
            },
            target_energy: EnergyBreakdown {
                initiation_j: 0.0,
                transfer_j: 0.0,
                activation_j: 0.0,
                rollback_j: 0.0,
            },
            idle_power_w: self.inputs.idle_power_w,
            outcome: MigrationOutcome::Completed,
            fault_events: Vec::new(),
            attempt: 0,
            retry_backoff: SimDuration::ZERO,
        }
    }
}

/// Pick the migration mechanism for a move under a downtime SLO
/// (extension): plan every candidate mechanism and return the first
/// feasible one in preference order — live pre-copy (no guest impact when
/// it converges), then post-copy (bounded downtime, degraded transfer
/// period), then non-live (only acceptable when the SLO tolerates a full
/// outage). `None` when nothing meets the SLO.
pub fn select_mechanism(
    inputs: &PlannerInputs,
    max_downtime_s: f64,
    allow_post_copy: bool,
) -> Option<(MigrationKind, MigrationPlan)> {
    let mut candidates = vec![MigrationKind::Live];
    if allow_post_copy {
        candidates.push(MigrationKind::PostCopy);
    }
    candidates.push(MigrationKind::NonLive);
    for kind in candidates {
        let mut i = *inputs;
        i.kind = kind;
        i.config.kind = kind;
        let plan = plan_migration(&i);
        if plan.est_downtime.as_secs_f64() <= max_downtime_s {
            return Some((kind, plan));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> PlannerInputs {
        PlannerInputs {
            kind: MigrationKind::Live,
            machine_set: MachineSet::M,
            idle_power_w: 430.0,
            ram_mib: 4096,
            vcpus: 4,
            vm_cpu_fraction: 1.0,
            working_set_fraction: 0.015,
            page_write_rate: 400.0,
            source_other_cores: 0.0,
            target_other_cores: 0.0,
            source_capacity: 32.0,
            target_capacity: 32.0,
            link: Link::gigabit(),
            config: MigrationConfig::live(),
        }
    }

    #[test]
    fn idle_live_plan_matches_expectations() {
        let p = plan_migration(&base_inputs());
        // 4 GiB at ~115 MB/s: 35-40 s transfer.
        let ts = p.phases.transfer().as_secs_f64();
        assert!((30.0..48.0).contains(&ts), "transfer {ts}");
        assert!(p.est_downtime.as_secs_f64() < 2.0, "tiny working set");
        assert!(p.est_bytes >= 4 * 1024 * 1024 * 1024);
        assert!(!p.samples.is_empty());
    }

    #[test]
    fn hot_memory_plan_predicts_long_downtime() {
        let mut i = base_inputs();
        i.working_set_fraction = 0.95;
        i.page_write_rate = 220_000.0;
        let p = plan_migration(&i);
        assert!(
            p.est_downtime.as_secs_f64() > 10.0,
            "stop-and-copy of ~3.8 GiB expected, got {}",
            p.est_downtime.as_secs_f64()
        );
        assert!(p.est_bytes > 6 * 1024 * 1024 * 1024, "resends expected");
    }

    #[test]
    fn loaded_source_reduces_planned_bandwidth() {
        let idle = plan_migration(&base_inputs());
        let mut i = base_inputs();
        i.source_other_cores = 32.0;
        let loaded = plan_migration(&i);
        assert!(loaded.est_bandwidth_bps < idle.est_bandwidth_bps);
        assert!(loaded.phases.transfer() > idle.phases.transfer());
    }

    #[test]
    fn non_live_downtime_spans_whole_migration() {
        let mut i = base_inputs();
        i.kind = MigrationKind::NonLive;
        let p = plan_migration(&i);
        assert!(
            (p.est_downtime.as_secs_f64()
                - (p.phases.initiation().as_secs_f64() + p.phases.transfer().as_secs_f64()))
            .abs()
                < 0.6
        );
        assert_eq!(p.est_precopy_rounds, 0);
        // Every transfer sample has CPU(v)=0 (suspended).
        assert!(p
            .samples
            .iter()
            .filter(|s| s.phase == MigrationPhase::Transfer)
            .all(|s| s.cpu_vm == 0.0));
    }

    #[test]
    fn record_conversion_carries_plan_features() {
        let p = plan_migration(&base_inputs());
        let r = p.to_record();
        assert_eq!(r.total_bytes, p.est_bytes);
        assert_eq!(r.vm_ram_mib, 4096);
        assert_eq!(r.samples.len(), p.samples.len());
        assert!(r.mean_transfer_bandwidth() > 0.0);
    }

    #[test]
    fn mechanism_selection_respects_downtime_slo() {
        // Cold guest, 2 s SLO: live pre-copy converges and wins.
        let cold = base_inputs();
        let (kind, plan) = select_mechanism(&cold, 2.0, true).unwrap();
        assert_eq!(kind, MigrationKind::Live);
        assert!(plan.est_downtime.as_secs_f64() <= 2.0);

        // Hot guest, 2 s SLO: pre-copy cannot converge; post-copy's fixed
        // handover does.
        let mut hot = base_inputs();
        hot.working_set_fraction = 0.95;
        hot.page_write_rate = 220_000.0;
        let (kind, plan) = select_mechanism(&hot, 2.0, true).unwrap();
        assert_eq!(kind, MigrationKind::PostCopy);
        assert!(plan.est_downtime.as_secs_f64() <= 2.0);

        // Hot guest, post-copy forbidden, tight SLO: no mechanism fits.
        assert!(select_mechanism(&hot, 2.0, false).is_none());

        // Batch window (10 min outage fine): live still preferred, but a
        // non-live-only SLO is also satisfiable.
        let (kind, _) = select_mechanism(&hot, 600.0, false).unwrap();
        assert_eq!(
            kind,
            MigrationKind::Live,
            "pre-copy's long stop-and-copy fits 600s"
        );
    }

    #[test]
    fn plan_matches_simulation_within_tolerance() {
        // The planner must agree with the full engine on the idle-host
        // live migration: same bandwidth regime, same round structure.
        use std::collections::BTreeMap;
        use std::sync::Arc;
        use wavm3_cluster::{hardware, vm_instances, Cluster};
        use wavm3_migration::MigrationSimulation;
        use wavm3_simkit::RngFactory;
        use wavm3_workloads::{MatMulWorkload, Workload};

        let (s_spec, t_spec) = hardware::pair(MachineSet::M);
        let mut cluster = Cluster::new(Link::gigabit());
        let src = cluster.add_host(s_spec);
        let dst = cluster.add_host(t_spec);
        let vm = cluster.boot_vm(src, vm_instances::migrating_cpu());
        let mut workloads: BTreeMap<_, Arc<dyn Workload>> = BTreeMap::new();
        workloads.insert(vm, Arc::new(MatMulWorkload::full(4)));
        let record = MigrationSimulation::new(
            cluster,
            workloads,
            vm,
            src,
            dst,
            MigrationConfig::live(),
            RngFactory::new(5),
        )
        .run();

        let plan = plan_migration(&base_inputs());
        let sim_ts = record.phases.transfer().as_secs_f64();
        let plan_ts = plan.phases.transfer().as_secs_f64();
        assert!(
            (sim_ts - plan_ts).abs() / sim_ts < 0.15,
            "transfer: sim {sim_ts}s vs plan {plan_ts}s"
        );
        let byte_err =
            (record.total_bytes as f64 - plan.est_bytes as f64).abs() / record.total_bytes as f64;
        assert!(
            byte_err < 0.1,
            "bytes: sim {} vs plan {}",
            record.total_bytes,
            plan.est_bytes
        );
    }
}
