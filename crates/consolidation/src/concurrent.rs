//! Concurrent-migration planning (extension; Rybina et al., the paper's
//! ref. \[14\], analyse exactly this question for live migration).
//!
//! When a consolidation plan moves several VMs between the same host pair,
//! the manager can run the migrations **sequentially** (each stream gets
//! the whole link) or **concurrently** (streams share the link; when one
//! finishes, the survivors speed up). This module prices both schedules
//! analytically on top of [`plan_migration`](crate::plan_migration)'s
//! bandwidth model.

use crate::planner::{plan_migration, PlannerInputs};
use serde::{Deserialize, Serialize};

/// One stream's predicted completion under a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamCompletion {
    /// Index into the input slice.
    pub stream: usize,
    /// Seconds from transfer start until this stream's state is fully
    /// moved.
    pub completion_s: f64,
    /// Bytes this stream moves.
    pub bytes: u64,
}

/// Predicted outcome of a multi-VM transfer schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// Per-stream completions, input order.
    pub completions: Vec<StreamCompletion>,
    /// Time until the last stream finishes (the makespan).
    pub makespan_s: f64,
    /// Mean completion time across streams.
    pub mean_completion_s: f64,
}

/// Bytes each stream must move, taken from its single-stream plan (so
/// pre-copy resends are priced in).
fn stream_bytes(inputs: &[PlannerInputs]) -> Vec<f64> {
    inputs
        .iter()
        .map(|i| plan_migration(i).est_bytes as f64)
        .collect()
}

/// Whole-link bandwidth available to migration traffic for each stream if
/// it ran alone (CPU-coupled, per its own plan).
fn stream_solo_bw(inputs: &[PlannerInputs]) -> Vec<f64> {
    inputs
        .iter()
        .map(|i| plan_migration(i).est_bandwidth_bps.max(1.0))
        .collect()
}

/// Sequential schedule: streams run one after another at their solo
/// bandwidth; stream `k` completes after the sum of the first `k` transfer
/// times.
pub fn plan_sequential(inputs: &[PlannerInputs]) -> SchedulePlan {
    assert!(!inputs.is_empty(), "need at least one stream");
    let bytes = stream_bytes(inputs);
    let bw = stream_solo_bw(inputs);
    let mut t = 0.0;
    let mut completions = Vec::with_capacity(inputs.len());
    for (i, (&b, &w)) in bytes.iter().zip(&bw).enumerate() {
        t += b / w;
        completions.push(StreamCompletion {
            stream: i,
            completion_s: t,
            bytes: b as u64,
        });
    }
    finish(completions)
}

/// Concurrent schedule: active streams share the link equally (a fair
/// TCP-like split of the *minimum* solo bandwidth — the CPU bottleneck
/// binds all streams at once); when a stream drains, the rest speed up.
pub fn plan_concurrent(inputs: &[PlannerInputs]) -> SchedulePlan {
    assert!(!inputs.is_empty(), "need at least one stream");
    let bytes = stream_bytes(inputs);
    let bw = stream_solo_bw(inputs);
    // The shared pipe: the link can move at most the best solo rate, and
    // concurrent streams additionally contend for migration CPU, which we
    // approximate by capping the aggregate at the *minimum* solo rate
    // (every stream pays the coupled-CPU price simultaneously).
    let aggregate = bw.iter().copied().fold(f64::INFINITY, f64::min);
    let mut remaining: Vec<f64> = bytes.clone();
    let mut done: Vec<Option<f64>> = vec![None; inputs.len()];
    let mut t = 0.0;
    loop {
        let active: Vec<usize> = (0..remaining.len())
            .filter(|&i| done[i].is_none())
            .collect();
        if active.is_empty() {
            break;
        }
        let share = aggregate / active.len() as f64;
        // Next event: the active stream with the least remaining bytes.
        let (next, &min_rem) = active
            .iter()
            .map(|&i| (i, &remaining[i]))
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("active is non-empty");
        let dt = min_rem / share;
        t += dt;
        for &i in &active {
            remaining[i] -= share * dt;
        }
        remaining[next] = 0.0;
        done[next] = Some(t);
    }
    let completions = bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| StreamCompletion {
            stream: i,
            completion_s: done[i].expect("all streams finish"),
            bytes: b as u64,
        })
        .collect();
    finish(completions)
}

fn finish(completions: Vec<StreamCompletion>) -> SchedulePlan {
    let makespan_s = completions
        .iter()
        .map(|c| c.completion_s)
        .fold(0.0, f64::max);
    let mean_completion_s =
        completions.iter().map(|c| c.completion_s).sum::<f64>() / completions.len() as f64;
    SchedulePlan {
        completions,
        makespan_s,
        mean_completion_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_cluster::{Link, MachineSet};
    use wavm3_migration::{MigrationConfig, MigrationKind};

    fn cpu_stream() -> PlannerInputs {
        PlannerInputs {
            kind: MigrationKind::Live,
            machine_set: MachineSet::M,
            idle_power_w: 430.0,
            ram_mib: 4096,
            vcpus: 4,
            vm_cpu_fraction: 1.0,
            working_set_fraction: 0.015,
            page_write_rate: 400.0,
            source_other_cores: 0.0,
            target_other_cores: 0.0,
            source_capacity: 32.0,
            target_capacity: 32.0,
            link: Link::gigabit(),
            config: MigrationConfig::live(),
        }
    }

    #[test]
    fn identical_streams_same_makespan_both_schedules() {
        // Equal streams over a fixed pipe: total bytes / aggregate rate is
        // schedule-independent, so makespans coincide…
        let inputs = vec![cpu_stream(), cpu_stream(), cpu_stream()];
        let seq = plan_sequential(&inputs);
        let conc = plan_concurrent(&inputs);
        assert!(
            (seq.makespan_s - conc.makespan_s).abs() / seq.makespan_s < 0.01,
            "seq {} vs conc {}",
            seq.makespan_s,
            conc.makespan_s
        );
        // …but sequential completes VMs earlier on average (Rybina's
        // observation: migrate one by one).
        assert!(
            seq.mean_completion_s < conc.mean_completion_s,
            "sequential mean {} must beat concurrent {}",
            seq.mean_completion_s,
            conc.mean_completion_s
        );
    }

    #[test]
    fn concurrent_finishes_small_streams_first() {
        let mut small = cpu_stream();
        small.ram_mib = 512;
        let inputs = vec![cpu_stream(), small];
        let conc = plan_concurrent(&inputs);
        assert!(
            conc.completions[1].completion_s < conc.completions[0].completion_s,
            "the 512 MiB stream drains first"
        );
        assert_eq!(conc.completions.len(), 2);
        assert!(conc.completions[1].bytes < conc.completions[0].bytes);
    }

    #[test]
    fn loaded_source_slows_both_schedules() {
        let mut loaded = cpu_stream();
        loaded.source_other_cores = 32.0;
        let fast = plan_sequential(&[cpu_stream(), cpu_stream()]);
        let slow = plan_sequential(&[loaded, loaded]);
        assert!(slow.makespan_s > fast.makespan_s);
    }

    #[test]
    fn completion_order_is_consistent() {
        let inputs = vec![cpu_stream(), cpu_stream()];
        for plan in [plan_sequential(&inputs), plan_concurrent(&inputs)] {
            assert!(plan.makespan_s >= plan.mean_completion_s);
            for c in &plan.completions {
                assert!(c.completion_s > 0.0);
                assert!(c.completion_s <= plan.makespan_s + 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_input_panics() {
        plan_sequential(&[]);
    }
}
