//! Data-centre horizon analysis: does the consolidation plan pay for
//! itself, migrations included?
//!
//! The paper's motivation (§I) is workload consolidation — pack VMs onto
//! fewer machines and power the rest off, *if* the migration energy
//! amortises. This module runs that trade end to end over a time horizon:
//!
//! * **baseline** — nobody moves; every host keeps drawing its steady
//!   workload power for the whole horizon;
//! * **consolidated** — the manager's plan executes (each migration fully
//!   simulated), emptied hosts power off, and the survivors draw their
//!   (higher) packed steady power for the rest of the horizon.

use crate::executor::{execute_plan, workload_for, ExecutedMove, MoveOutcome};
use crate::policy::{ConsolidationManager, Move, VmLoad};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wavm3_cluster::{Cluster, HostId, VmId};
use wavm3_migration::MigrationConfig;
use wavm3_power::{ground_truth_power, PowerInputs};
use wavm3_simkit::{RngFactory, SimTime};

/// Outcome of the horizon analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizonReport {
    /// Analysis horizon, seconds.
    pub horizon_s: f64,
    /// Energy with no consolidation, joules.
    pub baseline_j: f64,
    /// Energy with the plan executed (migrations + packed steady state),
    /// joules.
    pub consolidated_j: f64,
    /// The migrations' share of the consolidated energy, joules.
    pub migration_j: f64,
    /// Hosts that end the horizon powered off.
    pub hosts_powered_off: Vec<HostId>,
    /// The executed moves.
    pub moves: Vec<ExecutedMove>,
}

impl HorizonReport {
    /// Net saving over the horizon, joules (negative = consolidation lost).
    pub fn saving_j(&self) -> f64 {
        self.baseline_j - self.consolidated_j
    }

    /// Horizon at which the plan breaks even, seconds (`None` when the
    /// steady-state power is not actually reduced).
    pub fn breakeven_horizon_s(&self) -> Option<f64> {
        // saving(h) = (P_base − P_packed)·(h − t_mig) − extra_migration.
        // Solve linearly from two evaluations encoded in the report.
        let t_mig: f64 = self.moves.iter().map(|m| m.window_s).sum();
        if self.horizon_s <= t_mig {
            return None;
        }
        let steady_rate =
            (self.saving_j() + self.migration_overhead_j()) / (self.horizon_s - t_mig);
        if steady_rate <= 0.0 {
            None
        } else {
            Some(t_mig + self.migration_overhead_j() / steady_rate)
        }
    }

    /// Migration energy in excess of what the involved hosts would have
    /// burned anyway during the migration windows.
    fn migration_overhead_j(&self) -> f64 {
        // Approximated as the difference between the consolidated and
        // baseline totals plus the steady saving over the post-migration
        // period; exposed via breakeven only.
        let t_mig: f64 = self.moves.iter().map(|m| m.window_s).sum();
        let base_rate = self.baseline_j / self.horizon_s;
        (self.migration_j - base_rate * t_mig).max(0.0)
    }
}

/// Steady-state power of one host given the loads of its resident VMs.
fn host_steady_power(cluster: &Cluster, loads: &BTreeMap<VmId, VmLoad>, host: HostId) -> f64 {
    let h = cluster.host(host);
    let mut write_rate = 0.0;
    for vm in h.vms() {
        if let Some(l) = loads.get(&vm.id) {
            let w = workload_for(l);
            write_rate += w.page_write_rate(SimTime::ZERO);
        }
    }
    let inputs = PowerInputs {
        cpu_utilisation: h.utilisation(),
        nic_utilisation: 0.0,
        mem_activity: (write_rate / wavm3_migration::simulation::PEAK_PAGE_WRITE_RATE).min(1.0),
        service_w: 0.0,
    };
    ground_truth_power(&h.spec.power, inputs)
}

/// Total steady power of the whole cluster (all hosts on), watts.
pub fn cluster_steady_power(cluster: &Cluster, loads: &BTreeMap<VmId, VmLoad>) -> f64 {
    cluster
        .hosts()
        .iter()
        .map(|h| host_steady_power(cluster, loads, h.id))
        .sum()
}

/// Run the horizon analysis: plan with `manager`, execute every move in the
/// simulator, power off emptied hosts, and integrate both worlds' energy.
pub fn run_horizon(
    cluster: &Cluster,
    loads: &BTreeMap<VmId, VmLoad>,
    manager: &ConsolidationManager<'_>,
    horizon_s: f64,
    rng: &RngFactory,
) -> HorizonReport {
    assert!(horizon_s > 0.0, "horizon must be positive");
    // Demands must reflect the loads before utilisation is read.
    let mut world = cluster.clone();
    for h in 0..world.hosts().len() {
        let ids: Vec<VmId> = world.hosts()[h].vms().iter().map(|v| v.id).collect();
        for id in ids {
            if let (Some(l), Some(vm)) = (loads.get(&id), world.vm_mut(id)) {
                vm.set_cpu_demand(l.cpu_cores);
            }
        }
    }

    let baseline_rate = cluster_steady_power(&world, loads);
    let baseline_j = baseline_rate * horizon_s;

    let moves: Vec<Move> = manager.plan_consolidation(&world, loads);
    let executed = execute_plan(&world, loads, &moves, MigrationConfig::live(), rng);
    let migration_j: f64 = executed.iter().map(|m| m.measured_j).sum();
    let t_mig: f64 = executed.iter().map(|m| m.window_s).sum();

    // Apply the moves that actually completed; emptied hosts power off.
    let mut packed = world.clone();
    for (m, e) in moves.iter().zip(&executed) {
        if e.outcome == MoveOutcome::Executed {
            packed.relocate_vm(m.vm, m.from, m.to);
        }
    }
    let hosts_powered_off: Vec<HostId> = packed
        .hosts()
        .iter()
        .filter(|h| h.vms().is_empty())
        .map(|h| h.id)
        .collect();
    let packed_rate: f64 = packed
        .hosts()
        .iter()
        .filter(|h| !h.vms().is_empty())
        .map(|h| host_steady_power(&packed, loads, h.id))
        .sum();

    // Timeline: hosts not involved in a migration draw baseline power
    // during the migration period; the involved pair's energy is measured.
    // Approximate the uninvolved share by subtracting the pair's steady
    // draw from the baseline rate per move.
    let mut during_migrations_j = 0.0;
    {
        let mut timeline = world.clone();
        for (m, e) in moves.iter().zip(&executed) {
            let pair_rate = host_steady_power(&timeline, loads, m.from)
                + host_steady_power(&timeline, loads, m.to);
            let others_rate = cluster_steady_power(&timeline, loads) - pair_rate;
            during_migrations_j += e.measured_j + others_rate * e.window_s;
            if e.outcome == MoveOutcome::Executed {
                timeline.relocate_vm(m.vm, m.from, m.to);
            }
        }
    }
    let consolidated_j = during_migrations_j + packed_rate * (horizon_s - t_mig).max(0.0);

    HorizonReport {
        horizon_s,
        baseline_j,
        consolidated_j,
        migration_j,
        hosts_powered_off,
        moves: executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use wavm3_cluster::{hardware, vm_instances, Link};
    use wavm3_models::paper;

    fn testbed() -> (Cluster, BTreeMap<VmId, VmLoad>) {
        let mut cluster = Cluster::new(Link::gigabit());
        let h0 = cluster.add_host(hardware::m01());
        let h1 = cluster.add_host(hardware::m02());
        let mut loads = BTreeMap::new();
        let lonely = cluster.boot_vm(h0, vm_instances::migrating_cpu());
        loads.insert(lonely, VmLoad::cpu_bound(4.0));
        for _ in 0..3 {
            let id = cluster.boot_vm(h1, vm_instances::load_cpu());
            loads.insert(id, VmLoad::cpu_bound(4.0));
        }
        (cluster, loads)
    }

    #[test]
    fn long_horizon_pays_off_short_horizon_does_not() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let rng = RngFactory::new(11);

        let hour = run_horizon(&cluster, &loads, &mgr, 3_600.0, &rng);
        assert_eq!(hour.hosts_powered_off.len(), 1, "h0 empties");
        assert!(
            hour.saving_j() > 0.0,
            "an hour must amortise one 4 GiB migration: {:+.0} J",
            hour.saving_j()
        );

        let two_minutes = run_horizon(&cluster, &loads, &mgr, 120.0, &rng);
        assert!(
            two_minutes.saving_j() < hour.saving_j(),
            "short horizons save less"
        );
        // Break-even lands between the two horizons (or below the hour).
        if let Some(be) = hour.breakeven_horizon_s() {
            assert!(be < 3_600.0, "break-even {be:.0}s");
            assert!(be > hour.moves.iter().map(|m| m.window_s).sum::<f64>());
        }
    }

    #[test]
    fn steady_power_reflects_packing() {
        let (cluster, loads) = testbed();
        // Demands set inside run_horizon; here set manually.
        let mut world = cluster.clone();
        for (id, l) in &loads {
            world
                .vm_mut(*id)
                .expect("testbed VM exists")
                .set_cpu_demand(l.cpu_cores);
        }
        let before = cluster_steady_power(&world, &loads);
        // Packing onto one host and dropping the other's idle power wins.
        let vm = world.host(HostId(0)).vms()[0].id;
        world.relocate_vm(vm, HostId(0), HostId(1));
        let after_on = cluster_steady_power(&world, &loads);
        assert!(
            after_on < before,
            "packing reduces total draw: {before} -> {after_on}"
        );
        let survivor = host_steady_power(&world, &loads, HostId(1));
        assert!(
            survivor < after_on,
            "powered-off host contributes nothing beyond idle"
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        run_horizon(&cluster, &loads, &mgr, 0.0, &RngFactory::new(1));
    }
}
