//! Plan execution: carry out a consolidation plan move by move in the
//! full simulator, comparing each model-predicted migration energy with
//! the measured one.
//!
//! This is the last mile of the paper's use case — the manager planned
//! with a model; the executor tells you what the plan actually cost.

use crate::policy::{Move, VmLoad};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wavm3_cluster::{Cluster, VmId};
use wavm3_migration::{MigrationConfig, MigrationRecord, MigrationSimulation};
use wavm3_simkit::RngFactory;
use wavm3_workloads::{MatMulWorkload, PageDirtierWorkload, Workload};

/// Outcome of executing one planned move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutedMove {
    /// The planned move (with the assessment it was accepted under).
    pub planned: Move,
    /// Measured migration energy, both hosts, joules.
    pub measured_j: f64,
    /// Measured downtime, seconds.
    pub downtime_s: f64,
    /// Measured transfer duration, seconds.
    pub transfer_s: f64,
    /// Whole migration window `[ms, me]`, seconds.
    pub window_s: f64,
}

/// Turn a monitoring-layer [`VmLoad`] into a simulator workload.
pub fn workload_for(load: &VmLoad) -> Arc<dyn Workload> {
    if load.page_write_rate >= 10_000.0 {
        Arc::new(
            PageDirtierWorkload::with_ratio(load.working_set_fraction)
                .with_write_rate(load.page_write_rate),
        )
    } else {
        Arc::new(MatMulWorkload::with_cores(load.cpu_cores))
    }
}

/// Execute `moves` sequentially on a working copy of `cluster`, simulating
/// each migration in full. Returns one [`ExecutedMove`] per input move, in
/// order. Panics if a move references a VM that is not where the plan says
/// (i.e. the plan is stale).
pub fn execute_plan(
    cluster: &Cluster,
    loads: &BTreeMap<VmId, VmLoad>,
    moves: &[Move],
    config: MigrationConfig,
    rng: &RngFactory,
) -> Vec<ExecutedMove> {
    let mut world = cluster.clone();
    let mut out = Vec::with_capacity(moves.len());
    for (i, mv) in moves.iter().enumerate() {
        assert_eq!(
            world.locate_vm(mv.vm),
            Some(mv.from),
            "plan is stale: {} not on {}",
            mv.vm,
            mv.from
        );
        let workloads: BTreeMap<VmId, Arc<dyn Workload>> = world
            .hosts()
            .iter()
            .flat_map(|h| h.vms().iter())
            .map(|vm| {
                let load = loads.get(&vm.id).copied().unwrap_or(VmLoad::cpu_bound(0.0));
                (vm.id, workload_for(&load))
            })
            .collect();
        let record: MigrationRecord = MigrationSimulation::new(
            world.clone(),
            workloads,
            mv.vm,
            mv.from,
            mv.to,
            config,
            rng.child(i as u64),
        )
        .run();
        out.push(ExecutedMove {
            planned: mv.clone(),
            measured_j: record.total_energy_j(),
            downtime_s: record.downtime.as_secs_f64(),
            transfer_s: record.phases.transfer().as_secs_f64(),
            window_s: record.phases.total().as_secs_f64(),
        });
        // Commit the move to the working copy for subsequent simulations.
        world.relocate_vm(mv.vm, mv.from, mv.to);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ConsolidationManager, PolicyConfig};
    use wavm3_cluster::{hardware, vm_instances, Link};
    use wavm3_models::paper;

    fn testbed() -> (Cluster, BTreeMap<VmId, VmLoad>) {
        let mut cluster = Cluster::new(Link::gigabit());
        let h0 = cluster.add_host(hardware::m01());
        let h1 = cluster.add_host(hardware::m02());
        let mut loads = BTreeMap::new();
        let lonely = cluster.boot_vm(h0, vm_instances::migrating_cpu());
        cluster.vm_mut(lonely).unwrap().set_cpu_demand(4.0);
        loads.insert(lonely, VmLoad::cpu_bound(4.0));
        for _ in 0..3 {
            let id = cluster.boot_vm(h1, vm_instances::load_cpu());
            cluster.vm_mut(id).unwrap().set_cpu_demand(4.0);
            loads.insert(id, VmLoad::cpu_bound(4.0));
        }
        (cluster, loads)
    }

    #[test]
    fn executes_a_plan_and_reports_energy() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(!moves.is_empty());
        let executed = execute_plan(
            &cluster,
            &loads,
            &moves,
            MigrationConfig::live(),
            &RngFactory::new(3),
        );
        assert_eq!(executed.len(), moves.len());
        for e in &executed {
            assert!(e.measured_j > 1_000.0, "measured {e:?}");
            assert!(e.transfer_s > 10.0);
            assert!(e.downtime_s < 5.0, "live move of a CPU guest");
        }
    }

    #[test]
    fn prediction_tracks_execution_within_tolerance() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let moves = mgr.plan_consolidation(&cluster, &loads);
        let executed = execute_plan(
            &cluster,
            &loads,
            &moves,
            MigrationConfig::live(),
            &RngFactory::new(4),
        );
        for e in &executed {
            // The paper-coefficient model prices a different testbed, so
            // allow a generous envelope; the point is order-of-magnitude
            // consistency of the whole pipeline.
            let ratio = e.planned.assessment.migration_energy_j / e.measured_j;
            assert!(
                (0.3..3.0).contains(&ratio),
                "predicted/measured ratio {ratio:.2} out of envelope: {e:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "plan is stale")]
    fn stale_plan_is_rejected() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let mut moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(!moves.is_empty());
        // Corrupt the plan: pretend the VM is on the other host.
        let (f, t) = (moves[0].from, moves[0].to);
        moves[0].from = t;
        moves[0].to = f;
        execute_plan(
            &cluster,
            &loads,
            &moves,
            MigrationConfig::live(),
            &RngFactory::new(5),
        );
    }

    #[test]
    fn workload_mapping_distinguishes_profiles() {
        let cpu = workload_for(&VmLoad::cpu_bound(3.0));
        assert_eq!(cpu.name(), "matrixmult");
        let mem = workload_for(&VmLoad::memory_hot(0.8));
        assert_eq!(mem.name(), "pagedirtier");
        assert_eq!(mem.working_set_fraction(), 0.8);
    }
}
