//! Plan execution: carry out a consolidation plan move by move in the
//! full simulator, comparing each model-predicted migration energy with
//! the measured one.
//!
//! This is the last mile of the paper's use case — the manager planned
//! with a model; the executor tells you what the plan actually cost.
//!
//! Execution degrades gracefully instead of panicking: a stale move (the
//! VM is no longer where the plan says) is skipped, and an aborted
//! migration (fault injection rolled the VM back to its source) leaves the
//! placement untouched so subsequent moves re-plan around it. Both cases
//! are reported in the [`ExecutedMove::outcome`].

use crate::policy::{Move, VmLoad};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wavm3_cluster::{Cluster, VmId};
use wavm3_migration::{MigrationConfig, MigrationRecord, MigrationSimulation};
use wavm3_simkit::RngFactory;
use wavm3_workloads::{MatMulWorkload, PageDirtierWorkload, Workload};

/// What happened to one planned move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MoveOutcome {
    /// Simulated to completion; the VM now runs on the planned target.
    Executed,
    /// The VM was not where the plan said — the move was skipped without
    /// simulating anything (an earlier abort, or an outdated plan).
    SkippedStale,
    /// The migration ran but an injected fault aborted it; the VM is back
    /// on its source and the measured energy (including rollback) was
    /// spent for nothing.
    Aborted,
}

/// Outcome of executing one planned move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutedMove {
    /// The planned move (with the assessment it was accepted under).
    pub planned: Move,
    /// How the move ended.
    pub outcome: MoveOutcome,
    /// Measured migration energy, both hosts, joules (0 for skipped moves).
    pub measured_j: f64,
    /// Rollback share of the measured energy, joules (aborted moves only).
    pub rollback_j: f64,
    /// Measured downtime, seconds.
    pub downtime_s: f64,
    /// Measured transfer duration, seconds.
    pub transfer_s: f64,
    /// Whole migration window `[ms, me]`, seconds.
    pub window_s: f64,
}

impl ExecutedMove {
    fn skipped(mv: &Move) -> Self {
        ExecutedMove {
            planned: mv.clone(),
            outcome: MoveOutcome::SkippedStale,
            measured_j: 0.0,
            rollback_j: 0.0,
            downtime_s: 0.0,
            transfer_s: 0.0,
            window_s: 0.0,
        }
    }
}

/// Turn a monitoring-layer [`VmLoad`] into a simulator workload.
pub fn workload_for(load: &VmLoad) -> Arc<dyn Workload> {
    if load.page_write_rate >= 10_000.0 {
        Arc::new(
            PageDirtierWorkload::with_ratio(load.working_set_fraction)
                .with_write_rate(load.page_write_rate),
        )
    } else {
        Arc::new(MatMulWorkload::with_cores(load.cpu_cores))
    }
}

/// Execute `moves` sequentially on a working copy of `cluster`, simulating
/// each migration in full. Returns one [`ExecutedMove`] per input move, in
/// order. Stale moves are skipped ([`MoveOutcome::SkippedStale`]); aborted
/// migrations leave the VM on its source ([`MoveOutcome::Aborted`]) so the
/// rest of the plan executes against the placement that actually exists.
pub fn execute_plan(
    cluster: &Cluster,
    loads: &BTreeMap<VmId, VmLoad>,
    moves: &[Move],
    config: MigrationConfig,
    rng: &RngFactory,
) -> Vec<ExecutedMove> {
    let _timer = wavm3_obs::perf::scope("executor.plan");
    let mut world = cluster.clone();
    let mut out = Vec::with_capacity(moves.len());
    for (i, mv) in moves.iter().enumerate() {
        // The whole move lifecycle traces under its own run key, so plan
        // executions interleave deterministically with campaign buffers.
        let executed = wavm3_obs::run_scope(format!("consolidation|move{i:03}"), || {
            if world.locate_vm(mv.vm) != Some(mv.from) {
                wavm3_obs::metrics::counter_add("executor.moves.skipped_stale", 1);
                wavm3_obs::event!(
                    wavm3_obs::Level::Warn, "wavm3_consolidation", "move.skipped_stale",
                    wavm3_simkit::SimTime::ZERO,
                    "vm" => mv.vm.to_string(),
                    "from" => mv.from.to_string(),
                    "to" => mv.to.to_string(),
                );
                return ExecutedMove::skipped(mv);
            }
            let workloads: BTreeMap<VmId, Arc<dyn Workload>> = world
                .hosts()
                .iter()
                .flat_map(|h| h.vms().iter())
                .map(|vm| {
                    let load = loads.get(&vm.id).copied().unwrap_or(VmLoad::cpu_bound(0.0));
                    (vm.id, workload_for(&load))
                })
                .collect();
            let record: MigrationRecord = MigrationSimulation::new(
                world.clone(),
                workloads,
                mv.vm,
                mv.from,
                mv.to,
                config,
                rng.child(i as u64),
            )
            .run();
            let aborted = record.is_aborted();
            let executed = ExecutedMove {
                planned: mv.clone(),
                outcome: if aborted {
                    MoveOutcome::Aborted
                } else {
                    MoveOutcome::Executed
                },
                measured_j: record.total_energy_j(),
                rollback_j: record.rollback_energy_j(),
                downtime_s: record.downtime.as_secs_f64(),
                transfer_s: record.phases.transfer().as_secs_f64(),
                window_s: record.phases.total().as_secs_f64(),
            };
            wavm3_obs::metrics::counter_add(
                if aborted {
                    "executor.moves.aborted"
                } else {
                    "executor.moves.executed"
                },
                1,
            );
            let mut span = wavm3_obs::span(
                wavm3_obs::Level::Info,
                "wavm3_consolidation",
                "move.execute",
                record.phases.ms,
            );
            if span.is_active() {
                span.record("vm", mv.vm.to_string());
                span.record("from", mv.from.to_string());
                span.record("to", mv.to.to_string());
                span.record("outcome", if aborted { "aborted" } else { "executed" });
                span.record("predicted_j", mv.assessment.migration_energy_j);
                span.record("measured_j", executed.measured_j);
                span.record("rollback_j", executed.rollback_j);
                span.record("downtime_s", executed.downtime_s);
            }
            span.close(record.phases.me);
            executed
        });
        // Commit the move to the working copy only when it completed: an
        // aborted migration rolled the VM back to the source.
        if executed.outcome == MoveOutcome::Executed {
            world.relocate_vm(mv.vm, mv.from, mv.to);
        }
        out.push(executed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ConsolidationManager, PolicyConfig};
    use wavm3_cluster::{hardware, vm_instances, Link};
    use wavm3_faults::{AbortFault, FaultConfig};
    use wavm3_migration::MigrationKind;
    use wavm3_models::paper;
    use wavm3_simkit::SimTime;

    fn testbed() -> (Cluster, BTreeMap<VmId, VmLoad>) {
        let mut cluster = Cluster::new(Link::gigabit());
        let h0 = cluster.add_host(hardware::m01());
        let h1 = cluster.add_host(hardware::m02());
        let mut loads = BTreeMap::new();
        let lonely = cluster.boot_vm(h0, vm_instances::migrating_cpu());
        cluster.vm_mut(lonely).unwrap().set_cpu_demand(4.0);
        loads.insert(lonely, VmLoad::cpu_bound(4.0));
        for _ in 0..3 {
            let id = cluster.boot_vm(h1, vm_instances::load_cpu());
            cluster.vm_mut(id).unwrap().set_cpu_demand(4.0);
            loads.insert(id, VmLoad::cpu_bound(4.0));
        }
        (cluster, loads)
    }

    #[test]
    fn executes_a_plan_and_reports_energy() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(!moves.is_empty());
        let executed = execute_plan(
            &cluster,
            &loads,
            &moves,
            MigrationConfig::live(),
            &RngFactory::new(3),
        );
        assert_eq!(executed.len(), moves.len());
        for e in &executed {
            assert_eq!(e.outcome, MoveOutcome::Executed);
            assert!(e.measured_j > 1_000.0, "measured {e:?}");
            assert!(e.transfer_s > 10.0);
            assert!(e.downtime_s < 5.0, "live move of a CPU guest");
        }
    }

    #[test]
    fn prediction_tracks_execution_within_tolerance() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let moves = mgr.plan_consolidation(&cluster, &loads);
        let executed = execute_plan(
            &cluster,
            &loads,
            &moves,
            MigrationConfig::live(),
            &RngFactory::new(4),
        );
        for e in &executed {
            // The paper-coefficient model prices a different testbed, so
            // allow a generous envelope; the point is order-of-magnitude
            // consistency of the whole pipeline.
            let ratio = e.planned.assessment.migration_energy_j / e.measured_j;
            assert!(
                (0.3..3.0).contains(&ratio),
                "predicted/measured ratio {ratio:.2} out of envelope: {e:?}"
            );
        }
    }

    #[test]
    fn stale_moves_are_skipped_not_fatal() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let mut moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(!moves.is_empty());
        // Corrupt the plan: pretend the VM is on the other host.
        let (f, t) = (moves[0].from, moves[0].to);
        moves[0].from = t;
        moves[0].to = f;
        let executed = execute_plan(
            &cluster,
            &loads,
            &moves,
            MigrationConfig::live(),
            &RngFactory::new(5),
        );
        assert_eq!(executed.len(), moves.len());
        assert_eq!(executed[0].outcome, MoveOutcome::SkippedStale);
        assert_eq!(executed[0].measured_j, 0.0);
    }

    #[test]
    fn aborted_moves_leave_placement_untouched() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(!moves.is_empty());
        // A certain abort during the transfer phase.
        let faults = FaultConfig {
            abort: AbortFault {
                probability: 1.0,
                earliest: SimTime::from_secs(20),
                latest: SimTime::from_secs(21),
            },
            ..FaultConfig::default()
        };
        let executed = execute_plan(
            &cluster,
            &loads,
            &moves,
            MigrationConfig::with_faults(MigrationKind::Live, faults),
            &RngFactory::new(6),
        );
        assert_eq!(executed[0].outcome, MoveOutcome::Aborted);
        assert!(
            executed[0].rollback_j > 0.0,
            "aborting charges rollback energy: {:?}",
            executed[0]
        );
        // The rollback is part of (not on top of) the total measured energy.
        assert!(executed[0].rollback_j < executed[0].measured_j);
    }

    #[test]
    fn workload_mapping_distinguishes_profiles() {
        let cpu = workload_for(&VmLoad::cpu_bound(3.0));
        assert_eq!(cpu.name(), "matrixmult");
        let mem = workload_for(&VmLoad::memory_hot(0.8));
        assert_eq!(mem.name(), "pagedirtier");
        assert_eq!(mem.working_set_fraction(), 0.8);
    }
}
