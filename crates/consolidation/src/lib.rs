//! # wavm3-consolidation — model-driven workload consolidation
//!
//! The application the paper builds WAVM3 *for* (§I, §VIII): a
//! consolidation manager must decide whether migrating a VM saves energy —
//! the steady-state saving of packing machines tighter (and switching the
//! emptied ones off) against the one-off energy cost of the migration
//! itself. The paper's closing example: *"one may think not to consolidate
//! a VM with an high dirtying ratio to a host that is running a lot of CPU
//! intensive workloads"* — a decision only a workload-aware model can make.
//!
//! Components:
//!
//! * [`planner`] — an **analytic pre-copy estimator**: predicts transfer
//!   time, rounds, downtime and bytes for a contemplated migration without
//!   running the simulator, and synthesises the feature timeline that an
//!   [`EnergyModel`](wavm3_models::EnergyModel) needs to price it;
//! * [`policy`] — the consolidation manager: enumerates candidate moves,
//!   prices them with a pluggable energy model, and greedily empties
//!   under-utilised hosts when the migration cost amortises within a
//!   configurable horizon.

//! ## Example
//!
//! ```
//! use wavm3_cluster::{Link, MachineSet};
//! use wavm3_consolidation::{plan_migration, PlannerInputs};
//! use wavm3_migration::{MigrationConfig, MigrationKind};
//!
//! // Price a live migration of a hot-memory guest without simulating it.
//! let plan = plan_migration(&PlannerInputs {
//!     kind: MigrationKind::Live,
//!     machine_set: MachineSet::M,
//!     idle_power_w: 430.0,
//!     ram_mib: 4096,
//!     vcpus: 1,
//!     vm_cpu_fraction: 1.0,
//!     working_set_fraction: 0.95,
//!     page_write_rate: 220_000.0,
//!     source_other_cores: 0.0,
//!     target_other_cores: 0.0,
//!     source_capacity: 32.0,
//!     target_capacity: 32.0,
//!     link: Link::gigabit(),
//!     config: MigrationConfig::live(),
//! });
//! // Non-convergent dirtying: a long stop-and-copy is predicted.
//! assert!(plan.est_downtime.as_secs_f64() > 10.0);
//! ```

pub mod concurrent;
pub mod datacenter;
pub mod evaluation;
pub mod executor;
pub mod planner;
pub mod policy;

pub use concurrent::{plan_concurrent, plan_sequential, SchedulePlan, StreamCompletion};
pub use datacenter::{cluster_steady_power, run_horizon, HorizonReport};
pub use evaluation::{agreement_rate, evaluate_decisions, CandidateMove, DecisionOutcome};
pub use executor::{execute_plan, workload_for, ExecutedMove, MoveOutcome};
pub use planner::{plan_migration, select_mechanism, MigrationPlan, PlannerInputs};
pub use policy::{ConsolidationManager, HostLoad, Move, MoveAssessment, PolicyConfig, VmLoad};
