//! Decision-quality evaluation: does a better energy model make better
//! consolidation decisions?
//!
//! The paper's closing argument (§VIII) is that models ignoring workload
//! "may not be able to provide the same accuracy in predictions" and hence
//! mislead the consolidation manager. This module makes the claim
//! measurable: for a set of candidate moves it compares each model's
//! accept/reject decision (migration cost vs. break-even horizon) against
//! an *oracle* that actually executes the move in the simulator and
//! measures the true migration energy.

use crate::planner::{plan_migration, PlannerInputs};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wavm3_cluster::{hardware, vm_instances, Cluster, Link, MachineSet, VmId};
use wavm3_migration::{MigrationConfig, MigrationKind, MigrationSimulation};
use wavm3_models::{EnergyModel, HostRole};
use wavm3_simkit::RngFactory;
use wavm3_workloads::{MatMulWorkload, PageDirtierWorkload, Workload};

/// A candidate consolidation move to price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateMove {
    /// Human label ("cpu idle", "mem95 loaded-src", …).
    pub label: String,
    /// `Some(ratio)` → memory-hot migrant; `None` → CPU-bound migrant.
    pub mem_ratio: Option<f64>,
    /// `load-cpu` VMs on the source beside the migrant.
    pub source_load_vms: usize,
}

impl CandidateMove {
    /// The default evaluation slate: cheap, loaded, and hot moves.
    pub fn slate() -> Vec<CandidateMove> {
        vec![
            CandidateMove {
                label: "cpu idle".into(),
                mem_ratio: None,
                source_load_vms: 0,
            },
            CandidateMove {
                label: "cpu loaded-src".into(),
                mem_ratio: None,
                source_load_vms: 7,
            },
            CandidateMove {
                label: "mem 35%".into(),
                mem_ratio: Some(0.35),
                source_load_vms: 0,
            },
            CandidateMove {
                label: "mem 95%".into(),
                mem_ratio: Some(0.95),
                source_load_vms: 0,
            },
            CandidateMove {
                label: "mem 95% loaded-src".into(),
                mem_ratio: Some(0.95),
                source_load_vms: 7,
            },
        ]
    }

    fn planner_inputs(&self) -> PlannerInputs {
        PlannerInputs {
            kind: MigrationKind::Live,
            machine_set: MachineSet::M,
            idle_power_w: hardware::m01().power.idle_w,
            ram_mib: 4096,
            vcpus: if self.mem_ratio.is_some() { 1 } else { 4 },
            vm_cpu_fraction: 1.0,
            working_set_fraction: self.mem_ratio.unwrap_or(0.015),
            page_write_rate: if self.mem_ratio.is_some() {
                220_000.0
            } else {
                400.0
            },
            source_other_cores: self.source_load_vms as f64 * 4.0,
            target_other_cores: 0.0,
            source_capacity: 32.0,
            target_capacity: 32.0,
            link: Link::gigabit(),
            config: MigrationConfig::live(),
        }
    }

    /// Execute the move for real and return the measured migration energy
    /// `E_migr` over `[ms, me]`, both hosts, joules — the quantity the
    /// paper's models predict and the consolidation manager budgets.
    pub fn simulate_migration_energy(&self, seed: u64) -> f64 {
        let (s_spec, t_spec) = hardware::pair(MachineSet::M);
        let mut cluster = Cluster::new(Link::gigabit());
        let src = cluster.add_host(s_spec);
        let dst = cluster.add_host(t_spec);
        let mut workloads: BTreeMap<VmId, Arc<dyn Workload>> = BTreeMap::new();
        let migrant = match self.mem_ratio {
            Some(r) => {
                let id = cluster.boot_vm(src, vm_instances::migrating_mem());
                workloads.insert(id, Arc::new(PageDirtierWorkload::with_ratio(r)));
                id
            }
            None => {
                let id = cluster.boot_vm(src, vm_instances::migrating_cpu());
                workloads.insert(id, Arc::new(MatMulWorkload::full(4)));
                id
            }
        };
        for i in 0..self.source_load_vms {
            let id = cluster.boot_vm(src, vm_instances::load_cpu());
            workloads.insert(
                id,
                Arc::new(MatMulWorkload::full(4).with_phase(i as f64 * 0.137)),
            );
        }
        let record = MigrationSimulation::new(
            cluster,
            workloads,
            migrant,
            src,
            dst,
            MigrationConfig::live(),
            RngFactory::new(seed),
        )
        .run();
        record.total_energy_j()
    }
}

/// One model's verdict on one candidate, versus the oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionOutcome {
    /// Candidate label.
    pub candidate: String,
    /// Model name.
    pub model: String,
    /// Model-predicted migration energy, joules.
    pub predicted_j: f64,
    /// Simulator-measured migration energy, joules.
    pub simulated_j: f64,
    /// Model's accept/reject under the break-even budget.
    pub accept: bool,
    /// Oracle's accept/reject (same budget, true energy).
    pub oracle_accept: bool,
}

impl DecisionOutcome {
    /// Did the model agree with the oracle?
    pub fn agrees(&self) -> bool {
        self.accept == self.oracle_accept
    }
}

/// Price every candidate under `model` against a fixed energy budget
/// (typically an idle-power saving times a break-even horizon).
pub fn evaluate_decisions(
    model: &dyn EnergyModel,
    candidates: &[CandidateMove],
    budget_j: f64,
    seed: u64,
) -> Vec<DecisionOutcome> {
    candidates
        .iter()
        .enumerate()
        .map(|(i, cand)| {
            let plan = plan_migration(&cand.planner_inputs());
            let record = plan.to_record();
            let predicted_j = model.predict_energy(HostRole::Source, &record)
                + model.predict_energy(HostRole::Target, &record);
            let simulated_j = cand.simulate_migration_energy(seed ^ (i as u64) << 20);
            DecisionOutcome {
                candidate: cand.label.clone(),
                model: model.name().to_string(),
                predicted_j,
                simulated_j,
                accept: predicted_j <= budget_j,
                oracle_accept: simulated_j <= budget_j,
            }
        })
        .collect()
}

/// Fraction of candidates on which the model agreed with the oracle.
pub fn agreement_rate(outcomes: &[DecisionOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 1.0;
    }
    outcomes.iter().filter(|o| o.agrees()).count() as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slate_spans_cheap_and_expensive_moves() {
        let slate = CandidateMove::slate();
        assert!(slate.len() >= 4);
        let cheap = slate[0].simulate_migration_energy(9);
        let hot = slate
            .iter()
            .find(|c| c.label == "mem 95% loaded-src")
            .unwrap()
            .simulate_migration_energy(9);
        assert!(
            hot > 2.0 * cheap,
            "the slate must discriminate: cheap {cheap:.0} J vs hot {hot:.0} J"
        );
    }

    #[test]
    fn oracle_outcome_depends_on_budget() {
        let cand = &CandidateMove::slate()[0];
        let actual = cand.simulate_migration_energy(4);
        assert!(actual > 0.0, "migration always costs something: {actual}");
    }
}
