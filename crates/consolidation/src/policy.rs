//! The consolidation manager.
//!
//! Greedy consolidation in the style the paper motivates: try to empty the
//! least-utilised hosts by migrating their VMs onto better-utilised ones,
//! but only when the model-predicted migration energy amortises against
//! the idle power of the machine that can then be switched off.
//!
//! The manager is generic over the [`EnergyModel`], which is exactly the
//! paper's point: a workload-blind model (LIU/STRUNK) prices a hot-memory
//! VM's migration like any other and happily recommends moves whose real
//! cost is multiples of the estimate; WAVM3 sees the dirtying ratio and the
//! destination's CPU load and prices them apart.

use crate::planner::{plan_migration, MigrationPlan, PlannerInputs};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wavm3_cluster::{Cluster, HostId, MachineSet, VmId};
use wavm3_migration::{MigrationConfig, MigrationKind};
use wavm3_models::{EnergyModel, HostRole};

/// Workload descriptor of one VM, as the monitoring layer reports it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmLoad {
    /// CPU demand, cores.
    pub cpu_cores: f64,
    /// Working-set fraction of its memory, `[0, 1]`.
    pub working_set_fraction: f64,
    /// Page-write rate, pages/s.
    pub page_write_rate: f64,
}

impl VmLoad {
    /// A CPU-bound VM (matrixmult-like).
    pub fn cpu_bound(cores: f64) -> Self {
        VmLoad {
            cpu_cores: cores,
            working_set_fraction: 0.015,
            page_write_rate: 400.0,
        }
    }

    /// A memory-hot VM (pagedirtier-like).
    pub fn memory_hot(ratio: f64) -> Self {
        VmLoad {
            cpu_cores: 1.0,
            working_set_fraction: ratio,
            page_write_rate: 220_000.0,
        }
    }
}

/// Utilisation digest of one host (reporting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostLoad {
    /// Host id.
    pub host: HostId,
    /// CPU utilisation `[0, 1]`.
    pub utilisation: f64,
    /// Resident VM count.
    pub vms: usize,
}

/// The economics of one contemplated move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoveAssessment {
    /// Model-predicted energy of the migration window, both hosts, joules.
    pub migration_energy_j: f64,
    /// Model-predicted energy the hosts would have burned anyway, joules.
    pub baseline_energy_j: f64,
    /// `migration − baseline` (the true cost of the move), joules.
    pub extra_energy_j: f64,
    /// Steady-state power reclaimed if the source empties and powers off,
    /// watts.
    pub steady_saving_w: f64,
    /// Seconds for the saving to pay the cost back (∞ when no saving).
    pub breakeven_s: f64,
    /// Predicted downtime of the move.
    pub downtime_s: f64,
}

/// One recommended migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Move {
    /// VM to migrate.
    pub vm: VmId,
    /// Current host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// Its economics.
    pub assessment: MoveAssessment,
}

/// Tunables of the greedy policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Accept a host-emptying plan only when the total extra energy pays
    /// back within this horizon, seconds.
    pub breakeven_horizon_s: f64,
    /// Do not fill destinations beyond this CPU utilisation.
    pub target_max_util: f64,
    /// Machine set (for planner metadata).
    pub machine_set: MachineSet,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            breakeven_horizon_s: 1_800.0,
            target_max_util: 0.9,
            machine_set: MachineSet::M,
        }
    }
}

/// The consolidation manager: prices moves with a pluggable energy model.
pub struct ConsolidationManager<'m> {
    model: &'m dyn EnergyModel,
    config: PolicyConfig,
}

impl<'m> ConsolidationManager<'m> {
    /// A manager deciding with `model` (trained for **live** migration).
    pub fn new(model: &'m dyn EnergyModel, config: PolicyConfig) -> Self {
        ConsolidationManager { model, config }
    }

    /// Utilisation digest of every host.
    pub fn host_loads(cluster: &Cluster) -> Vec<HostLoad> {
        cluster
            .hosts()
            .iter()
            .map(|h| HostLoad {
                host: h.id,
                utilisation: h.utilisation(),
                vms: h.vms().len(),
            })
            .collect()
    }

    /// Build planner inputs for moving `vm` from `from` to `to`.
    fn planner_inputs(
        &self,
        cluster: &Cluster,
        loads: &BTreeMap<VmId, VmLoad>,
        vm: VmId,
        from: HostId,
        to: HostId,
    ) -> PlannerInputs {
        let v = cluster.vm(vm).expect("vm exists");
        let load = loads.get(&vm).copied().unwrap_or(VmLoad::cpu_bound(0.0));
        let other = |host: HostId| {
            cluster
                .host(host)
                .vms()
                .iter()
                .filter(|x| x.id != vm)
                .map(|x| loads.get(&x.id).map(|l| l.cpu_cores).unwrap_or(0.0))
                .sum::<f64>()
        };
        PlannerInputs {
            kind: MigrationKind::Live,
            machine_set: self.config.machine_set,
            idle_power_w: cluster.host(from).spec.power.idle_w,
            ram_mib: v.spec.ram_mib,
            vcpus: v.spec.vcpus,
            vm_cpu_fraction: (load.cpu_cores / v.spec.vcpus.max(1) as f64).clamp(0.0, 1.0),
            working_set_fraction: load.working_set_fraction,
            page_write_rate: load.page_write_rate,
            source_other_cores: other(from),
            target_other_cores: other(to),
            source_capacity: cluster.host(from).spec.cpu_capacity(),
            target_capacity: cluster.host(to).spec.cpu_capacity(),
            link: cluster.link,
            config: MigrationConfig::live(),
        }
    }

    /// Price one contemplated move.
    pub fn assess_move(
        &self,
        cluster: &Cluster,
        loads: &BTreeMap<VmId, VmLoad>,
        vm: VmId,
        from: HostId,
        to: HostId,
    ) -> (MigrationPlan, MoveAssessment) {
        let inputs = self.planner_inputs(cluster, loads, vm, from, to);
        let plan = plan_migration(&inputs);
        let record = plan.to_record();
        let migration_energy_j = self.model.predict_energy(HostRole::Source, &record)
            + self.model.predict_energy(HostRole::Target, &record);

        // Baseline: the same window with no migration activity. The
        // transfer-phase law with zero bandwidth and dirty ratio is the
        // closest thing a phase-structured model has to a "plain hosting"
        // power law (its constant carries the least service power).
        let mut baseline = record.clone();
        for s in &mut baseline.samples {
            if s.phase != wavm3_power::MigrationPhase::NormalExecution {
                s.phase = wavm3_power::MigrationPhase::Transfer;
                s.bandwidth_bps = 0.0;
                s.dirty_ratio = 0.0;
                s.cpu_vm = inputs.vm_cpu_fraction;
                s.cpu_source = ((inputs.source_other_cores
                    + inputs.vm_cpu_fraction * inputs.vcpus as f64)
                    / inputs.source_capacity)
                    .clamp(0.0, 1.0);
                s.cpu_target = (inputs.target_other_cores / inputs.target_capacity).clamp(0.0, 1.0);
            }
        }
        let baseline_energy_j = self.model.predict_energy(HostRole::Source, &baseline)
            + self.model.predict_energy(HostRole::Target, &baseline);
        let extra_energy_j = migration_energy_j - baseline_energy_j;

        // Saving: the source's idle draw once it can power off (only if the
        // VM was its last tenant).
        let empties_source = cluster.host(from).vms().len() == 1;
        let steady_saving_w = if empties_source {
            cluster.host(from).spec.power.idle_w
        } else {
            0.0
        };
        let breakeven_s = if steady_saving_w > 0.0 && extra_energy_j > 0.0 {
            extra_energy_j / steady_saving_w
        } else if extra_energy_j <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        let assessment = MoveAssessment {
            migration_energy_j,
            baseline_energy_j,
            extra_energy_j,
            steady_saving_w,
            breakeven_s,
            downtime_s: plan.est_downtime.as_secs_f64(),
        };
        (plan, assessment)
    }

    /// Greedy plan: empty the least-utilised hosts whose total move cost
    /// amortises within the horizon. Returns accepted moves in order.
    pub fn plan_consolidation(
        &self,
        cluster: &Cluster,
        loads: &BTreeMap<VmId, VmLoad>,
    ) -> Vec<Move> {
        let mut accepted = Vec::new();
        let mut digest = Self::host_loads(cluster);
        digest.sort_by(|a, b| a.utilisation.partial_cmp(&b.utilisation).expect("no NaN"));
        // Working copy so accepted moves affect later capacity checks.
        let mut sim = cluster.clone();
        for source in &digest {
            if source.vms == 0 {
                continue;
            }
            let vms: Vec<VmId> = sim.host(source.host).vms().iter().map(|v| v.id).collect();
            let mut moves_for_host = Vec::new();
            let mut total_extra = 0.0;
            let mut feasible = true;
            let source_util = sim.host(source.host).utilisation();
            for vm in vms {
                // Classic FFD packing: among destinations that (a) fit,
                // (b) stay under the utilisation cap and (c) are already
                // busier than the source (never repopulate a host we are
                // trying to empty), pick the fullest; break ties toward
                // the cheaper predicted migration.
                let mut best: Option<(HostId, f64, MoveAssessment)> = None;
                for cand in sim.hosts() {
                    if cand.id == source.host {
                        continue;
                    }
                    let v = sim.vm(vm).expect("vm exists");
                    if !cand.fits_ram(v.spec.ram_mib) {
                        continue;
                    }
                    let cand_util = cand.utilisation();
                    if cand_util <= source_util {
                        continue;
                    }
                    let vm_cores = loads.get(&vm).map(|l| l.cpu_cores).unwrap_or(0.0);
                    let post_util = (cand.cpu_accounting().total_demand() + vm_cores)
                        / cand.spec.cpu_capacity();
                    if post_util > self.config.target_max_util {
                        continue;
                    }
                    let (_, assessment) = self.assess_move(&sim, loads, vm, source.host, cand.id);
                    let better = match &best {
                        None => true,
                        Some((_, u, b)) => {
                            cand_util > *u
                                || (cand_util == *u && assessment.extra_energy_j < b.extra_energy_j)
                        }
                    };
                    if better {
                        best = Some((cand.id, cand_util, assessment));
                    }
                }
                let best = best.map(|(to, _, a)| (to, a));
                match best {
                    Some((to, assessment)) => {
                        total_extra += assessment.extra_energy_j.max(0.0);
                        moves_for_host.push(Move {
                            vm,
                            from: source.host,
                            to,
                            assessment,
                        });
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible || moves_for_host.is_empty() {
                continue;
            }
            let saving_w = sim.host(source.host).spec.power.idle_w;
            let breakeven = total_extra / saving_w;
            if breakeven <= self.config.breakeven_horizon_s {
                for m in &moves_for_host {
                    sim.relocate_vm(m.vm, m.from, m.to);
                }
                accepted.extend(moves_for_host);
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_cluster::{hardware, vm_instances, Link};
    use wavm3_models::paper;

    /// Three m-set hosts: one nearly empty, one mid, one loaded.
    fn testbed() -> (Cluster, BTreeMap<VmId, VmLoad>) {
        let mut cluster = Cluster::new(Link::gigabit());
        let h0 = cluster.add_host(hardware::m01());
        let h1 = cluster.add_host(hardware::m02());
        let h2 = cluster.add_host(hardware::m01());
        let mut loads = BTreeMap::new();
        // h0: one lonely CPU-bound VM (the consolidation candidate).
        let lonely = cluster.boot_vm(h0, vm_instances::migrating_cpu());
        cluster.vm_mut(lonely).unwrap().set_cpu_demand(4.0);
        loads.insert(lonely, VmLoad::cpu_bound(4.0));
        // h1: moderately loaded.
        for _ in 0..3 {
            let id = cluster.boot_vm(h1, vm_instances::load_cpu());
            cluster.vm_mut(id).unwrap().set_cpu_demand(4.0);
            loads.insert(id, VmLoad::cpu_bound(4.0));
        }
        // h2: heavily loaded.
        for _ in 0..7 {
            let id = cluster.boot_vm(h2, vm_instances::load_cpu());
            cluster.vm_mut(id).unwrap().set_cpu_demand(4.0);
            loads.insert(id, VmLoad::cpu_bound(4.0));
        }
        (cluster, loads)
    }

    #[test]
    fn host_loads_report_utilisation_order() {
        let (cluster, _) = testbed();
        let mut loads = ConsolidationManager::host_loads(&cluster);
        loads.sort_by(|a, b| a.utilisation.partial_cmp(&b.utilisation).unwrap());
        assert_eq!(loads[0].vms, 1);
        assert_eq!(loads[2].vms, 7);
    }

    #[test]
    fn assessment_finds_positive_saving_for_lonely_vm() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let vm = cluster.host(HostId(0)).vms()[0].id;
        let (plan, a) = mgr.assess_move(&cluster, &loads, vm, HostId(0), HostId(1));
        assert!(a.migration_energy_j > 0.0);
        assert!(a.steady_saving_w > 300.0, "m-set idles above 300 W");
        assert!(a.breakeven_s.is_finite());
        assert!(plan.est_bytes > 0);
    }

    #[test]
    fn greedy_plan_empties_the_lonely_host() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(!moves.is_empty(), "the lonely VM should be consolidated");
        assert_eq!(moves[0].from, HostId(0));
        assert_ne!(moves[0].to, HostId(0));
    }

    #[test]
    fn hot_memory_vm_to_loaded_host_costs_more() {
        // The paper's closing example: a high-DR VM migrating toward a
        // CPU-loaded host is the expensive case a workload-aware model
        // must price higher.
        let (cluster, mut loads) = testbed();
        let model = paper::wavm3_live();
        let mgr = ConsolidationManager::new(&model, PolicyConfig::default());
        let vm = cluster.host(HostId(0)).vms()[0].id;

        let (_, cpu_to_mid) = mgr.assess_move(&cluster, &loads, vm, HostId(0), HostId(1));
        loads.insert(vm, VmLoad::memory_hot(0.95));
        let (_, hot_to_loaded) = mgr.assess_move(&cluster, &loads, vm, HostId(0), HostId(2));
        assert!(
            hot_to_loaded.migration_energy_j > cpu_to_mid.migration_energy_j,
            "hot-memory move to a loaded host must cost more: {} vs {}",
            hot_to_loaded.migration_energy_j,
            cpu_to_mid.migration_energy_j
        );
        assert!(hot_to_loaded.downtime_s > cpu_to_mid.downtime_s);
    }

    #[test]
    fn respects_target_utilisation_cap() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let cfg = PolicyConfig {
            target_max_util: 0.2, // nothing fits anywhere
            ..PolicyConfig::default()
        };
        let mgr = ConsolidationManager::new(&model, cfg);
        let moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(moves.is_empty(), "no destination satisfies the cap");
    }

    #[test]
    fn breakeven_horizon_vetoes_expensive_plans() {
        let (cluster, loads) = testbed();
        let model = paper::wavm3_live();
        let cfg = PolicyConfig {
            breakeven_horizon_s: 0.001,
            ..PolicyConfig::default()
        };
        let mgr = ConsolidationManager::new(&model, cfg);
        let moves = mgr.plan_consolidation(&cluster, &loads);
        assert!(moves.is_empty(), "nothing amortises in a millisecond");
    }
}
