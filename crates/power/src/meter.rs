//! A simulated Voltech PM1000+ power analyser.
//!
//! The paper's methodology (§V-B): one meter per host on the AC side,
//! sampling at 2 Hz; measurement starts before the migration is issued and
//! continues until readings stabilise (twenty consecutive readings within
//! 0.3 %, the device accuracy); each reading carries the device's noise.
//!
//! The meter wraps the ground-truth signal with Gaussian noise and the
//! display quantisation of the instrument (0.1 W).

use crate::trace::PowerTrace;
use wavm3_simkit::rng::sample_normal;
use wavm3_simkit::{SimDuration, SimTime, StreamRng};

/// The paper's sampling period: 2 Hz → 500 ms.
pub const SAMPLE_PERIOD: SimDuration = SimDuration::from_millis(500);

/// Stabilisation window: twenty consecutive readings…
pub const STABILITY_WINDOW: usize = 20;

/// …within 0.3 % relative spread.
pub const STABILITY_TOLERANCE: f64 = 0.003;

/// Display quantum of the PM1000+ readout, watts.
pub const QUANTUM_W: f64 = 0.1;

/// A power meter attached to one host.
pub struct PowerMeter {
    trace: PowerTrace,
    noise_std_w: f64,
    rng: StreamRng,
    next_sample: SimTime,
}

impl PowerMeter {
    /// Attach a meter to `host`, with the machine's noise level and an
    /// independent random stream.
    pub fn new(host: impl Into<String>, noise_std_w: f64, rng: StreamRng) -> Self {
        PowerMeter {
            trace: PowerTrace::new(host),
            noise_std_w: noise_std_w.max(0.0),
            rng,
            next_sample: SimTime::ZERO,
        }
    }

    /// The instant of the next scheduled sample.
    pub fn next_sample_time(&self) -> SimTime {
        self.next_sample
    }

    /// Take one reading of the ground-truth power `true_watts` at time `t`
    /// and schedule the next sample. Returns the recorded (noisy,
    /// quantised) value.
    pub fn sample(&mut self, t: SimTime, true_watts: f64) -> f64 {
        let noisy = sample_normal(&mut self.rng, true_watts, self.noise_std_w);
        let reading = (noisy / QUANTUM_W).round() * QUANTUM_W;
        let reading = reading.max(0.0);
        self.trace.record(t, reading);
        self.next_sample = t + SAMPLE_PERIOD;
        reading
    }

    /// The paper's stabilisation criterion over the recorded trace.
    pub fn is_stable(&self) -> bool {
        self.trace
            .series
            .is_stable(STABILITY_WINDOW, STABILITY_TOLERANCE)
    }

    /// Read-only access to the accumulating trace.
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Finish the measurement and take the trace.
    pub fn into_trace(self) -> PowerTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavm3_simkit::RngFactory;

    fn meter(noise: f64) -> PowerMeter {
        PowerMeter::new("m01", noise, RngFactory::new(1).stream("meter"))
    }

    #[test]
    fn sampling_advances_schedule() {
        let mut m = meter(0.0);
        assert_eq!(m.next_sample_time(), SimTime::ZERO);
        m.sample(SimTime::ZERO, 500.0);
        assert_eq!(m.next_sample_time(), SimTime::from_millis(500));
        m.sample(SimTime::from_millis(500), 500.0);
        assert_eq!(m.trace().len(), 2);
    }

    #[test]
    fn noiseless_meter_quantises_only() {
        let mut m = meter(0.0);
        let r = m.sample(SimTime::ZERO, 432.1678);
        assert!((r - 432.2).abs() < 1e-9);
    }

    #[test]
    fn noise_has_expected_spread() {
        let mut m = meter(2.5);
        for i in 0..2000 {
            m.sample(SimTime::from_millis(i * 500), 500.0);
        }
        let vals = m.trace().series.values();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let std =
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt();
        assert!((mean - 500.0).abs() < 0.3, "mean {mean}");
        assert!((std - 2.5).abs() < 0.3, "std {std}");
    }

    #[test]
    fn readings_never_negative() {
        let mut m = meter(50.0);
        for i in 0..200 {
            let r = m.sample(SimTime::from_millis(i * 500), 1.0);
            assert!(r >= 0.0);
        }
    }

    #[test]
    fn stabilisation_tracks_signal() {
        let mut m = meter(0.2);
        // Ramp: never stable while moving quickly.
        for i in 0..30 {
            m.sample(SimTime::from_millis(i * 500), 400.0 + 10.0 * i as f64);
        }
        assert!(!m.is_stable());
        // Constant signal with small noise: stabilises after 20 samples.
        for i in 30..55 {
            m.sample(SimTime::from_millis(i * 500), 700.0);
        }
        assert!(m.is_stable());
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            let mut m = PowerMeter::new("m01", 2.0, RngFactory::new(seed).stream("meter"));
            (0..50)
                .map(|i| m.sample(SimTime::from_millis(i * 500), 500.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
