//! A recorded power trace for one host.

use serde::{Deserialize, Serialize};
use wavm3_simkit::{SimTime, TimeSeries};

/// A power trace: watts sampled over time for a named host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    /// Host the trace was taken on (e.g. "m01").
    pub host: String,
    /// The samples (watts).
    pub series: TimeSeries,
}

impl PowerTrace {
    /// An empty trace for `host`.
    pub fn new(host: impl Into<String>) -> Self {
        PowerTrace {
            host: host.into(),
            series: TimeSeries::new(),
        }
    }

    /// Append a reading.
    pub fn record(&mut self, t: SimTime, watts: f64) {
        self.series.push(t, watts);
    }

    /// Number of readings.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when no readings exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Energy in joules over `[from, to]` (trapezoidal).
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> f64 {
        self.series.integrate_between(from, to)
    }

    /// Total energy in joules across the whole trace.
    pub fn total_energy(&self) -> f64 {
        self.series.integrate()
    }

    /// Mean power over `[from, to]`, if any samples fall inside.
    pub fn mean_power_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.series.mean_between(from, to)
    }

    /// Emit `time_s,watts` CSV lines (the format the figure binaries dump).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.len() * 16 + 16);
        out.push_str("time_s,power_w\n");
        for (t, v) in self.series.iter() {
            out.push_str(&format!("{:.3},{:.1}\n", t.as_secs_f64(), v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_integrate() {
        let mut tr = PowerTrace::new("m01");
        tr.record(SimTime::from_secs(0), 500.0);
        tr.record(SimTime::from_secs(10), 500.0);
        assert_eq!(tr.len(), 2);
        assert!((tr.total_energy() - 5000.0).abs() < 1e-9);
        assert!(
            (tr.energy_between(SimTime::from_secs(2), SimTime::from_secs(4)) - 1000.0).abs() < 1e-9
        );
        assert_eq!(
            tr.mean_power_between(SimTime::ZERO, SimTime::from_secs(10)),
            Some(500.0)
        );
    }

    #[test]
    fn csv_shape() {
        let mut tr = PowerTrace::new("m01");
        tr.record(SimTime::from_millis(500), 432.15);
        let csv = tr.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,power_w"));
        assert_eq!(lines.next(), Some("0.500,432.1"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn empty_trace() {
        let tr = PowerTrace::new("o1");
        assert!(tr.is_empty());
        assert_eq!(tr.total_energy(), 0.0);
        assert_eq!(
            tr.mean_power_between(SimTime::ZERO, SimTime::from_secs(1)),
            None
        );
    }
}
