//! # wavm3-power — power synthesis and measurement
//!
//! The measurement side of the reproduction. The paper instruments the AC
//! side of each host with a Voltech PM1000+ power analyser sampling at 2 Hz;
//! we replace the physical testbed with:
//!
//! * a **ground-truth synthesiser** ([`ground_truth`]) that maps a host's
//!   instantaneous resource state (CPU utilisation, NIC activity, memory
//!   contention, migration service activity) to watts — deliberately richer
//!   than any of the candidate regression models (nonlinear CPU term,
//!   separate NIC/memory terms, measurement noise) so the paper's model
//!   comparison stays meaningful;
//! * a **simulated meter** ([`meter`]) sampling at 2 Hz with Gaussian noise
//!   and the PM1000+'s 0.1 W display quantisation, including the paper's
//!   stabilisation rule (20 consecutive readings within 0.3 %);
//! * **phase accounting** ([`phases`]) — the paper's `ms / ts / te / me`
//!   timeline (§IV-A) and per-phase energy integration (Eq. 3–4);
//! * a **telemetry recorder** ([`telemetry`]) standing in for `dstat`.
//!
//! ## Example
//!
//! ```
//! use wavm3_cluster::hardware;
//! use wavm3_power::{ground_truth_power, PowerInputs};
//!
//! let profile = hardware::m01().power;
//! let idle = ground_truth_power(&profile, PowerInputs::idle());
//! let busy = ground_truth_power(&profile, PowerInputs {
//!     cpu_utilisation: 1.0,
//!     nic_utilisation: 0.9,
//!     mem_activity: 0.5,
//!     service_w: 20.0,
//! });
//! assert!(idle >= 400.0 && busy > idle + 300.0);
//! ```

pub mod analytic;
pub mod ground_truth;
pub mod meter;
pub mod phases;
pub mod telemetry;
pub mod trace;

pub use analytic::{OuIntegrator, TermIntegral};
pub use ground_truth::{ground_truth_power, ground_truth_terms, PowerInputs, PowerTerms};
pub use meter::PowerMeter;
pub use phases::{EnergyBreakdown, MigrationPhase, PhaseTimes};
pub use telemetry::{channels, TelemetryRecorder};
pub use trace::PowerTrace;
