//! Closed-form building blocks for the analytic simulation path.
//!
//! The sampled engine materialises a 2 Hz meter trace and integrates it
//! with the trapezoid rule. The analytic path instead integrates the
//! piecewise-constant ground-truth power *exactly* over each phase
//! window: per tick it accumulates `terms × overlap` into a
//! [`TermIntegral`], and the slow OU power wander is integrated via its
//! exact discrete-step moments ([`OuIntegrator`]) instead of stepping the
//! chain sample by sample.

use crate::ground_truth::PowerTerms;
use rand::RngCore;
use wavm3_simkit::rng::sample_normal;

/// Per-term energy accumulated over one phase window on one host,
/// joules. The analytic twin of a term-trace integral: exact for the
/// engine's piecewise-constant power, not a trapezoid approximation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TermIntegral {
    /// Static idle floor.
    pub idle_j: f64,
    /// Dynamic CPU power above the idle floor.
    pub cpu_j: f64,
    /// Memory-bus contention from page dirtying.
    pub mem_dirty_j: f64,
    /// NIC power from migration traffic.
    pub network_j: f64,
    /// Migration service machinery.
    pub service_j: f64,
}

impl TermIntegral {
    /// Accumulate `terms` held constant for `dur_s` seconds.
    #[inline]
    pub fn accumulate(&mut self, terms: &PowerTerms, dur_s: f64) {
        self.idle_j += terms.idle_w * dur_s;
        self.cpu_j += terms.cpu_w * dur_s;
        self.mem_dirty_j += terms.mem_dirty_w * dur_s;
        self.network_j += terms.network_w * dur_s;
        self.service_j += terms.service_w * dur_s;
    }

    /// Sum of the terms.
    pub fn total_j(&self) -> f64 {
        self.idle_j + self.cpu_j + self.mem_dirty_j + self.network_j + self.service_j
    }

    /// Every term scaled by `k` (pro-rata spreading of wander energy).
    pub fn scaled(&self, k: f64) -> TermIntegral {
        TermIntegral {
            idle_j: self.idle_j * k,
            cpu_j: self.cpu_j * k,
            mem_dirty_j: self.mem_dirty_j * k,
            network_j: self.network_j * k,
            service_j: self.service_j * k,
        }
    }
}

/// Exact discrete-step moments of the engine's OU wander chain.
///
/// The sampled engine steps `x_{k+1} = a·x_k + ε_k` once per tick, with
/// `a = 1 − dt/τ` and `ε_k ~ N(0, q)`, `q = σ_std²·(2/τ)·dt`, and adds
/// the *post-step* state `x_{k+1}` to that tick's power. Over a window
/// of `n` ticks the energy contribution is therefore
/// `dt · S` with `S = Σ_{j=1..n} x_j` — a Gaussian whose moments,
/// jointly with the end state `x_n`, are available in closed form:
///
/// ```text
/// S   = x₀·g(n) + noise,        g(n)   = a(1−aⁿ)/(1−a)
/// Var(S)    = q·[n − 2a(1−aⁿ)/(1−a) + a²(1−a²ⁿ)/(1−a²)]/(1−a)²
/// Cov(S,xₙ) = q·[(1−aⁿ)/(1−a) − a(1−a²ⁿ)/(1−a²)]/(1−a)
/// Var(xₙ)   = q·(1−a²ⁿ)/(1−a²)
/// xₙ  = aⁿ·x₀ + noise
/// ```
///
/// [`OuIntegrator::window_sum`] samples `(S, xₙ)` from that joint law in
/// two standard-normal draws, so a whole phase window costs O(1) RNG
/// work regardless of its tick count — the exact replacement for
/// stepping the chain `n` times. The draws come from a caller-provided
/// counter-based stream, keeping the consumption deterministic.
#[derive(Debug, Clone)]
pub struct OuIntegrator<R: RngCore> {
    /// Per-step AR(1) coefficient `1 − dt/τ`.
    a: f64,
    /// Per-step innovation variance `σ_std²·(2/τ)·dt`.
    q: f64,
    /// Current chain state.
    x: f64,
    rng: R,
}

impl<R: RngCore> OuIntegrator<R> {
    /// An integrator for the chain with time constant `tau_s`, stationary
    /// std `std_w` and tick `dt_s`, starting from `x = 0`.
    pub fn new(tau_s: f64, std_w: f64, dt_s: f64, rng: R) -> Self {
        let sigma = std_w * (2.0 / tau_s).sqrt();
        OuIntegrator {
            a: 1.0 - dt_s / tau_s,
            q: sigma * sigma * dt_s,
            x: 0.0,
            rng,
        }
    }

    /// `true` when the chain is degenerate (no noise): every state and
    /// window sum is exactly zero, and no draws are ever consumed.
    pub fn is_quiet(&self) -> bool {
        self.q == 0.0
    }

    /// Current chain state `x_k`.
    pub fn state(&self) -> f64 {
        self.x
    }

    /// Advance `n` steps without integrating (the pre-measurement
    /// lead-in): updates the state from its exact `n`-step law in one
    /// draw and returns nothing.
    pub fn advance(&mut self, n: u64) {
        if n == 0 || self.is_quiet() {
            return;
        }
        let (a, q) = (self.a, self.q);
        let a_n = powi_u64(a, n);
        let var_x = q * geometric_sum(a * a, n);
        self.x = a_n * self.x + sample_normal(&mut self.rng, 0.0, var_x.max(0.0).sqrt());
    }

    /// Advance `n` steps, returning `S = Σ_{j=1..n} x_j` drawn jointly
    /// with the updated end state. Multiply by the tick length for the
    /// window's wander energy.
    pub fn window_sum(&mut self, n: u64) -> f64 {
        if n == 0 || self.is_quiet() {
            return 0.0;
        }
        let (a, q, x0) = (self.a, self.q, self.x);
        let a_n = powi_u64(a, n);
        let one_minus = 1.0 - a;
        // Geometric partial sums shared by every moment below.
        let sum_a = (1.0 - a_n) / one_minus; // Σ_{m=0..n-1} a^m
        let sum_a2 = geometric_sum(a * a, n); // Σ_{m=0..n-1} a^{2m}
        let g = a * sum_a; // Σ_{j=1..n} a^j
        let var_x = q * sum_a2;
        let var_s = q * (n as f64 - 2.0 * a * sum_a + a * a * sum_a2) / (one_minus * one_minus);
        let cov = q * (sum_a - a * sum_a2) / one_minus;

        let u1 = sample_normal(&mut self.rng, 0.0, 1.0);
        let u2 = sample_normal(&mut self.rng, 0.0, 1.0);
        let eps = var_x.max(0.0).sqrt() * u1;
        self.x = a_n * x0 + eps;
        let beta = if var_x > 0.0 { cov / var_x } else { 0.0 };
        let resid = (var_s - beta * cov).max(0.0);
        x0 * g + beta * eps + resid.sqrt() * u2
    }
}

/// `Σ_{m=0..n-1} r^m`, robust at `r == 1`.
fn geometric_sum(r: f64, n: u64) -> f64 {
    if (r - 1.0).abs() < 1e-15 {
        n as f64
    } else {
        (1.0 - powi_u64(r, n)) / (1.0 - r)
    }
}

/// `a^n` by squaring for arbitrary `u64` exponents.
fn powi_u64(a: f64, mut n: u64) -> f64 {
    let mut base = a;
    let mut acc = 1.0;
    while n > 0 {
        if n & 1 == 1 {
            acc *= base;
        }
        base *= base;
        n >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::PowerTerms;
    use wavm3_simkit::RngFactory;

    #[test]
    fn term_integral_accumulates_and_scales() {
        let terms = PowerTerms {
            idle_w: 100.0,
            cpu_w: 50.0,
            mem_dirty_w: 10.0,
            network_w: 5.0,
            service_w: 20.0,
        };
        let mut acc = TermIntegral::default();
        acc.accumulate(&terms, 2.0);
        acc.accumulate(&terms, 0.5);
        assert!((acc.idle_j - 250.0).abs() < 1e-9);
        assert!((acc.total_j() - 2.5 * terms.total_w()).abs() < 1e-9);
        let doubled = acc.scaled(2.0);
        assert!((doubled.total_j() - 2.0 * acc.total_j()).abs() < 1e-9);
    }

    #[test]
    fn quiet_chain_is_exactly_zero_and_draws_nothing() {
        let factory = RngFactory::new(1);
        let mut ou = OuIntegrator::new(15.0, 0.0, 0.1, factory.counter_stream("w"));
        assert!(ou.is_quiet());
        ou.advance(100);
        assert_eq!(ou.window_sum(500), 0.0);
        assert_eq!(ou.state(), 0.0);
    }

    /// The closed-form moments must match the stepped chain's empirical
    /// moments: same marginal distribution for `(S, x_n)`.
    #[test]
    fn window_moments_match_the_stepped_chain() {
        let (tau, std_w, dt, n) = (15.0f64, 9.0f64, 0.1f64, 300u64);
        let a = 1.0 - dt / tau;
        let q = std_w * std_w * (2.0 / tau) * dt;

        // Monte-carlo the stepped chain.
        let trials = 40_000;
        let factory = RngFactory::new(77);
        let mut rng = factory.stream("mc");
        let (mut sum_s, mut sum_s2, mut sum_x2, mut sum_sx) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..trials {
            let mut x = 0.0;
            let mut s = 0.0;
            for _ in 0..n {
                x = a * x + sample_normal(&mut rng, 0.0, q.sqrt());
                s += x;
            }
            sum_s += s;
            sum_s2 += s * s;
            sum_x2 += x * x;
            sum_sx += s * x;
        }
        let t = trials as f64;
        let emp_var_s = sum_s2 / t - (sum_s / t).powi(2);
        let emp_var_x = sum_x2 / t;
        let emp_cov = sum_sx / t;

        // Closed forms (x0 = 0).
        let a_n = powi_u64(a, n);
        let sum_a = (1.0 - a_n) / (1.0 - a);
        let sum_a2 = geometric_sum(a * a, n);
        let var_s = q * (n as f64 - 2.0 * a * sum_a + a * a * sum_a2) / (1.0 - a).powi(2);
        let var_x = q * sum_a2;
        let cov = q * (sum_a - a * sum_a2) / (1.0 - a);

        assert!(
            (emp_var_s - var_s).abs() / var_s < 0.05,
            "Var(S): {emp_var_s} vs {var_s}"
        );
        assert!(
            (emp_var_x - var_x).abs() / var_x < 0.05,
            "Var(x_n): {emp_var_x} vs {var_x}"
        );
        assert!(
            (emp_cov - cov).abs() / cov < 0.08,
            "Cov(S, x_n): {emp_cov} vs {cov}"
        );
    }

    /// Sampling through the integrator reproduces those moments too
    /// (i.e. the joint draw is wired correctly, not just the formulas).
    #[test]
    fn integrator_samples_have_the_closed_form_moments() {
        let (tau, std_w, dt, n) = (15.0, 9.0, 0.1, 200u64);
        let factory = RngFactory::new(9);
        let trials = 40_000;
        let (mut sum_s, mut sum_s2, mut sum_x2) = (0.0, 0.0, 0.0);
        for i in 0..trials {
            let mut ou = OuIntegrator::new(
                tau,
                std_w,
                dt,
                factory.child(i).counter_stream("wander.analytic"),
            );
            let s = ou.window_sum(n);
            sum_s += s;
            sum_s2 += s * s;
            sum_x2 += ou.state() * ou.state();
        }
        let t = trials as f64;
        let a = 1.0 - dt / tau;
        let q = std_w * std_w * (2.0 / tau) * dt;
        let sum_a = (1.0 - powi_u64(a, n)) / (1.0 - a);
        let sum_a2 = geometric_sum(a * a, n);
        let var_s = q * (n as f64 - 2.0 * a * sum_a + a * a * sum_a2) / (1.0 - a).powi(2);
        let var_x = q * sum_a2;
        let mean_s = sum_s / t;
        assert!(
            mean_s.abs() < 3.0 * (var_s / t).sqrt() * 1.5,
            "mean {mean_s}"
        );
        let emp_var_s = sum_s2 / t - mean_s * mean_s;
        assert!((emp_var_s - var_s).abs() / var_s < 0.05);
        let emp_var_x = sum_x2 / t;
        assert!((emp_var_x - var_x).abs() / var_x < 0.05);
    }

    #[test]
    fn advance_matches_stationary_variance_in_the_limit() {
        let factory = RngFactory::new(3);
        let trials = 30_000;
        let mut acc = 0.0;
        for i in 0..trials {
            let mut ou = OuIntegrator::new(15.0, 9.0, 0.1, factory.child(i).counter_stream("w"));
            ou.advance(2_000); // ≫ τ/dt: stationary
            acc += ou.state() * ou.state();
        }
        let emp = acc / trials as f64;
        // Discrete-chain stationary variance q/(1-a²) ≈ std²·(1 − dt/2τ)⁻¹-ish;
        // for dt ≪ τ it is close to std² = 81.
        let a: f64 = 1.0 - 0.1 / 15.0;
        let q = 81.0 * (2.0 / 15.0) * 0.1;
        let expect = q / (1.0 - a * a);
        assert!((emp - expect).abs() / expect < 0.05, "{emp} vs {expect}");
    }
}
