//! Migration energy phases (paper §III-D and §IV-A).
//!
//! The paper delimits a migration by four instants:
//!
//! ```text
//! ms ———— initiation ———— ts ———— transfer ———— te ———— activation ———— me
//! ```
//!
//! and defines per-phase energies `E(i)`, `E(t)`, `E(a)` whose sum is the
//! migration energy `E_migr` (Eq. 3–4).

use crate::trace::PowerTrace;
use serde::{Deserialize, Serialize};
use wavm3_simkit::{SimDuration, SimTime};

/// One of the three energy phases (plus pre/post normal execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// Before `ms` / after `me`.
    NormalExecution,
    /// `[ms, ts)` — target preparation, connection setup, (non-live:
    /// suspension of the VM).
    Initiation,
    /// `[ts, te)` — VM state moving over the network.
    Transfer,
    /// `[te, me)` — resume on target, free resources on source.
    Activation,
}

impl MigrationPhase {
    /// Table-friendly label.
    pub fn label(&self) -> &'static str {
        match self {
            MigrationPhase::NormalExecution => "normal",
            MigrationPhase::Initiation => "initiation",
            MigrationPhase::Transfer => "transfer",
            MigrationPhase::Activation => "activation",
        }
    }
}

/// The four phase-delimiting instants of one migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Migration start (consolidation manager issues the request).
    pub ms: SimTime,
    /// Transfer start.
    pub ts: SimTime,
    /// Transfer end.
    pub te: SimTime,
    /// Migration end (VM running on target, source cleaned up).
    pub me: SimTime,
}

impl PhaseTimes {
    /// Validate ordering `ms ≤ ts ≤ te ≤ me`.
    pub fn new(ms: SimTime, ts: SimTime, te: SimTime, me: SimTime) -> Self {
        assert!(
            ms <= ts && ts <= te && te <= me,
            "phase instants out of order"
        );
        PhaseTimes { ms, ts, te, me }
    }

    /// Which phase is `t` in?
    pub fn phase_at(&self, t: SimTime) -> MigrationPhase {
        if t < self.ms || t >= self.me {
            MigrationPhase::NormalExecution
        } else if t < self.ts {
            MigrationPhase::Initiation
        } else if t < self.te {
            MigrationPhase::Transfer
        } else {
            MigrationPhase::Activation
        }
    }

    /// Initiation duration.
    pub fn initiation(&self) -> SimDuration {
        self.ts - self.ms
    }

    /// Transfer duration.
    pub fn transfer(&self) -> SimDuration {
        self.te - self.ts
    }

    /// Activation duration.
    pub fn activation(&self) -> SimDuration {
        self.me - self.te
    }

    /// Whole-migration duration `[ms, me]`.
    pub fn total(&self) -> SimDuration {
        self.me - self.ms
    }
}

/// Per-phase energy of one host over one migration (paper Eq. 4), joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// `E(i)(h, v)` — initiation-phase energy.
    pub initiation_j: f64,
    /// `E(t)(h, v)` — transfer-phase energy.
    pub transfer_j: f64,
    /// `E(a)(h, v)` — activation-phase energy.
    pub activation_j: f64,
    /// Energy spent rolling back an aborted migration (fault-injection
    /// extension): the teardown window of an aborted run and, after
    /// retries, the whole cost of the failed attempts. Zero on clean runs.
    pub rollback_j: f64,
}

impl EnergyBreakdown {
    /// Integrate a measured power trace over the three phases.
    pub fn from_trace(trace: &PowerTrace, phases: &PhaseTimes) -> Self {
        EnergyBreakdown {
            initiation_j: trace.energy_between(phases.ms, phases.ts),
            transfer_j: trace.energy_between(phases.ts, phases.te),
            activation_j: trace.energy_between(phases.te, phases.me),
            rollback_j: 0.0,
        }
    }

    /// Integrate an *aborted* run: the window after the abort instant
    /// (`te` = abort) holds teardown/rollback work, not a VM activation,
    /// so it is attributed to `rollback_j` and `activation_j` stays zero.
    pub fn from_trace_aborted(trace: &PowerTrace, phases: &PhaseTimes) -> Self {
        EnergyBreakdown {
            initiation_j: trace.energy_between(phases.ms, phases.ts),
            transfer_j: trace.energy_between(phases.ts, phases.te),
            activation_j: 0.0,
            rollback_j: trace.energy_between(phases.te, phases.me),
        }
    }

    /// `E_migr(h, v)` — the total migration energy (Eq. 4), including any
    /// rollback energy of aborted/retried runs.
    pub fn total_j(&self) -> f64 {
        self.initiation_j + self.transfer_j + self.activation_j + self.rollback_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> PhaseTimes {
        PhaseTimes::new(
            SimTime::from_secs(10),
            SimTime::from_secs(12),
            SimTime::from_secs(50),
            SimTime::from_secs(53),
        )
    }

    #[test]
    fn durations() {
        let p = phases();
        assert_eq!(p.initiation(), SimDuration::from_secs(2));
        assert_eq!(p.transfer(), SimDuration::from_secs(38));
        assert_eq!(p.activation(), SimDuration::from_secs(3));
        assert_eq!(p.total(), SimDuration::from_secs(43));
    }

    #[test]
    fn phase_classification_boundaries() {
        let p = phases();
        assert_eq!(
            p.phase_at(SimTime::from_secs(5)),
            MigrationPhase::NormalExecution
        );
        assert_eq!(
            p.phase_at(SimTime::from_secs(10)),
            MigrationPhase::Initiation
        );
        assert_eq!(p.phase_at(SimTime::from_secs(12)), MigrationPhase::Transfer);
        assert_eq!(p.phase_at(SimTime::from_secs(49)), MigrationPhase::Transfer);
        assert_eq!(
            p.phase_at(SimTime::from_secs(50)),
            MigrationPhase::Activation
        );
        assert_eq!(
            p.phase_at(SimTime::from_secs(53)),
            MigrationPhase::NormalExecution
        );
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_instants_panic() {
        PhaseTimes::new(
            SimTime::from_secs(5),
            SimTime::from_secs(4),
            SimTime::from_secs(6),
            SimTime::from_secs(7),
        );
    }

    #[test]
    fn breakdown_from_constant_trace() {
        let p = phases();
        let mut tr = PowerTrace::new("m01");
        tr.record(SimTime::ZERO, 100.0);
        tr.record(SimTime::from_secs(60), 100.0);
        let e = EnergyBreakdown::from_trace(&tr, &p);
        assert!((e.initiation_j - 200.0).abs() < 1e-9);
        assert!((e.transfer_j - 3800.0).abs() < 1e-9);
        assert!((e.activation_j - 300.0).abs() < 1e-9);
        assert_eq!(e.rollback_j, 0.0);
        assert!((e.total_j() - 4300.0).abs() < 1e-9);
    }

    #[test]
    fn aborted_breakdown_reattributes_the_tail_to_rollback() {
        let p = phases();
        let mut tr = PowerTrace::new("m01");
        tr.record(SimTime::ZERO, 100.0);
        tr.record(SimTime::from_secs(60), 100.0);
        let e = EnergyBreakdown::from_trace_aborted(&tr, &p);
        assert!((e.initiation_j - 200.0).abs() < 1e-9);
        assert!((e.transfer_j - 3800.0).abs() < 1e-9);
        assert_eq!(e.activation_j, 0.0, "an aborted VM never activates");
        assert!((e.rollback_j - 300.0).abs() < 1e-9);
        // Same total either way: the joules were drawn regardless.
        let clean = EnergyBreakdown::from_trace(&tr, &p);
        assert!((e.total_j() - clean.total_j()).abs() < 1e-9);
    }

    #[test]
    fn empty_phases_are_legal() {
        // A degenerate migration with zero-length activation.
        let t = SimTime::from_secs(1);
        let p = PhaseTimes::new(t, t, t, t);
        assert_eq!(p.total(), SimDuration::ZERO);
        let mut tr = PowerTrace::new("x");
        tr.record(SimTime::ZERO, 50.0);
        tr.record(SimTime::from_secs(2), 50.0);
        let e = EnergyBreakdown::from_trace(&tr, &p);
        assert_eq!(e.total_j(), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(MigrationPhase::Transfer.label(), "transfer");
        assert_eq!(MigrationPhase::NormalExecution.label(), "normal");
    }
}
