//! dstat-equivalent resource telemetry.
//!
//! The paper records CPU and memory activity of every actor with `dstat`
//! alongside the power readings. [`TelemetryRecorder`] is the simulator's
//! version: a set of named channels, each a [`TimeSeries`], sampled at the
//! same 2 Hz instants as the meters so that regression rows line up
//! one-to-one with power readings.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wavm3_simkit::{SimTime, TimeSeries};

/// Canonical channel names used across the workspace.
pub mod channels {
    /// Source-host CPU utilisation `CPU(S,t)` (fraction `[0,1]`).
    pub const CPU_SOURCE: &str = "cpu.source";
    /// Target-host CPU utilisation `CPU(T,t)` (fraction `[0,1]`).
    pub const CPU_TARGET: &str = "cpu.target";
    /// Migrating-VM CPU demand `CPU(v,t)` (fraction of its vCPUs `[0,1]`).
    pub const CPU_VM: &str = "cpu.vm";
    /// Dirtying ratio `DR(v,t)` (fraction `[0,1]`).
    pub const DIRTY_RATIO: &str = "mem.dirty_ratio";
    /// Effective migration bandwidth `BW(S,T,t)` (bytes/s).
    pub const BANDWIDTH: &str = "net.bandwidth";
    /// Injected link-fault bandwidth multiplier (`[0,1]`, 1 = healthy).
    /// Only recorded on runs with a non-empty fault plan.
    pub const FAULT_BW_FACTOR: &str = "fault.bw_factor";
}

/// Named time-series channels (BTreeMap: deterministic iteration order).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecorder {
    channels: BTreeMap<String, TimeSeries>,
}

impl TelemetryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TelemetryRecorder::default()
    }

    /// Record one sample on `channel` (creating it on first use).
    pub fn record(&mut self, channel: &str, t: SimTime, value: f64) {
        self.channels
            .entry(channel.to_string())
            .or_default()
            .push(t, value);
    }

    /// The series for `channel`, if it exists.
    pub fn channel(&self, channel: &str) -> Option<&TimeSeries> {
        self.channels.get(channel)
    }

    /// Interpolated value of `channel` at `t`, defaulting to 0.0 when the
    /// channel was never recorded (or has no sample covering `t`): an
    /// absent channel reads as inactivity. Callers that must distinguish
    /// "idle" from "not instrumented" — e.g. the fault bandwidth factor,
    /// where 0.0 would mean a dead link rather than a healthy one — should
    /// use [`TelemetryRecorder::try_value_at`] instead.
    pub fn value_at(&self, channel: &str, t: SimTime) -> f64 {
        self.try_value_at(channel, t).unwrap_or(0.0)
    }

    /// Interpolated value of `channel` at `t`, or `None` when the channel
    /// was never recorded or has no sample covering `t`. Unlike
    /// [`TelemetryRecorder::value_at`], this keeps "never recorded"
    /// distinguishable from a genuine 0.0 reading.
    pub fn try_value_at(&self, channel: &str, t: SimTime) -> Option<f64> {
        self.channels.get(channel).and_then(|s| s.sample_at(t))
    }

    /// All channel names in deterministic order.
    pub fn channel_names(&self) -> Vec<&str> {
        self.channels.keys().map(|s| s.as_str()).collect()
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut t = TelemetryRecorder::new();
        t.record(channels::CPU_SOURCE, SimTime::ZERO, 0.25);
        t.record(channels::CPU_SOURCE, SimTime::from_secs(2), 0.75);
        assert_eq!(t.value_at(channels::CPU_SOURCE, SimTime::from_secs(1)), 0.5);
        assert_eq!(t.channel(channels::CPU_SOURCE).unwrap().len(), 2);
    }

    #[test]
    fn unknown_channel_reads_zero() {
        let t = TelemetryRecorder::new();
        assert_eq!(t.value_at("nope", SimTime::ZERO), 0.0);
        assert!(t.channel("nope").is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn try_value_at_distinguishes_absent_from_zero() {
        let mut t = TelemetryRecorder::new();
        t.record(channels::FAULT_BW_FACTOR, SimTime::ZERO, 0.0);
        // A recorded zero is a real reading...
        assert_eq!(
            t.try_value_at(channels::FAULT_BW_FACTOR, SimTime::ZERO),
            Some(0.0)
        );
        // ...while a never-recorded channel is None, not a silent 0.0.
        assert_eq!(t.try_value_at(channels::BANDWIDTH, SimTime::ZERO), None);
        assert_eq!(t.value_at(channels::BANDWIDTH, SimTime::ZERO), 0.0);
    }

    #[test]
    fn channel_names_are_sorted() {
        let mut t = TelemetryRecorder::new();
        t.record("zzz", SimTime::ZERO, 1.0);
        t.record("aaa", SimTime::ZERO, 1.0);
        t.record("mmm", SimTime::ZERO, 1.0);
        assert_eq!(t.channel_names(), vec!["aaa", "mmm", "zzz"]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn canonical_names_are_distinct() {
        let names = [
            channels::CPU_SOURCE,
            channels::CPU_TARGET,
            channels::CPU_VM,
            channels::DIRTY_RATIO,
            channels::BANDWIDTH,
            channels::FAULT_BW_FACTOR,
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
