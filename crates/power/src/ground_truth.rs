//! Ground-truth instantaneous power of a host.
//!
//! This plays the role of physics in the reproduction: the "real" power a
//! meter would observe. It is parameterised by the machine's
//! [`PowerProfile`](wavm3_cluster::PowerProfile) and the host's live
//! resource state. Every candidate model (WAVM3 and the baselines) is a
//! *simplification* of this function, exactly as the paper's linear models
//! are simplifications of real server physics:
//!
//! * the CPU term is mildly nonlinear (`u^exponent`) while all models
//!   assume linearity;
//! * NIC and memory-contention power are separate physical terms, which
//!   only WAVM3 approximates (via bandwidth and dirtying-ratio features);
//! * migration service activity (connection setup, state load) appears as
//!   an additive term the models can only absorb into phase constants.

use serde::{Deserialize, Serialize};
use wavm3_cluster::PowerProfile;

/// A host's instantaneous resource state, as seen by the synthesiser.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerInputs {
    /// Host CPU utilisation `[0, 1]` (paper's `CPU(h,t)` in fraction form).
    pub cpu_utilisation: f64,
    /// NIC line utilisation `[0, 1]` caused by migration traffic.
    pub nic_utilisation: f64,
    /// Memory-bus contention `[0, 1]` — the fraction of peak dirtying
    /// activity on this host (source-side live migration with a hot guest).
    pub mem_activity: f64,
    /// Additive service power of the migration machinery itself, watts
    /// (connection establishment, suspend/resume work, state loading).
    pub service_w: f64,
}

impl PowerInputs {
    /// An idle host.
    pub fn idle() -> Self {
        PowerInputs::default()
    }

    /// Clamp every fraction to its domain (service power may be any
    /// non-negative value).
    pub fn clamped(self) -> Self {
        PowerInputs {
            cpu_utilisation: self.cpu_utilisation.clamp(0.0, 1.0),
            nic_utilisation: self.nic_utilisation.clamp(0.0, 1.0),
            mem_activity: self.mem_activity.clamp(0.0, 1.0),
            service_w: self.service_w.max(0.0),
        }
    }
}

/// Noise-free ground-truth power draw, watts.
///
/// Measurement noise is added by the meter, not here, so the simulator can
/// also expose the clean signal for debugging and for exact-integral tests.
pub fn ground_truth_power(profile: &PowerProfile, inputs: PowerInputs) -> f64 {
    let i = inputs.clamped();
    profile.cpu_power(i.cpu_utilisation)
        + profile.nic_w_at_line_rate * i.nic_utilisation
        + profile.mem_contention_w * i.mem_activity
        + i.service_w
}

/// The additive decomposition of [`ground_truth_power`] into its physical
/// terms, watts. The energy-attribution ledger splits measured readings
/// across these terms proportionally, so per-term energies always sum
/// back to the metered total.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerTerms {
    /// Static floor the host draws regardless of load.
    pub idle_w: f64,
    /// Dynamic CPU power above the idle floor (`cpu_dynamic_w · u^e`).
    pub cpu_w: f64,
    /// Memory-bus contention from page dirtying.
    pub mem_dirty_w: f64,
    /// NIC power from migration traffic.
    pub network_w: f64,
    /// Migration service machinery (connection setup, suspend/resume).
    pub service_w: f64,
}

impl PowerTerms {
    /// Sum of the terms — equals [`ground_truth_power`] up to float
    /// summation order.
    pub fn total_w(&self) -> f64 {
        self.idle_w + self.cpu_w + self.mem_dirty_w + self.network_w + self.service_w
    }
}

/// Decompose the noise-free ground-truth power into its additive terms.
pub fn ground_truth_terms(profile: &PowerProfile, inputs: PowerInputs) -> PowerTerms {
    let i = inputs.clamped();
    PowerTerms {
        idle_w: profile.idle_w,
        cpu_w: profile.cpu_power(i.cpu_utilisation) - profile.idle_w,
        mem_dirty_w: profile.mem_contention_w * i.mem_activity,
        network_w: profile.nic_w_at_line_rate * i.nic_utilisation,
        service_w: i.service_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> PowerProfile {
        PowerProfile {
            idle_w: 430.0,
            cpu_dynamic_w: 390.0,
            cpu_exponent: 1.15,
            nic_w_at_line_rate: 42.0,
            mem_contention_w: 55.0,
            noise_std_w: 2.5,
        }
    }

    #[test]
    fn idle_host_draws_idle_power() {
        assert_eq!(ground_truth_power(&profile(), PowerInputs::idle()), 430.0);
    }

    #[test]
    fn full_everything_draws_peak() {
        let p = profile();
        let inputs = PowerInputs {
            cpu_utilisation: 1.0,
            nic_utilisation: 1.0,
            mem_activity: 1.0,
            service_w: 0.0,
        };
        assert!((ground_truth_power(&p, inputs) - p.peak_w()).abs() < 1e-9);
    }

    #[test]
    fn terms_are_additive() {
        let p = profile();
        let base = ground_truth_power(&p, PowerInputs::idle());
        let nic_only = ground_truth_power(
            &p,
            PowerInputs {
                nic_utilisation: 0.5,
                ..PowerInputs::idle()
            },
        );
        assert!((nic_only - base - 21.0).abs() < 1e-9);
        let svc = ground_truth_power(
            &p,
            PowerInputs {
                service_w: 17.0,
                ..PowerInputs::idle()
            },
        );
        assert!((svc - base - 17.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_term_is_superlinear() {
        let p = profile();
        let half = ground_truth_power(
            &p,
            PowerInputs {
                cpu_utilisation: 0.5,
                ..PowerInputs::idle()
            },
        );
        // u^1.15 at 0.5 < 0.5, so the midpoint sits below the linear chord.
        assert!(half < 430.0 + 390.0 * 0.5);
        assert!(half > 430.0);
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let p = profile();
        let crazy = PowerInputs {
            cpu_utilisation: 9.0,
            nic_utilisation: -3.0,
            mem_activity: 2.0,
            service_w: -100.0,
        };
        let got = ground_truth_power(&p, crazy);
        let expect = ground_truth_power(
            &p,
            PowerInputs {
                cpu_utilisation: 1.0,
                nic_utilisation: 0.0,
                mem_activity: 1.0,
                service_w: 0.0,
            },
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn term_decomposition_sums_to_ground_truth() {
        let p = profile();
        let inputs = PowerInputs {
            cpu_utilisation: 0.63,
            nic_utilisation: 0.8,
            mem_activity: 0.4,
            service_w: 12.5,
        };
        let terms = ground_truth_terms(&p, inputs);
        let total = ground_truth_power(&p, inputs);
        assert!((terms.total_w() - total).abs() < 1e-9 * total);
        assert_eq!(terms.idle_w, p.idle_w);
        assert!(terms.cpu_w > 0.0);
        assert!((terms.network_w - 42.0 * 0.8).abs() < 1e-12);
        assert!((terms.mem_dirty_w - 55.0 * 0.4).abs() < 1e-12);
        assert_eq!(terms.service_w, 12.5);
    }

    #[test]
    fn power_is_monotone_in_each_input() {
        let p = profile();
        let base = PowerInputs {
            cpu_utilisation: 0.3,
            nic_utilisation: 0.3,
            mem_activity: 0.3,
            service_w: 5.0,
        };
        let f = |i: PowerInputs| ground_truth_power(&p, i);
        assert!(
            f(PowerInputs {
                cpu_utilisation: 0.6,
                ..base
            }) > f(base)
        );
        assert!(
            f(PowerInputs {
                nic_utilisation: 0.6,
                ..base
            }) > f(base)
        );
        assert!(
            f(PowerInputs {
                mem_activity: 0.6,
                ..base
            }) > f(base)
        );
        assert!(
            f(PowerInputs {
                service_w: 10.0,
                ..base
            }) > f(base)
        );
    }
}
