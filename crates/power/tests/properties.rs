//! Property-based tests of the power substrate.

use proptest::prelude::*;
use wavm3_cluster::PowerProfile;
use wavm3_power::{
    ground_truth_power, EnergyBreakdown, PhaseTimes, PowerInputs, PowerMeter, PowerTrace,
};
use wavm3_simkit::{RngFactory, SimTime};

fn arb_profile() -> impl Strategy<Value = PowerProfile> {
    (
        50.0f64..600.0,
        50.0f64..500.0,
        0.5f64..1.5,
        0.0f64..60.0,
        0.0f64..120.0,
    )
        .prop_map(|(idle, dynamic, exp, nic, mem)| PowerProfile {
            idle_w: idle,
            cpu_dynamic_w: dynamic,
            cpu_exponent: exp,
            nic_w_at_line_rate: nic,
            mem_contention_w: mem,
            noise_std_w: 1.0,
        })
}

fn arb_inputs() -> impl Strategy<Value = PowerInputs> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..100.0).prop_map(|(cpu, nic, mem, svc)| {
        PowerInputs {
            cpu_utilisation: cpu,
            nic_utilisation: nic,
            mem_activity: mem,
            service_w: svc,
        }
    })
}

proptest! {
    /// Ground truth is bounded by idle and peak + service for any profile.
    #[test]
    fn ground_truth_bounded(profile in arb_profile(), inputs in arb_inputs()) {
        let p = ground_truth_power(&profile, inputs);
        prop_assert!(p >= profile.idle_w - 1e-9);
        prop_assert!(p <= profile.peak_w() + inputs.service_w + 1e-9);
    }

    /// Ground truth is monotone in every input dimension.
    #[test]
    fn ground_truth_monotone(profile in arb_profile(), inputs in arb_inputs(), bump in 0.0f64..0.5) {
        let base = ground_truth_power(&profile, inputs);
        let f = |i: PowerInputs| ground_truth_power(&profile, i);
        let more_cpu = f(PowerInputs {
            cpu_utilisation: (inputs.cpu_utilisation + bump).min(1.0),
            ..inputs
        });
        let more_nic = f(PowerInputs {
            nic_utilisation: (inputs.nic_utilisation + bump).min(1.0),
            ..inputs
        });
        let more_mem = f(PowerInputs {
            mem_activity: (inputs.mem_activity + bump).min(1.0),
            ..inputs
        });
        let more_svc = f(PowerInputs {
            service_w: inputs.service_w + bump,
            ..inputs
        });
        prop_assert!(more_cpu + 1e-9 >= base);
        prop_assert!(more_nic + 1e-9 >= base);
        prop_assert!(more_mem + 1e-9 >= base);
        prop_assert!(more_svc + 1e-9 >= base);
    }

    /// Meter readings are unbiased: the trace mean converges to the true
    /// signal for any constant input.
    #[test]
    fn meter_is_unbiased(truth in 10.0f64..900.0, noise in 0.0f64..5.0, seed in 0u64..200) {
        let mut m = PowerMeter::new("h", noise, RngFactory::new(seed).stream("meter"));
        let n = 400u64;
        for i in 0..n {
            m.sample(SimTime::from_millis(i * 500), truth);
        }
        let mean = m.trace().series.mean().unwrap();
        // Standard error is noise/sqrt(400) = noise/20; allow 6 sigma + quantum.
        prop_assert!((mean - truth).abs() < 0.3 * noise + 0.1, "mean {mean} vs truth {truth}");
    }

    /// Phase energies always sum to the total and never go negative for
    /// non-negative power traces.
    #[test]
    fn phase_energies_consistent(
        powers in prop::collection::vec(0.0f64..1000.0, 4..64),
        cuts in (1u64..30, 1u64..30, 1u64..30),
    ) {
        let mut trace = PowerTrace::new("h");
        for (i, &p) in powers.iter().enumerate() {
            trace.record(SimTime::from_millis(i as u64 * 500), p);
        }
        let ms = SimTime::from_millis(500 * 2);
        let ts = ms + wavm3_simkit::SimDuration::from_millis(100 * cuts.0);
        let te = ts + wavm3_simkit::SimDuration::from_millis(100 * cuts.1);
        let me = te + wavm3_simkit::SimDuration::from_millis(100 * cuts.2);
        let phases = PhaseTimes::new(ms, ts, te, me);
        let e = EnergyBreakdown::from_trace(&trace, &phases);
        prop_assert!(e.initiation_j >= -1e-9);
        prop_assert!(e.transfer_j >= -1e-9);
        prop_assert!(e.activation_j >= -1e-9);
        let whole = trace.energy_between(ms, me);
        prop_assert!((e.total_j() - whole).abs() < 1e-6 * (1.0 + whole), "{} vs {}", e.total_j(), whole);
    }
}
