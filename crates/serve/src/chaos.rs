//! Seeded chaos middleware.
//!
//! Reuses the workspace RNG-stream discipline: every request carries a
//! chaos key (the `x-wavm3-chaos-key` header, typically `"{id}:{attempt}"`
//! from the load generator), the key is FNV-hashed into a child of the
//! configured seed, and each decision dimension draws from its own named
//! stream. The same `(seed, key)` pair therefore always yields the same
//! fate — across reruns, across worker threads, and regardless of request
//! interleaving — which is what makes chaos-mode assertions in CI and the
//! loadgen golden test possible at all.

use rand::Rng;
use wavm3_harness::{fnv1a64, Wavm3Error};
use wavm3_simkit::RngFactory;

/// Injection probabilities and the latency range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Root seed for all decisions (`0` is a valid seed, not "off").
    pub seed: u64,
    /// Probability of injecting extra latency.
    pub latency_probability: f64,
    /// Injected latency lower bound, milliseconds.
    pub min_latency_ms: u64,
    /// Injected latency upper bound, milliseconds (inclusive).
    pub max_latency_ms: u64,
    /// Probability of replacing the response with a 500.
    pub error_probability: f64,
    /// Probability of dropping the connection without a response.
    pub drop_probability: f64,
}

impl ChaosConfig {
    /// No injection at all (the production configuration).
    pub fn off() -> Self {
        ChaosConfig {
            seed: 0,
            latency_probability: 0.0,
            min_latency_ms: 0,
            max_latency_ms: 0,
            error_probability: 0.0,
            drop_probability: 0.0,
        }
    }

    /// `true` when any fault class can fire.
    pub fn is_enabled(&self) -> bool {
        self.latency_probability > 0.0
            || self.error_probability > 0.0
            || self.drop_probability > 0.0
    }

    /// Reject out-of-range probabilities and an inverted latency range.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        wavm3_harness::ensure_probability(
            "serve.chaos.latency_probability",
            self.latency_probability,
        )?;
        wavm3_harness::ensure_probability("serve.chaos.error_probability", self.error_probability)?;
        wavm3_harness::ensure_probability("serve.chaos.drop_probability", self.drop_probability)?;
        if self.error_probability + self.drop_probability > 1.0 {
            return Err(Wavm3Error::invalid_config(
                "serve.chaos.error_probability",
                "error and drop probabilities must sum to at most 1",
            ));
        }
        if self.min_latency_ms > self.max_latency_ms {
            return Err(Wavm3Error::invalid_config(
                "serve.chaos.min_latency_ms",
                format!(
                    "latency range inverted ({} > {})",
                    self.min_latency_ms, self.max_latency_ms
                ),
            ));
        }
        Ok(())
    }
}

/// What happens to the response stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Respond normally.
    Deliver,
    /// Respond `500 injected fault`.
    Error,
    /// Close the connection without any response.
    Drop,
}

/// The complete injected perturbation for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosDecision {
    /// Extra latency charged to the request before handling.
    pub latency_ms: u64,
    /// Response-stream fate.
    pub fate: Fate,
}

impl ChaosDecision {
    /// The no-op decision (chaos disabled or the dice said "clean").
    pub fn clean() -> Self {
        ChaosDecision {
            latency_ms: 0,
            fate: Fate::Deliver,
        }
    }
}

/// Decide the fate of the request identified by `key`.
pub fn decide(cfg: &ChaosConfig, key: &str) -> ChaosDecision {
    if !cfg.is_enabled() {
        return ChaosDecision::clean();
    }
    let factory = RngFactory::new(cfg.seed).child(fnv1a64(key.as_bytes()));
    let mut fate_rng = factory.stream("chaos.fate");
    let roll: f64 = fate_rng.gen_range(0.0..1.0);
    let fate = if roll < cfg.error_probability {
        Fate::Error
    } else if roll < cfg.error_probability + cfg.drop_probability {
        Fate::Drop
    } else {
        Fate::Deliver
    };
    let mut latency_rng = factory.stream("chaos.latency");
    let latency_ms = if latency_rng.gen_range(0.0..1.0) < cfg.latency_probability {
        latency_rng.gen_range(cfg.min_latency_ms..=cfg.max_latency_ms)
    } else {
        0
    };
    ChaosDecision { latency_ms, fate }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            latency_probability: 0.5,
            min_latency_ms: 5,
            max_latency_ms: 30,
            error_probability: 0.2,
            drop_probability: 0.1,
        }
    }

    #[test]
    fn same_key_same_fate() {
        let cfg = chaotic();
        for key in ["1:0", "1:1", "2:0", "weird key"] {
            assert_eq!(decide(&cfg, key), decide(&cfg, key));
        }
    }

    #[test]
    fn seed_and_key_both_matter() {
        let a = chaotic();
        let b = ChaosConfig { seed: 8, ..a };
        let mut differs = false;
        for id in 0..64u32 {
            let key = format!("{id}:0");
            if decide(&a, &key) != decide(&b, &key) {
                differs = true;
            }
        }
        assert!(differs, "different seeds must yield different schedules");
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let cfg = chaotic();
        let mut errors = 0;
        let mut drops = 0;
        let mut latencies = 0;
        const N: u32 = 2_000;
        for id in 0..N {
            let d = decide(&cfg, &format!("{id}:0"));
            match d.fate {
                Fate::Error => errors += 1,
                Fate::Drop => drops += 1,
                Fate::Deliver => {}
            }
            if d.latency_ms > 0 {
                latencies += 1;
                assert!((5..=30).contains(&d.latency_ms));
            }
        }
        let frac = |n: u32| n as f64 / N as f64;
        assert!((frac(errors) - 0.2).abs() < 0.05, "{errors}");
        assert!((frac(drops) - 0.1).abs() < 0.05, "{drops}");
        assert!((frac(latencies) - 0.5).abs() < 0.05, "{latencies}");
    }

    #[test]
    fn off_is_clean_and_invalid_configs_are_config_errors() {
        assert_eq!(decide(&ChaosConfig::off(), "1:0"), ChaosDecision::clean());
        let bad = ChaosConfig {
            error_probability: 0.8,
            drop_probability: 0.4,
            ..chaotic()
        };
        assert!(bad.validate().expect_err("sum > 1").is_config_error());
        let inverted = ChaosConfig {
            min_latency_ms: 50,
            max_latency_ms: 10,
            ..chaotic()
        };
        assert!(inverted.validate().expect_err("inverted").is_config_error());
        assert!(chaotic().validate().is_ok());
    }
}
