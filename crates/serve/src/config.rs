//! Server configuration and validation.

use crate::breaker::BreakerConfig;
use crate::chaos::ChaosConfig;
use std::path::PathBuf;
use wavm3_harness::Wavm3Error;

/// Everything `Server::start` needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with 429.
    pub queue_capacity: usize,
    /// Default per-request deadline, milliseconds (header
    /// `x-wavm3-deadline-ms` overrides per request).
    pub default_deadline_ms: u64,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Chaos middleware tuning.
    pub chaos: ChaosConfig,
    /// Optional fitted live-migration coefficients (JSON `Wavm3Model`);
    /// the paper's Table IV coefficients when absent.
    pub coeffs_live: Option<PathBuf>,
    /// Optional fitted non-live coefficients; Table III when absent.
    pub coeffs_non_live: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 1_000,
            breaker: BreakerConfig::default(),
            chaos: ChaosConfig::off(),
            coeffs_live: None,
            coeffs_non_live: None,
        }
    }
}

impl ServeConfig {
    /// Reject configurations that cannot serve: no workers, no queue, a
    /// zero deadline, or invalid breaker/chaos tunings. All rejections
    /// are config errors (CLI exit code 2).
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        if self.workers == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.workers",
                "must have at least one worker",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.queue_capacity",
                "must admit at least one waiting request",
            ));
        }
        if self.default_deadline_ms == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.default_deadline_ms",
                "a zero deadline rejects every request",
            ));
        }
        self.breaker.validate()?;
        self.chaos.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_configs_classify_as_config_errors() {
        for cfg in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                default_deadline_ms: 0,
                ..ServeConfig::default()
            },
        ] {
            let err = cfg.validate().expect_err("degenerate");
            assert!(err.is_config_error(), "{err}");
        }
    }
}
