//! Server configuration and validation.

use crate::breaker::BreakerConfig;
use crate::chaos::ChaosConfig;
use std::path::PathBuf;
use wavm3_harness::Wavm3Error;
use wavm3_obs::reqtrace::TailSampler;
use wavm3_obs::slo::{DriftConfig, SloConfig};

/// Request-observability options: tracing, access logs, SLOs, drift.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Structured access log (one line per request); `None` disables.
    pub access_log: Option<PathBuf>,
    /// Directory for span exports written at drain (`spans.jsonl`,
    /// `trace.json`, `canonical.txt`); `None` leaves trace collection
    /// disarmed unless [`collect_traces`](Self::collect_traces) forces
    /// it (tests do).
    pub trace_out: Option<PathBuf>,
    /// Collect sampled traces in memory even without `trace_out` — for
    /// embedders that export through `ServerHandle` instead of files.
    pub collect_traces: bool,
    /// Tail-sampling policy (seed, keep-1-in rate, tail threshold).
    pub sampler: TailSampler,
    /// Service-level objectives scored on `/metrics` + `/debug/slo`.
    pub slo: SloConfig,
    /// Residual drift monitoring (window, min samples, baseline
    /// multiple) surfaced on `/healthz`.
    pub drift: DriftConfig,
}

impl ObsOptions {
    /// Is span collection armed?
    pub fn tracing_armed(&self) -> bool {
        self.collect_traces || self.trace_out.is_some()
    }

    fn validate(&self) -> Result<(), Wavm3Error> {
        if self.sampler.keep_1_in == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.obs.sampler.keep_1_in",
                "must be >= 1 (1 keeps every trace)",
            ));
        }
        if self.sampler.tail_latency_ms.is_nan() || self.sampler.tail_latency_ms < 0.0 {
            return Err(Wavm3Error::invalid_config(
                "serve.obs.sampler.tail_latency_ms",
                format!(
                    "must be non-negative (f64::INFINITY disables), got {}",
                    self.sampler.tail_latency_ms
                ),
            ));
        }
        self.slo
            .validate()
            .map_err(|e| Wavm3Error::invalid_config("serve.obs.slo", e))?;
        self.drift
            .validate()
            .map_err(|e| Wavm3Error::invalid_config("serve.obs.drift", e))
    }
}

/// Everything `Server::start` needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with 429.
    pub queue_capacity: usize,
    /// Default per-request deadline, milliseconds (header
    /// `x-wavm3-deadline-ms` overrides per request).
    pub default_deadline_ms: u64,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Chaos middleware tuning.
    pub chaos: ChaosConfig,
    /// Optional fitted live-migration coefficients (JSON `Wavm3Model`);
    /// the paper's Table IV coefficients when absent.
    pub coeffs_live: Option<PathBuf>,
    /// Optional fitted non-live coefficients; Table III when absent.
    pub coeffs_non_live: Option<PathBuf>,
    /// Request-observability options.
    pub obs: ObsOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 1_000,
            breaker: BreakerConfig::default(),
            chaos: ChaosConfig::off(),
            coeffs_live: None,
            coeffs_non_live: None,
            obs: ObsOptions::default(),
        }
    }
}

impl ServeConfig {
    /// Reject configurations that cannot serve: no workers, no queue, a
    /// zero deadline, or invalid breaker/chaos tunings. All rejections
    /// are config errors (CLI exit code 2).
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        if self.workers == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.workers",
                "must have at least one worker",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.queue_capacity",
                "must admit at least one waiting request",
            ));
        }
        if self.default_deadline_ms == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.default_deadline_ms",
                "a zero deadline rejects every request",
            ));
        }
        self.breaker.validate()?;
        self.chaos.validate()?;
        self.obs.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_configs_classify_as_config_errors() {
        for cfg in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                default_deadline_ms: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                obs: ObsOptions {
                    sampler: TailSampler {
                        keep_1_in: 0,
                        ..TailSampler::default()
                    },
                    ..ObsOptions::default()
                },
                ..ServeConfig::default()
            },
            ServeConfig {
                obs: ObsOptions {
                    slo: SloConfig {
                        availability: 1.0,
                        ..SloConfig::default()
                    },
                    ..ObsOptions::default()
                },
                ..ServeConfig::default()
            },
            ServeConfig {
                obs: ObsOptions {
                    drift: DriftConfig {
                        window: 0,
                        ..DriftConfig::default()
                    },
                    ..ObsOptions::default()
                },
                ..ServeConfig::default()
            },
        ] {
            let err = cfg.validate().expect_err("degenerate");
            assert!(err.is_config_error(), "{err}");
        }
    }
}
