//! Circuit breaker around the planner.
//!
//! Closed → Open on `failure_threshold` *consecutive* failures (planner
//! deadline breaches or injected faults); Open → HalfOpen once
//! `cooldown_us` has elapsed; HalfOpen admits exactly `probe_quota`
//! probes and returns to Closed after `probe_successes` of them succeed,
//! or slams back to Open on the first probe failure. While not admitting,
//! the server answers from the analytic fast path with last-known-good
//! coefficients (`degraded: true`) instead of erroring — prediction
//! quality degrades, availability does not.
//!
//! The clock is injected as microseconds so the state machine is a pure
//! function of its inputs: the property tests drive it with a synthetic
//! clock and the server feeds it wall time since startup.

use wavm3_harness::Wavm3Error;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Time in Open before the first probe is allowed, microseconds.
    pub cooldown_us: u64,
    /// Probes admitted per HalfOpen episode.
    pub probe_quota: u32,
    /// Probe successes required to close again (≤ `probe_quota`).
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_us: 2_000_000,
            probe_quota: 2,
            probe_successes: 2,
        }
    }
}

impl BreakerConfig {
    /// Reject thresholds/quotas that would make the machine unable to
    /// trip, probe, or close.
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        if self.failure_threshold == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.breaker.failure_threshold",
                "must be at least 1",
            ));
        }
        if self.probe_quota == 0 || self.probe_successes == 0 {
            return Err(Wavm3Error::invalid_config(
                "serve.breaker.probe_quota",
                "probe quota and required successes must be at least 1",
            ));
        }
        if self.probe_successes > self.probe_quota {
            return Err(Wavm3Error::invalid_config(
                "serve.breaker.probe_successes",
                format!(
                    "cannot require more successes than probes ({} > {})",
                    self.probe_successes, self.probe_quota
                ),
            ));
        }
        Ok(())
    }
}

/// Public view of the breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting everything.
    Closed,
    /// Admitting nothing; cooling down.
    Open,
    /// Admitting a bounded probe quota.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase label for responses and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the real planner (and report the outcome back).
    Allow,
    /// Serve the degraded analytic fast path; do not touch the planner.
    Degrade,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { since_us: u64 },
    HalfOpen { probes_issued: u32, successes: u32 },
}

/// The deterministic breaker state machine.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: State,
}

impl CircuitBreaker {
    /// A closed breaker with the given (already validated) tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: State::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Admit or degrade one request at time `now_us`. Admission from
    /// HalfOpen consumes one probe slot; callers that were admitted must
    /// later report [`on_success`](Self::on_success) or
    /// [`on_failure`](Self::on_failure).
    pub fn try_acquire(&mut self, now_us: u64) -> Admission {
        match self.state {
            State::Closed { .. } => Admission::Allow,
            State::Open { since_us } => {
                if now_us.saturating_sub(since_us) >= self.cfg.cooldown_us {
                    // Cooldown over: become HalfOpen and spend the first
                    // probe slot on this very request.
                    self.state = State::HalfOpen {
                        probes_issued: 1,
                        successes: 0,
                    };
                    Admission::Allow
                } else {
                    Admission::Degrade
                }
            }
            State::HalfOpen {
                ref mut probes_issued,
                ..
            } => {
                if *probes_issued < self.cfg.probe_quota {
                    *probes_issued += 1;
                    Admission::Allow
                } else {
                    Admission::Degrade
                }
            }
        }
    }

    /// Report a successful admitted request.
    pub fn on_success(&mut self, _now_us: u64) {
        match self.state {
            State::Closed { .. } => {
                self.state = State::Closed {
                    consecutive_failures: 0,
                };
            }
            State::HalfOpen {
                probes_issued,
                successes,
            } => {
                let successes = successes + 1;
                if successes >= self.cfg.probe_successes {
                    self.state = State::Closed {
                        consecutive_failures: 0,
                    };
                } else {
                    self.state = State::HalfOpen {
                        probes_issued,
                        successes,
                    };
                }
            }
            // A stale success from before the trip: ignore.
            State::Open { .. } => {}
        }
    }

    /// Report a failed admitted request (deadline breach or fault).
    pub fn on_failure(&mut self, now_us: u64) {
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.cfg.failure_threshold {
                    self.state = State::Open { since_us: now_us };
                } else {
                    self.state = State::Closed {
                        consecutive_failures: failures,
                    };
                }
            }
            // Any probe failure slams the breaker back open and restarts
            // the cooldown from now.
            State::HalfOpen { .. } => {
                self.state = State::Open { since_us: now_us };
            }
            // A stale failure from before the trip: stay put (the
            // original cooldown keeps counting).
            State::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_us: 1_000,
            probe_quota: 2,
            probe_successes: 2,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(1);
        b.on_success(2); // resets the streak
        b.on_failure(3);
        b.on_failure(4);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(5);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.try_acquire(6), Admission::Degrade);
    }

    #[test]
    fn cooldown_then_probe_then_close() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.on_failure(t);
        }
        assert_eq!(b.try_acquire(500), Admission::Degrade);
        assert_eq!(b.try_acquire(1_002 + 2), Admission::Allow);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.try_acquire(1_200), Admission::Allow);
        assert_eq!(b.try_acquire(1_300), Admission::Degrade, "quota spent");
        b.on_success(1_400);
        b.on_success(1_500);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens_with_fresh_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.on_failure(t);
        }
        assert_eq!(b.try_acquire(2_000), Admission::Allow);
        b.on_failure(2_100);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.try_acquire(2_500), Admission::Degrade);
        assert_eq!(b.try_acquire(3_200), Admission::Allow);
    }

    #[test]
    fn config_validation_rejects_degenerate_tunings() {
        for bad in [
            BreakerConfig {
                failure_threshold: 0,
                ..cfg()
            },
            BreakerConfig {
                probe_quota: 0,
                ..cfg()
            },
            BreakerConfig {
                probe_successes: 0,
                ..cfg()
            },
            BreakerConfig {
                probe_successes: 3,
                probe_quota: 2,
                ..cfg()
            },
        ] {
            let err = bad.validate().expect_err("degenerate tuning");
            assert!(err.is_config_error(), "{err}");
        }
        assert!(cfg().validate().is_ok());
    }
}
