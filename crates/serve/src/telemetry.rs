//! Per-request telemetry glue: trace lifecycle, RED recording, access
//! logs, exemplars, drift, and drain-time exports.
//!
//! [`Telemetry`] is the one object the server threads share. Each
//! worker registers its own [`TraceSink`] shard (PR 7 arena
//! discipline — the shard mutex is uncontended by construction), and
//! every finished request flows through [`Telemetry::finish`], which
//! fans the record out to:
//!
//! * the **RED families** `serve.red.{route}.{class}.duration_ms`
//!   (only for real work routes — `/metrics`, `/healthz` and the debug
//!   endpoints stay out of the registry so a scrape never perturbs the
//!   exposition it is rendering);
//! * **exemplars** — every error-class observation pins its trace id to
//!   the bucket it landed in; tail-slow successes attach an unpinned
//!   (latest-wins) exemplar;
//! * the **access log** — one `key=value` line per request carrying
//!   every join key the correlation checker needs;
//! * the **trace collector** — when armed, the tail-sampled span tree.

use crate::config::ObsOptions;
use crate::http::Request;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use wavm3_harness::Wavm3Error;
use wavm3_models::paper::TABLE_VII_NRMSE;
use wavm3_obs::metrics::{buckets, Registry};
use wavm3_obs::reqtrace::{
    resolve, ReqRecord, ReqTrace, SampleDecision, TailSampler, TraceCollector, TraceId, TraceSink,
};
use wavm3_obs::slo::{self, DriftMonitor, DriftState, SloConfig, SloReport, ERROR_CLASSES};

/// Map a request path to its stable route label.
pub fn route_label(path: &str) -> &'static str {
    match path {
        "/predict" => "predict",
        "/plan" => "plan",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/debug/slo" => "debug_slo",
        "/debug/metrics" => "debug_metrics",
        _ => "other",
    }
}

/// Routes whose outcomes are recorded in RED families. Introspection
/// routes are excluded by design: `/metrics` must never mutate the
/// registry it renders (the exposition is byte-stable while quiescent).
fn red_route(route: &str) -> bool {
    matches!(route, "predict" | "plan" | "other")
}

/// Sanitise a value for a `key=value` access-log token: whitespace,
/// `"` and `=` become `_` so the line stays splittable no matter what
/// the client put in its headers.
fn token(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_whitespace() || c == '"' || c == '=' || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect();
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// Shared observability state for one server.
pub struct Telemetry {
    collector: Option<TraceCollector>,
    sampler: TailSampler,
    access: Option<Mutex<BufWriter<File>>>,
    drift: DriftMonitor,
    slo: SloConfig,
    trace_out: Option<PathBuf>,
    fallback_nonce: u64,
    fallback_counter: AtomicU64,
}

impl Telemetry {
    /// Build from validated [`ObsOptions`]; opens the access log and
    /// creates the trace-out directory eagerly so misconfiguration
    /// fails at startup, not at drain.
    pub fn new(opts: &ObsOptions) -> Result<Telemetry, Wavm3Error> {
        let access = match &opts.access_log {
            None => None,
            Some(path) => {
                let file = File::create(path).map_err(|e| {
                    Wavm3Error::invalid_config(
                        "serve.obs.access_log",
                        format!("cannot create {}: {e}", path.display()),
                    )
                })?;
                Some(Mutex::new(BufWriter::new(file)))
            }
        };
        if let Some(dir) = &opts.trace_out {
            std::fs::create_dir_all(dir).map_err(|e| {
                Wavm3Error::invalid_config(
                    "serve.obs.trace_out",
                    format!("cannot create {}: {e}", dir.display()),
                )
            })?;
        }
        Ok(Telemetry {
            collector: opts
                .tracing_armed()
                .then(|| TraceCollector::new(opts.sampler)),
            sampler: opts.sampler,
            access,
            drift: DriftMonitor::new(opts.drift, table_vii_baselines(), 11.8),
            slo: opts.slo,
            trace_out: opts.trace_out.clone(),
            fallback_nonce: opts.sampler.seed ^ 0x7a3e_77a7_5e12_f00d,
            fallback_counter: AtomicU64::new(0),
        })
    }

    /// Register a per-thread trace shard (`None` when tracing is
    /// disarmed — the access log's sampling column then uses
    /// [`TailSampler::decide`] directly).
    pub fn register_sink(&self) -> Option<TraceSink> {
        self.collector.as_ref().map(|c| c.register())
    }

    /// Open a request trace: resolve the client's trace headers (never
    /// failing — malformed ids fall back to a server-generated one) and
    /// reconstruct the queue span `[0, queue_us]`.
    pub fn begin(
        &self,
        request: Option<&Request>,
        accepted_at: Instant,
        queue_us: u64,
    ) -> ReqTrace {
        let counter = self.fallback_counter.fetch_add(1, Ordering::Relaxed);
        let (id, client_supplied) = match request {
            Some(r) => resolve(
                r.header("x-wavm3-trace-id"),
                r.header("traceparent"),
                self.fallback_nonce,
                counter,
            ),
            None => (
                TraceId::server_generated(self.fallback_nonce, counter),
                false,
            ),
        };
        let mut trace = ReqTrace::begin(id, client_supplied, accepted_at);
        trace.set_queue_us(queue_us);
        trace.enter_at("queue", 0);
        trace.exit_at(queue_us);
        trace
    }

    /// Close a request: RED + exemplars, access log, trace collection.
    /// Returns the sampling decision (stamped into the access log too).
    pub fn finish(
        &self,
        registry: &Registry,
        sink: Option<&TraceSink>,
        trace: ReqTrace,
    ) -> SampleDecision {
        let record = trace.finish();
        let total_ms = record.total_us as f64 / 1e3;
        if red_route(&record.route) {
            let metric = slo::red_metric(&record.route, record.class());
            if ERROR_CLASSES.contains(&record.class()) {
                registry.observe_with_exemplar(
                    &metric,
                    buckets::LATENCY_MS,
                    total_ms,
                    &record.trace_id.as_hex(),
                    true,
                );
            } else if record.class() == "2xx" && total_ms >= self.sampler.tail_latency_ms {
                registry.observe_with_exemplar(
                    &metric,
                    buckets::LATENCY_MS,
                    total_ms,
                    &record.trace_id.as_hex(),
                    false,
                );
            } else {
                registry.observe(&metric, buckets::LATENCY_MS, total_ms);
            }
        }
        let decision = self.sampler.decide(&record);
        self.log_access(&record, decision);
        if let Some(sink) = sink {
            sink.record(record);
        }
        decision
    }

    fn log_access(&self, r: &ReqRecord, decision: SampleDecision) {
        let Some(access) = &self.access else {
            return;
        };
        let line = format!(
            "trace_id={} route={} status={} class={} queue_us={} total_us={} \
             breaker={} breaker_transition={} chaos_key={} deadline_remaining_ms={} \
             degraded={} client_trace={} sampled={}",
            r.trace_id.as_hex(),
            token(&r.route),
            r.status,
            r.class(),
            r.queue_us,
            r.total_us,
            token(&r.breaker),
            r.breaker_transition,
            token(&r.chaos_key),
            r.deadline_remaining_ms,
            r.degraded,
            r.client_supplied,
            decision.label(),
        );
        let mut writer = access.lock().unwrap_or_else(|p| p.into_inner());
        let _ = writeln!(writer, "{line}");
    }

    /// Stream one `(predicted, truth)` energy pair into the drift
    /// monitor and mirror the window state into gauges.
    pub fn record_drift(
        &self,
        registry: &Registry,
        kind: &str,
        role: &str,
        predicted: f64,
        truth: f64,
    ) {
        let key = format!("{kind}.{role}");
        if let Some(state) = self.drift.record(&key, predicted, truth) {
            registry.counter_add("serve.drift.samples", 1);
            registry.gauge_set(&format!("serve.drift.{key}.nrmse_pct"), state.nrmse_pct);
            registry.gauge_set(
                &format!("serve.drift.{key}.degraded"),
                if state.degraded { 1.0 } else { 0.0 },
            );
        }
    }

    /// Drift keys currently degraded (the `/healthz` payload).
    pub fn degraded_keys(&self) -> Vec<String> {
        self.drift.degraded_keys()
    }

    /// Every drift window's current state.
    pub fn drift_states(&self) -> Vec<DriftState> {
        self.drift.states()
    }

    /// Score the registry's RED families against the configured SLOs.
    pub fn slo_report(&self, registry: &Registry) -> SloReport {
        slo::evaluate(&registry.snapshot(), &self.slo)
    }

    /// `/metrics` body: refresh the SLO burn-rate gauges from the RED
    /// counts, then render with exemplars. The gauges are deterministic
    /// functions of the counts, so a snapshot taken after the scrape
    /// renders byte-identically to the scrape body.
    pub fn render_metrics(&self, registry: &Registry) -> String {
        let report = self.slo_report(registry);
        for (name, value) in report.gauges() {
            registry.gauge_set(&name, value);
        }
        registry
            .snapshot()
            .to_prometheus_text_with_exemplars(&registry.exemplars())
    }

    /// Timing-free canonical projection of the sampled traces (the
    /// determinism surface), `None` when tracing is disarmed.
    pub fn canonical_export(&self) -> Option<String> {
        self.collector.as_ref().map(|c| c.export_canonical())
    }

    /// JSONL span export, `None` when tracing is disarmed.
    pub fn jsonl_export(&self) -> Option<String> {
        self.collector.as_ref().map(|c| c.export_jsonl())
    }

    /// Drain-time export: flush the access log, stamp the sampling
    /// totals into counters, and write `spans.jsonl` / `trace.json` /
    /// `canonical.txt` under the configured trace-out directory.
    pub fn export(&self, registry: &Registry) {
        if let Some(access) = &self.access {
            let _ = access.lock().unwrap_or_else(|p| p.into_inner()).flush();
        }
        let Some(collector) = &self.collector else {
            return;
        };
        let (recorded, dropped) = collector.totals();
        registry.counter_add("serve.trace.recorded", recorded);
        registry.counter_add("serve.trace.sampled", recorded - dropped);
        if let Some(dir) = &self.trace_out {
            let _ = std::fs::write(dir.join("spans.jsonl"), collector.export_jsonl());
            let _ = std::fs::write(dir.join("trace.json"), collector.export_chrome());
            let _ = std::fs::write(dir.join("canonical.txt"), collector.export_canonical());
        }
    }
}

/// Table VII NRMSE baselines for the fitted model, keyed `{kind}.{role}`
/// — post-copy reuses the live fit (same phase structure).
fn table_vii_baselines() -> Vec<(String, f64)> {
    let mut out = Vec::with_capacity(6);
    for row in TABLE_VII_NRMSE.iter().filter(|r| r.model == "WAVM3") {
        out.push((format!("live.{}", row.host), row.live_pct));
        out.push((format!("post_copy.{}", row.host), row.live_pct));
        out.push((format!("non_live.{}", row.host), row.non_live_pct));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ObsOptions;
    use std::time::Instant;
    use wavm3_obs::reqtrace::status_class;

    fn telemetry(opts: &ObsOptions) -> Telemetry {
        Telemetry::new(opts).expect("telemetry builds")
    }

    #[test]
    fn route_labels_cover_every_endpoint() {
        assert_eq!(route_label("/predict"), "predict");
        assert_eq!(route_label("/plan"), "plan");
        assert_eq!(route_label("/metrics"), "metrics");
        assert_eq!(route_label("/healthz"), "healthz");
        assert_eq!(route_label("/debug/slo"), "debug_slo");
        assert_eq!(route_label("/debug/metrics"), "debug_metrics");
        assert_eq!(route_label("/nope"), "other");
    }

    #[test]
    fn tokens_stay_splittable() {
        assert_eq!(token("7:0"), "7:0");
        assert_eq!(token("a key=\"x\"\n"), "a_key__x__");
        assert_eq!(token(""), "-");
    }

    #[test]
    fn finish_records_red_only_for_work_routes() {
        let tele = telemetry(&ObsOptions::default());
        let registry = Registry::new();
        let t0 = Instant::now();

        let mut ok = tele.begin(None, t0, 5);
        ok.set_route("predict");
        ok.set_status(200);
        tele.finish(&registry, None, ok);

        let mut scrape = tele.begin(None, t0, 0);
        scrape.set_route("metrics");
        scrape.set_status(200);
        tele.finish(&registry, None, scrape);

        let snapshot = registry.snapshot();
        assert!(snapshot
            .histograms
            .contains_key("serve.red.predict.2xx.duration_ms"));
        assert!(!snapshot.histograms.keys().any(|k| k.contains("metrics")));
    }

    #[test]
    fn error_finishes_pin_exemplars() {
        let tele = telemetry(&ObsOptions::default());
        let registry = Registry::new();
        let mut shed = tele.begin(None, Instant::now(), 0);
        shed.set_route("predict");
        shed.set_status(429);
        tele.finish(&registry, None, shed);
        assert_eq!(status_class(429), "429");
        let exemplars = registry.exemplars();
        let attached = exemplars
            .get("serve.red.predict.429.duration_ms")
            .expect("shed exemplar attached");
        assert_eq!(attached.len(), 1);
        assert!(attached[0].pinned);
    }

    #[test]
    fn drift_baselines_come_from_table_vii() {
        let baselines = table_vii_baselines();
        let get = |k: &str| {
            baselines
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("live.source"), 11.8);
        assert_eq!(get("live.target"), 5.0);
        assert_eq!(get("non_live.target"), 12.0);
        assert_eq!(get("post_copy.source"), get("live.source"));
    }

    #[test]
    fn render_metrics_is_stable_across_scrapes() {
        let tele = telemetry(&ObsOptions::default());
        let registry = Registry::new();
        let mut ok = tele.begin(None, Instant::now(), 1);
        ok.set_route("plan");
        ok.set_status(200);
        tele.finish(&registry, None, ok);
        let first = tele.render_metrics(&registry);
        let second = tele.render_metrics(&registry);
        assert_eq!(first, second);
        assert!(first.contains("serve_slo_worst_burn_rate"), "{first}");
        // The body matches a snapshot taken after the scrape.
        assert_eq!(
            second,
            registry
                .snapshot()
                .to_prometheus_text_with_exemplars(&registry.exemplars())
        );
    }
}
