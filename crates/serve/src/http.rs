//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! The service speaks just enough HTTP for its four endpoints: one
//! request per connection (`Connection: close` on every response), a
//! request line, lowercased headers, and an optional `Content-Length`
//! body. Header and body sizes are capped so a hostile or confused peer
//! cannot balloon a worker's memory; anything outside the subset is a
//! parse error the server answers with `400`.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method as sent ("GET", "POST", …).
    pub method: String,
    /// Path component of the request target (query strings unsupported).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let split = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head exceeds cap",
            ));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };
    let (head_bytes, rest) = head.split_at(split);
    let rest = &rest[4..]; // skip the \r\n\r\n separator
    let head_text = std::str::from_utf8(head_bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request head"))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing path"))?
        .to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body exceeds cap",
        ));
    }

    let mut body = rest.to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialise.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialise and write to the stream (`Connection: close` always).
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        stream.write_all(out.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Client half: write a request, read the full response.
///
/// Used by the load generator and the integration tests; parses the
/// status line and splits headers from body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Send `method path` with optional JSON body and headers, read the reply.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut out = format!("{method} {path} HTTP/1.1\r\nhost: wavm3\r\nconnection: close\r\n");
    if !body.is_empty() {
        out.push_str("content-type: application/json\r\n");
        out.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    for (name, value) in headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str("\r\n");
    stream.write_all(out.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = find_head_end(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without head end"))?;
    let head = std::str::from_utf8(&raw[..split])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let body = raw[split + 4..].to_vec();

    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
