//! Deterministic load generator for the serving stack.
//!
//! Request *content*, chaos *fate* and *trace identity* are all pure
//! functions of `(seed, request id, attempt)`: bodies come from
//! per-request RNG streams, each attempt carries
//! `x-wavm3-chaos-key: "{id}:{attempt}"` so the server's chaos
//! middleware makes the same injection decisions on every rerun, and
//! each attempt stamps a derived `x-wavm3-trace-id` (plus a matching
//! W3C `traceparent`) so the server-side sampled span set is
//! reproducible too. With `concurrency = 1` the entire interaction
//! sequence is reproducible, which is what the golden test pins; at
//! higher concurrency, per-request outcomes are still
//! seed-deterministic but the interleaving (and therefore
//! breaker-coupled counts) is not.
//!
//! Client-side latency quantiles use the **same bucket ladder and
//! interpolating estimator** as the server's `serve.latency_ms`
//! histogram ([`buckets::LATENCY_MS`]), so the client's p50/p95/p99 and
//! the server's are directly comparable — the serve-smoke gate asserts
//! they agree to within a bucket.

use crate::http;
use rand::Rng;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wavm3_harness::Wavm3Error;
use wavm3_models::{EnergyModel, HostRole};
use wavm3_obs::metrics::{buckets, HistogramSnapshot};
use wavm3_obs::reqtrace::TraceId;
use wavm3_simkit::RngFactory;

/// Client retry schedule (wall-clock milliseconds; exponential + jitter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Pause before the first retry, milliseconds.
    pub base_backoff_ms: f64,
    /// Growth factor per further retry.
    pub multiplier: f64,
    /// Uniform jitter added to each pause, `[0, max_jitter_ms]`.
    pub max_jitter_ms: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_backoff_ms: 20.0,
            multiplier: 2.0,
            max_jitter_ms: 10.0,
        }
    }
}

impl RetryConfig {
    /// Reject zero attempts and NaN / non-finite / negative backoff
    /// parameters — the same config-error discipline (exit code 2) as
    /// the simulated [`wavm3_faults::RetryPolicy`].
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        if self.max_attempts == 0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.retry.max_attempts",
                "must allow at least one attempt",
            ));
        }
        if !self.base_backoff_ms.is_finite() || self.base_backoff_ms < 0.0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.retry.base_backoff_ms",
                format!(
                    "must be finite and non-negative, got {}",
                    self.base_backoff_ms
                ),
            ));
        }
        if !self.multiplier.is_finite() || self.multiplier < 1.0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.retry.multiplier",
                format!(
                    "backoff growth factor must be >= 1, got {}",
                    self.multiplier
                ),
            ));
        }
        if !self.max_jitter_ms.is_finite() || self.max_jitter_ms < 0.0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.retry.max_jitter_ms",
                format!(
                    "must be finite and non-negative, got {}",
                    self.max_jitter_ms
                ),
            ));
        }
        let worst = self.base_backoff_ms * self.multiplier.powi(self.max_attempts as i32 - 1);
        if !worst.is_finite() {
            return Err(Wavm3Error::invalid_config(
                "loadgen.retry.multiplier",
                "worst-case backoff overflows f64",
            ));
        }
        Ok(())
    }

    /// Pause before retry `attempt` (1-based), without jitter. Capped at
    /// 60 s so a generous schedule cannot wedge the generator.
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        (self.base_backoff_ms * self.multiplier.powi(attempt as i32 - 1)).min(60_000.0)
    }
}

/// Which endpoint(s) to exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// `POST /predict` only.
    Predict,
    /// `POST /plan` only.
    Plan,
    /// Alternate between them by request id.
    Mixed,
}

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Total requests to issue.
    pub requests: u64,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Request rate limit, requests/second (0 = unthrottled).
    pub rps: f64,
    /// Seed for bodies, chaos keys, and jitter.
    pub seed: u64,
    /// Deadline header attached to every request, milliseconds.
    pub deadline_ms: u64,
    /// Retry schedule.
    pub retry: RetryConfig,
    /// Endpoint mix.
    pub target: Target,
    /// Attach seeded ground-truth energies (`truth_*_energy_j`) to every
    /// body so the server's online drift monitor has residuals to chew
    /// on. Truth is the paper model's own prediction perturbed by a
    /// seeded ±3%, so a correctly fitted server stays healthy and a
    /// mis-fitted one drifts.
    pub truth: bool,
    /// Write a per-attempt JSONL log (id, attempt, trace id, path,
    /// status, outcome), sorted by `(id, attempt)` so it is
    /// seed-deterministic regardless of concurrency.
    pub log_out: Option<PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            requests: 100,
            concurrency: 4,
            rps: 0.0,
            seed: 42,
            deadline_ms: 2_000,
            retry: RetryConfig::default(),
            target: Target::Mixed,
            truth: false,
            log_out: None,
        }
    }
}

impl LoadgenConfig {
    /// Reject empty workloads and invalid retry schedules (exit code 2).
    pub fn validate(&self) -> Result<(), Wavm3Error> {
        if self.requests == 0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.requests",
                "must issue at least one request",
            ));
        }
        if self.concurrency == 0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.concurrency",
                "must use at least one client thread",
            ));
        }
        if !self.rps.is_finite() || self.rps < 0.0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.rps",
                format!("must be finite and non-negative, got {}", self.rps),
            ));
        }
        if self.deadline_ms == 0 {
            return Err(Wavm3Error::invalid_config(
                "loadgen.deadline_ms",
                "a zero deadline fails every request",
            ));
        }
        self.retry.validate()
    }
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests issued (== configured `requests`).
    pub sent: u64,
    /// Requests that ended in a 200.
    pub ok: u64,
    /// 200s served from the degraded fast path.
    pub degraded: u64,
    /// 429 responses observed (each one retried).
    pub shed_seen: u64,
    /// 5xx responses observed (each one retried).
    pub server_errors_seen: u64,
    /// Connect/read failures observed (each one retried).
    pub connection_errors: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Terminal 4xx responses (client bugs; not retried).
    pub client_errors: u64,
    /// Requests that exhausted every attempt without a 200 — the
    /// "client-visible errors" the chaos CI gate requires to be zero.
    pub failed: u64,
    /// Final-attempt latency quantiles, milliseconds (0 when nothing
    /// succeeded).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

impl LoadReport {
    /// The seed-deterministic slice of the report: everything except the
    /// wall-clock latency quantiles. Two runs with the same seed and
    /// `concurrency = 1` against identically configured servers are
    /// equal on this tuple.
    pub fn deterministic_counts(&self) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
        (
            self.sent,
            self.ok,
            self.degraded,
            self.shed_seen,
            self.server_errors_seen,
            self.connection_errors,
            self.retries,
            self.client_errors,
            self.failed,
        )
    }
}

#[derive(Default)]
struct Counters {
    ok: AtomicU64,
    degraded: AtomicU64,
    shed_seen: AtomicU64,
    server_errors_seen: AtomicU64,
    connection_errors: AtomicU64,
    retries: AtomicU64,
    client_errors: AtomicU64,
    failed: AtomicU64,
}

/// Deterministic request body for `id` under `seed`. With `truth` the
/// body additionally carries seeded ground-truth energies.
fn body_for(seed: u64, id: u64, truth: bool) -> String {
    let mut rng = RngFactory::new(seed).child(id).stream("loadgen.body");
    let ram_mib = 512 * rng.gen_range(1u64..=8);
    let kind = match rng.gen_range(0u32..3) {
        0 => "live",
        1 => "non_live",
        _ => "post_copy",
    };
    let cpu: f64 = rng.gen_range(0.1..0.9);
    let base =
        format!("{{\"kind\": \"{kind}\", \"ram_mib\": {ram_mib}, \"vm_cpu_fraction\": {cpu:.3}}}");
    if !truth {
        return base;
    }
    truth_body(seed, id, &base).unwrap_or(base)
}

/// Extend `base` with ground-truth energies: the paper model's own
/// prediction for this workload, perturbed by a seeded uniform ±3%.
/// Against a server running the same (default) coefficients the
/// residual NRMSE sits well under every Table VII baseline; against
/// deliberately mis-fitted coefficients the drift monitor trips.
fn truth_body(seed: u64, id: u64, base: &str) -> Option<String> {
    let value: serde::Value = serde_json::from_str(base).ok()?;
    let req = crate::api::ApiRequest::from_value(&value).ok()?;
    let record = req.plan().to_record();
    let model = match req.kind_label() {
        "non_live" => wavm3_models::paper::wavm3_non_live(),
        _ => wavm3_models::paper::wavm3_live(),
    };
    let mut rng = RngFactory::new(seed).child(id).stream("loadgen.truth");
    let mut noisy = |role: HostRole| {
        let predicted = model.predict_energy(role, &record);
        let noise: f64 = rng.gen_range(-0.03..=0.03);
        (predicted * (1.0 + noise)).max(1e-3)
    };
    let source = noisy(HostRole::Source);
    let target = noisy(HostRole::Target);
    let trimmed = base.trim_end().strip_suffix('}')?;
    Some(format!(
        "{trimmed}, \"truth_source_energy_j\": {source:.6}, \"truth_target_energy_j\": {target:.6}}}"
    ))
}

fn path_for(target: Target, id: u64) -> &'static str {
    match target {
        Target::Predict => "/predict",
        Target::Plan => "/plan",
        Target::Mixed => {
            if id.is_multiple_of(2) {
                "/predict"
            } else {
                "/plan"
            }
        }
    }
}

/// One attempt's worth of client-side evidence, joinable with the
/// server's access log / spans / exemplars by `trace_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LogEntry {
    id: u64,
    attempt: u32,
    trace_id: String,
    path: &'static str,
    /// HTTP status of the attempt; 0 when the connection failed.
    status: u16,
    outcome: &'static str,
}

impl LogEntry {
    fn to_jsonl(&self) -> String {
        format!(
            "{{\"id\":{},\"attempt\":{},\"trace_id\":\"{}\",\"path\":\"{}\",\"status\":{},\"outcome\":\"{}\"}}",
            self.id, self.attempt, self.trace_id, self.path, self.status, self.outcome
        )
    }
}

/// Shared mutable run state: final-attempt latencies bucketed on the
/// server's ladder, plus the per-attempt log.
struct RunState {
    latencies: Mutex<HistogramSnapshot>,
    log: Mutex<Vec<LogEntry>>,
}

/// Run the configured load against the server and aggregate the outcome.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, Wavm3Error> {
    cfg.validate()?;
    let counters = Arc::new(Counters::default());
    let state = Arc::new(RunState {
        latencies: Mutex::new(HistogramSnapshot::new(buckets::LATENCY_MS)),
        log: Mutex::new(Vec::new()),
    });
    let next_id = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let threads: Vec<_> = (0..cfg.concurrency)
        .map(|_| {
            let cfg = cfg.clone();
            let counters = Arc::clone(&counters);
            let state = Arc::clone(&state);
            let next_id = Arc::clone(&next_id);
            std::thread::spawn(move || loop {
                let id = next_id.fetch_add(1, Ordering::SeqCst);
                if id >= cfg.requests {
                    return;
                }
                if cfg.rps > 0.0 {
                    let due = started + Duration::from_secs_f64(id as f64 / cfg.rps);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                issue_request(&cfg, id, &counters, &state);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("loadgen thread panicked");
    }

    if let Some(path) = &cfg.log_out {
        let mut log = state.log.lock().expect("log poisoned");
        log.sort_by_key(|e| (e.id, e.attempt));
        let mut text = String::new();
        for entry in log.iter() {
            text.push_str(&entry.to_jsonl());
            text.push('\n');
        }
        std::fs::write(path, text).map_err(|e| {
            Wavm3Error::invalid_config("loadgen.log_out", format!("cannot write {path:?}: {e}"))
        })?;
    }

    let lat = state.latencies.lock().expect("latencies poisoned");
    let quantile = |q: f64| lat.quantile(q).unwrap_or(0.0);
    let load = |c: &AtomicU64| c.load(Ordering::SeqCst);
    Ok(LoadReport {
        sent: cfg.requests,
        ok: load(&counters.ok),
        degraded: load(&counters.degraded),
        shed_seen: load(&counters.shed_seen),
        server_errors_seen: load(&counters.server_errors_seen),
        connection_errors: load(&counters.connection_errors),
        retries: load(&counters.retries),
        client_errors: load(&counters.client_errors),
        failed: load(&counters.failed),
        p50_ms: quantile(0.50),
        p95_ms: quantile(0.95),
        p99_ms: quantile(0.99),
    })
}

fn issue_request(cfg: &LoadgenConfig, id: u64, counters: &Counters, state: &RunState) {
    let body = body_for(cfg.seed, id, cfg.truth);
    let path = path_for(cfg.target, id);
    let mut jitter_rng = RngFactory::new(cfg.seed).child(id).stream("loadgen.jitter");

    for attempt in 0..cfg.retry.max_attempts {
        let attempt_started = Instant::now();
        let (outcome, status) = one_attempt(cfg, path, &body, id, attempt);
        state.log.lock().expect("log poisoned").push(LogEntry {
            id,
            attempt,
            trace_id: TraceId::derive(cfg.seed, id, attempt).as_hex(),
            path,
            status,
            outcome: outcome.label(),
        });
        match outcome {
            AttemptOutcome::Ok { degraded } => {
                counters.ok.fetch_add(1, Ordering::SeqCst);
                if degraded {
                    counters.degraded.fetch_add(1, Ordering::SeqCst);
                }
                state
                    .latencies
                    .lock()
                    .expect("latencies poisoned")
                    .observe(attempt_started.elapsed().as_secs_f64() * 1e3);
                return;
            }
            AttemptOutcome::ClientError => {
                counters.client_errors.fetch_add(1, Ordering::SeqCst);
                counters.failed.fetch_add(1, Ordering::SeqCst);
                return;
            }
            AttemptOutcome::Shed => {
                counters.shed_seen.fetch_add(1, Ordering::SeqCst);
            }
            AttemptOutcome::ServerError => {
                counters.server_errors_seen.fetch_add(1, Ordering::SeqCst);
            }
            AttemptOutcome::ConnectionError => {
                counters.connection_errors.fetch_add(1, Ordering::SeqCst);
            }
        }
        if attempt + 1 < cfg.retry.max_attempts {
            counters.retries.fetch_add(1, Ordering::SeqCst);
            let jitter: f64 = if cfg.retry.max_jitter_ms > 0.0 {
                jitter_rng.gen_range(0.0..=cfg.retry.max_jitter_ms)
            } else {
                0.0
            };
            let pause = cfg.retry.backoff_ms(attempt + 1) + jitter;
            std::thread::sleep(Duration::from_secs_f64(pause / 1e3));
        }
    }
    counters.failed.fetch_add(1, Ordering::SeqCst);
}

enum AttemptOutcome {
    Ok { degraded: bool },
    Shed,
    ServerError,
    ClientError,
    ConnectionError,
}

impl AttemptOutcome {
    fn label(&self) -> &'static str {
        match self {
            AttemptOutcome::Ok { degraded: false } => "ok",
            AttemptOutcome::Ok { degraded: true } => "ok_degraded",
            AttemptOutcome::Shed => "shed",
            AttemptOutcome::ServerError => "server_error",
            AttemptOutcome::ClientError => "client_error",
            AttemptOutcome::ConnectionError => "connection_error",
        }
    }
}

fn one_attempt(
    cfg: &LoadgenConfig,
    path: &str,
    body: &str,
    id: u64,
    attempt: u32,
) -> (AttemptOutcome, u16) {
    let stream = TcpStream::connect(&cfg.addr);
    let mut stream = match stream {
        Ok(s) => s,
        Err(_) => return (AttemptOutcome::ConnectionError, 0),
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let trace_id = TraceId::derive(cfg.seed, id, attempt).as_hex();
    let headers = [
        ("x-wavm3-chaos-key", format!("{id}:{attempt}")),
        ("x-wavm3-deadline-ms", cfg.deadline_ms.to_string()),
        ("x-wavm3-trace-id", trace_id.clone()),
        (
            "traceparent",
            format!(
                "00-{trace_id}-{}-01",
                TraceId::derived_span_hex(cfg.seed, id, attempt)
            ),
        ),
    ];
    let response = match http::roundtrip(&mut stream, "POST", path, &headers, body.as_bytes()) {
        Ok(r) => r,
        Err(_) => return (AttemptOutcome::ConnectionError, 0),
    };
    let outcome = match response.status {
        200 => {
            let degraded = serde_json::from_str::<serde::Value>(&response.body_text())
                .ok()
                .and_then(|v| match v.get("degraded") {
                    Some(serde::Value::Bool(b)) => Some(*b),
                    _ => None,
                })
                .unwrap_or(false);
            AttemptOutcome::Ok { degraded }
        }
        429 => AttemptOutcome::Shed,
        500..=599 => AttemptOutcome::ServerError,
        _ => AttemptOutcome::ClientError,
    };
    (outcome, response.status)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_deterministic_per_seed_and_id() {
        assert_eq!(body_for(7, 3, false), body_for(7, 3, false));
        assert_ne!(body_for(7, 3, false), body_for(7, 4, false));
        assert_ne!(body_for(7, 3, false), body_for(8, 3, false));
    }

    #[test]
    fn truth_bodies_carry_plausible_ground_truth() {
        let body = body_for(7, 3, true);
        assert_eq!(body, body_for(7, 3, true), "truth bodies are seeded");
        let v: serde::Value = serde_json::from_str(&body).unwrap();
        let req = crate::api::ApiRequest::from_value(&v).unwrap();
        let (truth_s, truth_t) = (
            req.truth_source_energy_j.expect("source truth"),
            req.truth_target_energy_j.expect("target truth"),
        );
        // Truth is the paper model's own prediction within ±3%.
        let record = req.plan().to_record();
        let model = match req.kind_label() {
            "non_live" => wavm3_models::paper::wavm3_non_live(),
            _ => wavm3_models::paper::wavm3_live(),
        };
        for (role, truth) in [(HostRole::Source, truth_s), (HostRole::Target, truth_t)] {
            let predicted = model.predict_energy(role, &record);
            let rel = (truth - predicted).abs() / predicted;
            assert!(
                rel <= 0.031,
                "{role:?}: truth {truth} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn log_entries_render_compact_jsonl() {
        let entry = LogEntry {
            id: 3,
            attempt: 1,
            trace_id: TraceId::derive(7, 3, 1).as_hex(),
            path: "/plan",
            status: 429,
            outcome: "shed",
        };
        let line = entry.to_jsonl();
        assert!(line.starts_with("{\"id\":3,\"attempt\":1,\"trace_id\":\""));
        assert!(line.ends_with("\",\"path\":\"/plan\",\"status\":429,\"outcome\":\"shed\"}"));
        // The line is valid JSON and round-trips the trace id.
        let v: serde::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(
            v.get("trace_id").unwrap().as_str(),
            Some(entry.trace_id.as_str())
        );
    }

    #[test]
    fn client_quantiles_use_the_server_bucket_ladder() {
        let mut hist = HistogramSnapshot::new(buckets::LATENCY_MS);
        for v in [0.7, 0.8, 1.5, 3.0, 40.0] {
            hist.observe(v);
        }
        let p50 = hist.quantile(0.50).unwrap();
        assert!(p50 <= 2.0, "p50 within the 2ms bucket, got {p50}");
        let p99 = hist.quantile(0.99).unwrap();
        assert!(
            (20.0..=50.0).contains(&p99),
            "p99 in the 50ms bucket, got {p99}"
        );
    }

    #[test]
    fn retry_validation_rejects_nonsense_as_config_errors() {
        for bad in [
            RetryConfig {
                max_attempts: 0,
                ..RetryConfig::default()
            },
            RetryConfig {
                base_backoff_ms: f64::NAN,
                ..RetryConfig::default()
            },
            RetryConfig {
                base_backoff_ms: -1.0,
                ..RetryConfig::default()
            },
            RetryConfig {
                multiplier: f64::INFINITY,
                ..RetryConfig::default()
            },
            RetryConfig {
                multiplier: 0.5,
                ..RetryConfig::default()
            },
            RetryConfig {
                max_jitter_ms: f64::NEG_INFINITY,
                ..RetryConfig::default()
            },
            RetryConfig {
                max_attempts: 50,
                multiplier: 1e40,
                ..RetryConfig::default()
            },
        ] {
            let err = bad.validate().expect_err("invalid retry config");
            assert!(err.is_config_error(), "{err}");
        }
        assert!(RetryConfig::default().validate().is_ok());
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let retry = RetryConfig {
            max_attempts: 8,
            base_backoff_ms: 10.0,
            multiplier: 2.0,
            max_jitter_ms: 0.0,
        };
        assert_eq!(retry.backoff_ms(0), 0.0);
        assert_eq!(retry.backoff_ms(1), 10.0);
        assert_eq!(retry.backoff_ms(3), 40.0);
        let huge = RetryConfig {
            multiplier: 1e6,
            ..retry
        };
        assert_eq!(huge.backoff_ms(7), 60_000.0);
    }
}
